"""Figure 18: effect of the correlation distance on storage.

The paper sweeps the distance threshold from 0 upward for both data sets
and all bounds: only the *lowest non-zero* distance reduces storage;
larger distances create inappropriate groups and inflate it — confirming
the rule of thumb of Section 4.1.

The sweep uses smaller data sets than the other figures (every cell is a
full ingest).
"""

import pytest

from repro import Configuration, ModelarDB
from repro.datasets import generate_eh, generate_ep

from .conftest import format_table

BOUNDS = (0.0, 10.0)
#: EH distances: 0 (singletons), the (1/3)/2 rule of thumb, and larger.
EH_DISTANCES = (0.0, 0.17, 0.34, 0.5)
#: EP has two 2-level dimensions, so distances move in steps of 0.25.
EP_DISTANCES = (0.0, 0.25, 0.5)


def sweep(dataset, distances, bounds):
    sizes = {}
    for distance in distances:
        for bound in bounds:
            config = Configuration(
                error_bound=bound,
                correlation=[f"{distance:.8f}"] if distance else [],
            )
            with ModelarDB(config, dimensions=dataset.dimensions) as db:
                db.ingest(dataset.series)
                sizes[(distance, bound)] = db.size_bytes()
    return sizes


def test_fig18_distance_eh(benchmark, report):
    dataset = generate_eh(
        n_parks=2, entities_per_park=3, measures=("ActivePower",),
        n_points=4_000, seed=18,
    )
    sizes = benchmark.pedantic(
        lambda: sweep(dataset, EH_DISTANCES, BOUNDS), rounds=1, iterations=1
    )
    rows = [
        [f"{d:.2f}", *(sizes[(d, b)] for b in BOUNDS)] for d in EH_DISTANCES
    ]
    report(
        "Figure 18 distance sweep, EH",
        format_table(
            ["Distance", *(f"bytes @{b:g}%" for b in BOUNDS)], rows
        )
        + ["Paper shape: the lowest non-zero distance (~0.17, the rule "
           "of thumb) is never beaten by larger distances."],
    )
    for bound in BOUNDS:
        best_nonzero = sizes[(0.17, bound)]
        assert best_nonzero <= sizes[(0.5, bound)] * 1.05, (
            f"rule-of-thumb distance should beat 0.5 at {bound}%"
        )


def test_fig18_distance_ep(benchmark, report):
    dataset = generate_ep(
        n_entities=4, measures_per_entity=3, n_points=1_500, seed=19,
    )
    sizes = benchmark.pedantic(
        lambda: sweep(dataset, EP_DISTANCES, BOUNDS), rounds=1, iterations=1
    )
    rows = [
        [f"{d:.2f}", *(sizes[(d, b)] for b in BOUNDS)] for d in EP_DISTANCES
    ]
    report(
        "Figure 18 distance sweep, EP",
        format_table(
            ["Distance", *(f"bytes @{b:g}%" for b in BOUNDS)], rows
        )
        + ["Paper shape: the lowest distance groups correlated measures; "
           "0.5 merges uncorrelated series and inflates storage."],
    )
    for bound in BOUNDS:
        assert sizes[(0.25, bound)] <= sizes[(0.5, bound)] * 1.05
