"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's per-experiment index) and prints the corresponding rows.
Data sets are scaled-down synthetic equivalents of EP and EH (the real
ones are proprietary; see DESIGN.md §1), so the *shape* of each result —
who wins, by roughly what factor — is the reproduction target, not the
absolute numbers. EXPERIMENTS.md records paper-vs-measured per figure.

Expensive ingests are session-cached so the ~20 benchmark files share
one ingested copy of each system per (data set, error bound).
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.baselines import (
    CassandraLike,
    InfluxLike,
    ModelarV1Format,
    ModelarV2Format,
    ORCLike,
    ParquetLike,
)
from repro.core import Configuration
from repro.datasets import generate_eh, generate_ep
from repro.datasets.ep import EP_CORRELATION

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark-scale EP: 5 entities x 4 production measures (+1 temperature
#: each) x 3000 minutes. Groups of 4 like the paper's per-entity measures.
EP_SCALE = dict(
    n_entities=5, measures_per_entity=4, n_points=3_000,
    gap_probability=0.0008, seed=42,
)

#: Benchmark-scale EH: 2 parks x 4 entities x 1 measure x 15000 ticks of
#: 100 ms — fewer but longer series than EP, weakly correlated.
EH_SCALE = dict(
    n_parks=2, entities_per_park=4, measures=("ActivePower",),
    n_points=15_000, seed=43,
)

ERROR_BOUNDS = (0.0, 1.0, 5.0, 10.0)


@pytest.fixture(scope="session")
def ep_dataset():
    return generate_ep(**EP_SCALE)


@pytest.fixture(scope="session")
def eh_dataset():
    return generate_eh(**EH_SCALE)


def ep_config(error_bound: float) -> Configuration:
    return Configuration(error_bound=error_bound, correlation=EP_CORRELATION)


def eh_config(dataset, error_bound: float, distance=None) -> Configuration:
    return Configuration(
        error_bound=error_bound, correlation=dataset.correlation(distance)
    )


class SystemCache:
    """Ingest-once cache for the comparison systems."""

    def __init__(self, dataset, config_factory):
        self._dataset = dataset
        self._config_factory = config_factory
        self._systems: dict[str, object] = {}
        self.ingest_seconds: dict[str, float] = {}

    def get(self, key: str):
        if key not in self._systems:
            self._systems[key] = self._build(key)
        return self._systems[key]

    def _build(self, key: str):
        fmt = self._make(key)
        started = time.perf_counter()
        fmt.ingest(self._dataset.series, self._dataset.dimensions)
        self.ingest_seconds[key] = time.perf_counter() - started
        return fmt

    def _make(self, key: str):
        name, _, bound_text = key.partition("@")
        bound = float(bound_text) if bound_text else 0.0
        if name == "InfluxDB":
            return InfluxLike()
        if name == "Cassandra":
            return CassandraLike()
        if name == "Parquet":
            return ParquetLike()
        if name == "ORC":
            return ORCLike()
        config = self._config_factory(bound)
        if name == "ModelarDBv1":
            return ModelarV1Format(config)
        if name == "ModelarDBv1-DPV":
            return ModelarV1Format(config, view="datapoint")
        if name == "ModelarDBv2":
            return ModelarV2Format(config)
        if name == "ModelarDBv2-DPV":
            return ModelarV2Format(config, view="datapoint")
        raise KeyError(f"unknown system {key!r}")


@pytest.fixture(scope="session")
def ep_systems(ep_dataset):
    return SystemCache(ep_dataset, ep_config)


@pytest.fixture(scope="session")
def eh_systems(eh_dataset):
    return SystemCache(
        eh_dataset, lambda bound: eh_config(eh_dataset, bound)
    )


@pytest.fixture
def report(capsys, request):
    """Print a figure's rows to the real stdout and persist them."""

    def _report(title: str, lines: list[str]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        body = "\n".join(lines)
        slug = (
            title.lower().replace(" ", "_").replace(",", "")
            .replace("(", "").replace(")", "").replace("/", "-")
        )
        (RESULTS_DIR / f"{slug}.txt").write_text(body + "\n")
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)

    return _report


def format_table(headers: list[str], rows: list[list]) -> list[str]:
    """Fixed-width table lines."""
    columns = [
        [str(header)] + [str(row[i]) for row in rows]
        for i, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            "  ".join(
                str(cell).ljust(width) for cell, width in zip(row, widths)
            )
        )
    return lines
