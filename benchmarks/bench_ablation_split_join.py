"""Ablation: dynamic group splitting and joining (Section 4.2).

When a group's series temporarily decorrelate (a turbine turned off or
damaged), splitting the group restores compression; joining restores the
group when correlation returns. This ablation ingests a data set with a
temporary divergence with splitting enabled and disabled.
"""

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.core.group import TimeSeriesGroup

from .conftest import format_table


def diverging_group(n=6_000, seed=32):
    rng = np.random.default_rng(seed)
    base = np.full(n, 250.0)
    series = []
    for tid in (1, 2, 3):
        values = base.copy()
        if tid == 3:  # this turbine is damaged for a third of the time
            lo, hi = n // 3, 2 * n // 3
            values[lo:hi] = 150 + rng.normal(0, 8, hi - lo)
        series.append(
            TimeSeries(tid, 100, np.arange(n) * 100, np.float32(values))
        )
    return TimeSeriesGroup(1, series)


def ingest(group, split_fraction):
    db = ModelarDB(
        Configuration(error_bound=1.0, dynamic_split_fraction=split_fraction)
    )
    db.ingest([group])
    return db


def test_ablation_split_join(benchmark, report):
    with_split = benchmark.pedantic(
        lambda: ingest(diverging_group(), split_fraction=10),
        rounds=1, iterations=1,
    )
    without = ingest(diverging_group(), split_fraction=0)
    report(
        "Ablation: dynamic splitting (Section 4.2)",
        format_table(
            ["Variant", "Bytes", "Splits", "Joins"],
            [
                [
                    "splitting enabled (fraction 10)",
                    with_split.size_bytes(),
                    with_split.stats.splits,
                    with_split.stats.joins,
                ],
                [
                    "splitting disabled",
                    without.size_bytes(),
                    without.stats.splits,
                    without.stats.joins,
                ],
            ],
        )
        + [
            f"splitting saves {100 * (1 - with_split.size_bytes() / without.size_bytes()):.1f}% "
            "on temporarily decorrelated data and rejoins afterwards.",
        ],
    )
    assert with_split.stats.splits >= 1
    assert with_split.stats.joins >= 1
    assert with_split.size_bytes() < without.size_bytes()
