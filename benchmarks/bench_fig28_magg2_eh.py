"""Figure 28: M-AGG-Two on EH — drill down to month, Entity and Tid.

Paper (minutes): InfluxDB unsupported, Cassandra 2549, Parquet 84, ORC
31, ModelarDBv2-SV 27.73, -DPV 51.69 — v2 1.12-92x faster, the paper's
largest query speedup.
"""

import pytest

from .magg_common import SYSTEMS, influx_unsupported, magg_report, run_magg

MEMBER = ("Category", "Power")
GROUP_BY = "Entity"

_seconds: dict[str, object] = {}


@pytest.mark.parametrize("system", [s for s in SYSTEMS if s != "InfluxDB"])
def test_fig28_magg_two_eh(benchmark, eh_systems, system):
    workload, fmt = run_magg(eh_systems, system, MEMBER, GROUP_BY, True)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig28_report(benchmark, eh_systems, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _seconds["InfluxDB"] = influx_unsupported(eh_systems)
    magg_report(
        report,
        "Figure 28 M-AGG-Two, EH",
        _seconds,
        "Paper shape: the drill-down with Tid grouping keeps v2-SV "
        "fastest among all systems that can run the query.",
    )
    assert _seconds["ModelarDBv2-SV"] < _seconds["Cassandra"]