"""Figure 26: M-AGG-Two on EP — drill down to month, Concrete and Tid.

One level *below* the partitioning: contrary to pre-computed aggregates,
ModelarDB can query each series of a group separately, so drilling down
does not hurt. Paper (minutes): InfluxDB unsupported, Cassandra 1723,
Parquet 107, ORC 66, ModelarDBv2-SV 30.14, -DPV 78.39 — v2 2.2-57x
faster.
"""

import pytest

from .magg_common import SYSTEMS, influx_unsupported, magg_report, run_magg

MEMBER = ("Category", "ProductionMWh")
GROUP_BY = "Concrete"

_seconds: dict[str, object] = {}


@pytest.mark.parametrize("system", [s for s in SYSTEMS if s != "InfluxDB"])
def test_fig26_magg_two_ep(benchmark, ep_systems, system):
    workload, fmt = run_magg(ep_systems, system, MEMBER, GROUP_BY, True)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig26_report(benchmark, ep_systems, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _seconds["InfluxDB"] = influx_unsupported(ep_systems)
    magg_report(
        report,
        "Figure 26 M-AGG-Two, EP",
        _seconds,
        "Paper shape: drilling below the partitioning level does not "
        "change the outcome — v2-SV stays fastest.",
    )
    sv = _seconds["ModelarDBv2-SV"]
    assert sv < _seconds["Cassandra"]
    assert sv <= _seconds["ModelarDBv2-DPV"]
