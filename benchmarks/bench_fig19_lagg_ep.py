"""Figure 19: large-scale simple aggregates (L-AGG) on EP.

Paper (hours on the 6-node cluster): Cassandra 2.49, Parquet 0.84 ... ORC
1.21, ModelarDBv1 0.97, ModelarDBv2-SV 0.84, -DPV 1.72 — and InfluxDB
*fails with out-of-memory* on a single node (the open-source version
cannot be distributed). Parquet's column pruning makes it competitive
with the Segment View; the Data Point View pays reconstruction.
"""

import pytest

from repro.core.errors import UnsupportedQueryError
from repro.workloads import l_agg

from .conftest import format_table

SYSTEMS = (
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1@5",
    "ModelarDBv2@5",
    "ModelarDBv2-DPV@5",
)

_seconds: dict[str, object] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig19_lagg(benchmark, ep_systems, system):
    fmt = ep_systems.get(system)
    workload = l_agg(count=4)
    elapsed = benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig19_influx_fails_at_scale(benchmark, ep_systems, report):
    """Reproduce the single-node OOM: the capacity guard rejects the
    cluster-scale aggregate (modelled limit; see DESIGN.md)."""
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fmt = ep_systems.get("InfluxDB")
    fmt._total_points = 10 ** 9  # the cluster-scale data set
    try:
        with pytest.raises(UnsupportedQueryError):
            fmt.check_single_node_capacity()
        _seconds["InfluxDB"] = "out of memory"
    finally:
        fmt._total_points = 0

    rows = [[name, value if isinstance(value, str) else f"{value * 1e3:.2f} ms"]
            for name, value in _seconds.items()]
    report(
        "Figure 19 L-AGG, EP",
        format_table(["System", "Runtime"], rows)
        + ["Paper shape: InfluxDB OOM; v2-SV fastest or within ~1.2x of "
           "Parquet; DPV ~2x slower than SV."],
    )
    if "ModelarDBv2-SV" in _seconds and "ModelarDBv2-DPV" in _seconds:
        assert _seconds["ModelarDBv2-SV"] < _seconds["ModelarDBv2-DPV"]
