"""Section 5.2 inline result: storage reduction from enabling MMGC.

The paper compresses three real-life co-located turbine temperature
series and reports that MMGC (one model per group) reduces storage vs
MMC (one model per series) by 28.97 % at a 0 % bound, 29.22 % at 1 %,
36.74 % at 5 % and 44.07 % at 10 %.
"""

import pytest

from repro import Configuration, ModelarDB
from repro.core.group import TimeSeriesGroup, singleton_groups
from repro.datasets import turbine_temperatures

from .conftest import ERROR_BOUNDS, format_table

BOUNDS = ERROR_BOUNDS


def ingest(series, bound, grouped):
    with ModelarDB(Configuration(error_bound=bound)) as db:
        if grouped:
            db.ingest([TimeSeriesGroup(1, series)])
        else:
            db.ingest(singleton_groups(series))
        return db.size_bytes()


@pytest.mark.parametrize("bound", BOUNDS)
def test_sec52_mmgc_reduction(benchmark, report, bound):
    series = turbine_temperatures(n_points=3_000)
    mmc = ingest(series, bound, grouped=False)
    mmgc = benchmark.pedantic(
        lambda: ingest(series, bound, grouped=True), rounds=1, iterations=1
    )
    reduction = 100.0 * (1.0 - mmgc / mmc)
    report(
        f"Section 5.2 MMGC gain, {bound:g}% bound",
        format_table(
            ["Error bound", "MMC bytes", "MMGC bytes", "Reduction"],
            [[f"{bound:g}%", mmc, mmgc, f"{reduction:.2f}%"]],
        )
        + [
            "Paper: 28.97% (0%), 29.22% (1%), 36.74% (5%), 44.07% (10%)",
        ],
    )
    assert mmgc < mmc, "MMGC must reduce storage for co-located series"
