"""Figure 24: point and range queries (P/R) on EH.

Paper (minutes): InfluxDB 0.43, Parquet 0.66, Cassandra 17.49, ORC 26.54,
ModelarDBv1-DPV 49.99... wait — the figure reports v1 at 26.54 and v2 at
139.26: v2 is 5.25x slower than v1 on EH because the grouped series are
long and weakly correlated, so a point query decodes a large group
segment. This is the paper's honestly-reported worst case for MMGC.
"""

import pytest

from repro.workloads import p_r

from .conftest import format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1-DPV@5",
    "ModelarDBv2-DPV@5",
)

_seconds: dict[str, float] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig24_pr_eh(benchmark, eh_dataset, eh_systems, system):
    fmt = eh_systems.get(system)
    tids = [ts.tid for ts in eh_dataset.series]
    workload = p_r(
        tids,
        eh_dataset.start_time,
        eh_dataset.end_time,
        eh_dataset.sampling_interval,
        seed=24,
        count=10,
    )
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig24_report(benchmark, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{value * 1e3:.2f} ms"] for name, value in _seconds.items()
    ]
    v1 = _seconds["ModelarDBv1-DPV"]
    v2 = _seconds["ModelarDBv2-DPV"]
    report(
        "Figure 24 P/R, EH",
        format_table(["System", "Runtime"], rows)
        + [
            f"v2/v1 overhead: {v2 / v1:.2f}x (paper: 5.25x — long, weakly "
            "correlated groups make P/R MMGC's worst case)",
        ],
    )
    # On EH the group overhead is clearly visible (v2 slower than v1).
    assert v2 > v1
