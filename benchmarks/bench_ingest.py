"""Ingestion benchmark: scalar vs columnar batch throughput.

Not a paper figure — the paper reports ingestion rate per node
(Fig. 13) but never isolates the ingestion loop's own overhead — yet the
columnar batch path (``ModelFitter.extend`` over ``(ticks, series)``
blocks, chunked group buffers) exists purely for this axis, so it needs
a measured baseline. The workload is the regime the paper's correlated
dimensional series live in: long holds and slow ramps shared across the
group with small per-series jitter, which yields length-limit segments
(the shape group compression targets) rather than pathological
one-tick splits.

Measures points/sec at 1-, 8- and 32-series groups, scalar
(``ingest_chunk_size=1``) vs batch (default 1024), interleaved
best-of-N so machine noise cancels out of the ratio, and verifies the
two paths land byte-identical segments before timing anything. Writes a
``BENCH_ingest.json`` artifact::

    python benchmarks/bench_ingest.py            # ~1 min
    python benchmarks/bench_ingest.py --smoke    # seconds (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, ModelarDB  # noqa: E402
from repro.core.group import TimeSeriesGroup  # noqa: E402
from repro.core.timeseries import TimeSeries  # noqa: E402
from repro.storage import SegmentScan  # noqa: E402

GROUP_SIZES = (1, 8, 32)
SAMPLING_INTERVAL = 100


def regime_group(n_series: int, n_points: int, seed: int) -> TimeSeriesGroup:
    """A correlated group of holds and ramps with per-series jitter.

    The shared signal alternates constant regimes (PMC territory) and
    slow linear drifts (Swing territory); each member sees it through a
    small offset plus jitter well inside a 1% error bound, so the group
    compresses exactly as the paper's correlated series do.
    """
    rng = np.random.default_rng(seed)
    shared = np.empty(n_points)
    level = 100.0
    i = 0
    while i < n_points:
        if rng.random() < 0.5:
            run = int(rng.integers(100, 300))
            run = min(run, n_points - i)
            shared[i:i + run] = level
        else:
            run = int(rng.integers(50, 150))
            run = min(run, n_points - i)
            slope = rng.uniform(-0.02, 0.02)
            shared[i:i + run] = level + slope * np.arange(run)
            level = shared[i + run - 1]
        i += run
    timestamps = np.arange(n_points, dtype=np.int64) * SAMPLING_INTERVAL
    series = []
    for tid in range(1, n_series + 1):
        offset = rng.uniform(-0.05, 0.05)
        jitter = rng.normal(0.0, 0.002, n_points)
        values = np.float32(shared + offset + jitter)
        series.append(TimeSeries(tid, SAMPLING_INTERVAL, timestamps, values))
    return TimeSeriesGroup(1, series)


def build_db(chunk_size: int) -> ModelarDB:
    config = Configuration(error_bound=1.0, ingest_chunk_size=chunk_size)
    return ModelarDB.open(config=config)


def ingest_once(group: TimeSeriesGroup, chunk_size: int) -> tuple[float, ModelarDB]:
    db = build_db(chunk_size)
    started = time.perf_counter()
    db.ingest([group])
    return time.perf_counter() - started, db


def store_signature(db: ModelarDB):
    return sorted(
        (s.gid, s.start_time, s.end_time, s.mid, bytes(s.parameters),
         tuple(sorted(s.gaps)))
        for s in db.storage.scan(SegmentScan())
    )


def measure(group: TimeSeriesGroup, chunk_size: int, repeats: int) -> dict:
    """Interleaved best-of-N scalar vs batch over one group."""
    n_points = len(group.series[0].values) * len(group.series)
    scalar_best = batch_best = float("inf")
    scalar_db = batch_db = None
    for _ in range(repeats):
        elapsed, scalar_db = ingest_once(group, chunk_size=1)
        scalar_best = min(scalar_best, elapsed)
        elapsed, batch_db = ingest_once(group, chunk_size=chunk_size)
        batch_best = min(batch_best, elapsed)
    assert store_signature(batch_db) == store_signature(scalar_db), (
        "batch path is not byte-identical to the scalar path"
    )
    scalar_rate = n_points / scalar_best
    batch_rate = n_points / batch_best
    return {
        "series": len(group.series),
        "points": n_points,
        "segments": batch_db.segment_count(),
        "scalar_seconds": round(scalar_best, 6),
        "batch_seconds": round(batch_best, 6),
        "scalar_points_per_second": round(scalar_rate),
        "batch_points_per_second": round(batch_rate),
        "speedup": round(batch_rate / scalar_rate, 3),
        "fallback_ticks": batch_db.stats.fallback_ticks,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=60_000,
        help="ticks per series at each group size",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="interleaved repetitions; best of N is reported",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=1024,
        help="columnar buffer size of the batch path",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: 4k points, one repetition",
    )
    parser.add_argument(
        "--output", default="BENCH_ingest.json",
        help="path of the JSON artifact",
    )
    arguments = parser.parse_args(argv)
    n_points = 4_000 if arguments.smoke else arguments.points
    repeats = 1 if arguments.smoke else arguments.repeats

    runs = []
    for n_series in GROUP_SIZES:
        group = regime_group(n_series, n_points, seed=17 + n_series)
        print(f"group of {n_series} series × {n_points} points ...")
        run = measure(group, arguments.chunk_size, repeats)
        print(
            f"  scalar {run['scalar_points_per_second']:>10,} pts/s   "
            f"batch {run['batch_points_per_second']:>10,} pts/s   "
            f"speedup {run['speedup']:.2f}x"
        )
        runs.append(run)

    artifact = {
        "benchmark": "ingestion (scalar vs columnar batch)",
        "generated_unix": int(time.time()),
        "smoke": arguments.smoke,
        "workload": "correlated holds+ramps, 1% error bound",
        "points_per_series": n_points,
        "repeats": repeats,
        "chunk_size": arguments.chunk_size,
        "runs": runs,
    }
    output = Path(arguments.output)
    output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
