"""Shared driver for the M-AGG figures (25-28).

M-AGG: multi-dimensional aggregate queries with a WHERE clause on the
member indicating energy production, grouped by month plus a dimension
column (variant One) or additionally by Tid (variant Two). InfluxDB
cannot execute them at all — it only supports fixed-duration windows —
which the paper shows as "Query Not Supported".
"""

from __future__ import annotations

from repro.core.errors import UnsupportedQueryError
from repro.workloads import m_agg

from .conftest import format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv2@5",
    "ModelarDBv2-DPV@5",
)


def run_magg(
    cache,
    system: str,
    member: tuple[str, str],
    group_by: str,
    per_tid: bool,
):
    fmt = cache.get(system)
    workload = m_agg(member, group_by, per_tid=per_tid, count=4)
    return workload, fmt


def magg_report(report, title: str, seconds: dict, paper_note: str) -> None:
    rows = [
        [
            name,
            value if isinstance(value, str) else f"{value * 1e3:.2f} ms",
        ]
        for name, value in seconds.items()
    ]
    report(title, format_table(["System", "Runtime"], rows) + [paper_note])


def influx_unsupported(cache) -> str:
    fmt = cache.get("InfluxDB")
    try:
        fmt.rollup("SUM", "MONTH")
    except UnsupportedQueryError:
        return "query not supported"
    raise AssertionError("InfluxDB must reject calendar rollups")
