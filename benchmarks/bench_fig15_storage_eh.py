"""Figure 15: storage required for EH.

Paper (GiB): InfluxDB 4.34, Cassandra 129.25, Parquet 3.34, ORC 2.49,
ModelarDBv1 2.41 (0 %), ModelarDBv2 2.84/2.63/2.48/1.98 at 0/1/5/10 %.
EH's series are only weakly correlated, so v1 is *slightly better* than
v2 at low bounds (1.18x at 0 %) while v2 wins at 10 % (1.22x) — and both
crush the point formats. Correlation is the distance rule of thumb
(1/3)/2 ≈ 0.16666667.
"""

import pytest

from repro.models import RAW_POINT_BYTES

from .conftest import ERROR_BOUNDS, format_table

BASELINES = ("InfluxDB", "Cassandra", "Parquet", "ORC")


def test_fig15_storage_eh(benchmark, eh_dataset, eh_systems, report):
    def measure():
        sizes = {}
        for name in BASELINES:
            sizes[f"{name} (0%)"] = eh_systems.get(name).size_bytes()
        sizes["ModelarDBv1 (0%)"] = eh_systems.get("ModelarDBv1@0").size_bytes()
        for bound in ERROR_BOUNDS:
            sizes[f"ModelarDBv2 ({bound:g}%)"] = eh_systems.get(
                f"ModelarDBv2@{bound:g}"
            ).size_bytes()
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    raw = eh_dataset.data_points() * RAW_POINT_BYTES
    rows = [
        [name, size, f"{raw / size:.1f}x"] for name, size in sizes.items()
    ]
    v1 = sizes["ModelarDBv1 (0%)"]
    v2_low = sizes["ModelarDBv2 (0%)"]
    v2_high = sizes["ModelarDBv2 (10%)"]
    report(
        "Figure 15 storage, EH",
        format_table(["System", "Bytes", "Compression vs raw"], rows)
        + [
            f"v2/v1 at 0%: {v2_low / v1:.2f} (paper 1.18; >= 1 means v1 "
            "slightly ahead on weakly correlated data)",
            f"v1/v2 at 10%: {v1 / v2_high:.2f} (paper 1.22; v2 wins with "
            "a high bound)",
        ],
    )
    # The paper's qualitative claims for EH: v1 is ahead of v2 at a 0 %
    # bound (weak correlation makes grouping pay a cross-series Gorilla
    # penalty), v2 wins once the bound is high, and with a usable bound
    # v2 beats every point format; Cassandra is always largest.
    assert v1 < v2_low
    assert v2_high < v1
    # v2 at 10% beats the row/TSM stores outright and sits at the same
    # structural floor as the columnar files (the paper has it below all
    # formats; our synthetic EH leaves Parquet/ORC within ~1.25x).
    assert v2_high < sizes["InfluxDB (0%)"]
    assert v2_high < sizes["Cassandra (0%)"]
    smallest_format = min(sizes[f"{n} (0%)"] for n in BASELINES)
    assert v2_high < 1.25 * smallest_format
    assert sizes["Cassandra (0%)"] == max(sizes.values())
    bounds_sizes = [sizes[f"ModelarDBv2 ({b:g}%)"] for b in ERROR_BOUNDS]
    assert bounds_sizes == sorted(bounds_sizes, reverse=True)
