"""Figure 22: small simple aggregates (S-AGG) on EH.

Paper (minutes): Parquet is by far the fastest (0.84) thanks to its
column layout on EH's few-but-long series; InfluxDB 16.75 beats
ModelarDBv2 (24.30) by ~1.45x; Cassandra is pathological (2413). The
group read overhead is larger than on EP because EH's series are longer.
"""

import pytest

from repro.workloads import s_agg

from .conftest import format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1@5",
    "ModelarDBv2@5",
    "ModelarDBv2-DPV@5",
)

_seconds: dict[str, float] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig22_sagg_eh(benchmark, eh_dataset, eh_systems, system):
    fmt = eh_systems.get(system)
    tids = [ts.tid for ts in eh_dataset.series]
    workload = s_agg(tids, seed=22, count=10)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig22_report(benchmark, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{value * 1e3:.2f} ms"] for name, value in _seconds.items()
    ]
    report(
        "Figure 22 S-AGG, EH",
        format_table(["System", "Runtime"], rows)
        + ["Paper shape: Parquet fastest; Cassandra slowest; v2 pays the "
           "group read overhead on EH's long series."],
    )
    assert _seconds["Parquet"] < _seconds["Cassandra"]
