"""Serving benchmark: closed-loop load against the query server.

Not a paper figure — the paper serves queries through Spark SQL and
never measures the serving axis — but the ROADMAP's north star ("serve
heavy traffic") needs a measured baseline. The harness follows the
closed-loop shape of SciTS (arXiv:2204.09795): N clients, each issuing
the next statement the moment the previous response lands, over the
evaluation's S-AGG / L-AGG / P-R mix rendered as SQL.

Backends:

* the embedded engine (default) — one in-process ``QueryEngine``;
* the sharded tier (``--shards N --replicas R``) — N worker processes
  behind a :class:`~repro.shard.ShardedDispatcher` scatter-gather;
* ``--compare`` runs both (result caches off, so the cache cannot mask
  the dispatch path) and reports the sharded/embedded speedup at the
  highest client level; ``--min-speedup X`` turns that into an exit
  code for CI;
* ``--crash`` (sharded only, needs ``--replicas >= 2``) kills worker 1
  mid-run via an injected fault plan and fails unless the load report
  shows **zero** errors — the failover acceptance check.

Runs 1, 8 and 32 clients and writes a ``BENCH_serving.json`` artifact
with throughput and p50/p95/p99 latency per level::

    python benchmarks/bench_serving.py            # ~5 s per level
    python benchmarks/bench_serving.py --smoke    # ~0.5 s per level (CI)
    python benchmarks/bench_serving.py --smoke --shards 4 --replicas 2 \\
        --compare --crash
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, ModelarDB  # noqa: E402
from repro.cluster import FaultPlan  # noqa: E402
from repro.datasets import generate_ep  # noqa: E402
from repro.datasets.ep import EP_CORRELATION  # noqa: E402
from repro.server import (  # noqa: E402
    EmbeddedDispatcher,
    QueryServer,
    ServerThread,
    build_workload,
    run_load,
)
from repro.shard import ShardedCluster, ShardedDispatcher  # noqa: E402

#: Serving-scale EP: enough segments that statements do real work, small
#: enough that ingest stays in seconds.
DATASET_SCALE = dict(
    n_entities=5, measures_per_entity=4, n_points=2_000,
    gap_probability=0.0008, seed=42,
)

CLIENT_LEVELS = (1, 8, 32)

#: Executes worker 1 answers before the ``--crash`` fault kills it —
#: deep enough into the run that the crash lands mid-measurement.
_CRASH_AFTER_EXECUTES = 5


def prepare_database() -> tuple[ModelarDB, Configuration, dict]:
    dataset = generate_ep(**DATASET_SCALE)
    config = Configuration(error_bound=1.0, correlation=list(EP_CORRELATION))
    db = ModelarDB(config, dimensions=dataset.dimensions)
    db.ingest(dataset.series)
    tids = sorted(ts.tid for ts in dataset.series)
    start = min(ts.start_time for ts in dataset.series)
    end = max(ts.end_time for ts in dataset.series)
    si = dataset.series[0].sampling_interval
    meta = {
        "n_series": len(tids),
        "segments": db.segment_count(),
        "tids": tids,
        "start": start,
        "end": end,
        "si": si,
        "dimensions": dataset.dimensions,
    }
    return db, config, meta


def measure_backend(
    dispatcher,
    statements: list[str],
    arguments: argparse.Namespace,
    duration: float,
    label: str,
) -> tuple[list[dict], dict, dict]:
    """Serve ``dispatcher`` and drive every client level against it.

    Returns (per-level run dicts, server stats, metrics snapshot).
    """
    server = QueryServer(
        dispatcher,
        max_inflight=arguments.max_inflight,
        max_waiting=max(64, 4 * arguments.max_inflight),
    )
    harness = ServerThread(server)
    host, port = harness.start()
    print(f"serving {label} on {host}:{port}, "
          f"max_inflight={arguments.max_inflight}")
    runs = []
    try:
        for clients in CLIENT_LEVELS:
            report = run_load(
                host, port, statements,
                clients=clients, duration=duration,
                columnar=arguments.columnar,
            )
            print(report.summary())
            runs.append(report.to_dict())
        stats = server.stats()
        obs_snapshot = dispatcher.metrics()
    finally:
        harness.stop()
    print()
    return runs, stats, obs_snapshot


def build_sharded_dispatcher(
    db: ModelarDB,
    config: Configuration,
    meta: dict,
    arguments: argparse.Namespace,
    cache_capacity: int,
    fault_plan: FaultPlan | None = None,
) -> ShardedDispatcher:
    tier = ShardedCluster(
        arguments.shards,
        n_replicas=arguments.replicas,
        config=config,
        dimensions=meta["dimensions"],
        fault_plan=fault_plan,
        timeout=5.0,
    )
    placement = tier.load_storage(db.storage)
    print(f"  sharded: {placement['groups']} groups over "
          f"{len(placement['shards'])} shards, "
          f"{arguments.shards} workers x {arguments.replicas} replicas")
    return ShardedDispatcher(
        tier, owns_tier=True, result_cache_capacity=cache_capacity
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of measured load per client level",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: 0.5 s per level",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8,
        help="server executor width (admission bound)",
    )
    parser.add_argument(
        "--columnar", action=argparse.BooleanOptionalAction, default=True,
        help="clients negotiate the columnar response format "
             "(--no-columnar forces JSON rows)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help="serve from this many sharded worker processes "
             "(0 = embedded engine)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard in sharded mode",
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="also run the single-process embedded baseline (caches "
             "off in both) and report the sharded speedup",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="with --compare: exit non-zero unless sharded throughput "
             "at the top client level is at least this multiple of the "
             "embedded baseline (only enforced when given — a 1-core "
             "machine cannot show a parallel speedup)",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="sharded mode: kill worker 1 mid-run via a fault plan and "
             "fail unless the load report shows zero errors",
    )
    parser.add_argument(
        "--output", default="BENCH_serving.json",
        help="path of the JSON artifact",
    )
    arguments = parser.parse_args(argv)
    duration = 0.5 if arguments.smoke else arguments.duration
    if arguments.shards < 0:
        parser.error("--shards must be >= 0")
    if arguments.replicas < 1:
        parser.error("--replicas must be >= 1")
    sharded = arguments.shards > 0
    if (arguments.compare or arguments.crash) and not sharded:
        parser.error("--compare/--crash need --shards > 0")
    if arguments.crash and arguments.replicas < 2:
        parser.error("--crash needs --replicas >= 2 to have a survivor")
    if arguments.min_speedup is not None and not arguments.compare:
        parser.error("--min-speedup needs --compare")

    print(f"ingesting synthetic EP {DATASET_SCALE} ...")
    db, config, meta = prepare_database()
    print(f"  {meta['n_series']} series, {meta['segments']} segments")
    statements = build_workload(
        meta["tids"], meta["start"], meta["end"], meta["si"], seed=7
    )
    print(f"  workload: {len(statements)} statements (S-AGG + L-AGG + P/R)")

    # --compare measures the dispatch path, so the result cache must not
    # answer for it; a plain run keeps the production default.
    cache_capacity = 0 if arguments.compare else 256
    mode = "sharded" if sharded else "embedded"
    fault_plan = (
        FaultPlan.crash_after(1, after=_CRASH_AFTER_EXECUTES)
        if arguments.crash
        else None
    )

    baseline_runs = None
    if arguments.compare:
        dispatcher = EmbeddedDispatcher.for_db(
            db, result_cache_capacity=cache_capacity
        )
        baseline_runs, _, _ = measure_backend(
            dispatcher, statements, arguments, duration,
            "embedded (baseline)",
        )

    if sharded:
        dispatcher = build_sharded_dispatcher(
            db, config, meta, arguments, cache_capacity, fault_plan
        )
    else:
        dispatcher = EmbeddedDispatcher.for_db(
            db, result_cache_capacity=cache_capacity
        )
    runs, stats, obs_snapshot = measure_backend(
        dispatcher, statements, arguments, duration, mode
    )
    tier_stats = stats["dispatcher"].get("shard_tier")
    dispatcher.close()

    failures: list[str] = []
    compare = None
    if baseline_runs is not None:
        baseline_qps = baseline_runs[-1]["throughput_qps"]
        sharded_qps = runs[-1]["throughput_qps"]
        speedup = (
            sharded_qps / baseline_qps if baseline_qps > 0 else 0.0
        )
        compare = {
            "clients": CLIENT_LEVELS[-1],
            "baseline_qps": baseline_qps,
            "sharded_qps": sharded_qps,
            "speedup": round(speedup, 3),
            "min_speedup": arguments.min_speedup,
        }
        print(f"speedup at {CLIENT_LEVELS[-1]} clients: "
              f"{sharded_qps:.1f} / {baseline_qps:.1f} = {speedup:.2f}x")
        if (
            arguments.min_speedup is not None
            and speedup < arguments.min_speedup
        ):
            failures.append(
                f"speedup {speedup:.2f}x below required "
                f"{arguments.min_speedup:.2f}x"
            )
    if arguments.crash:
        errors = sum(run["errors"] for run in runs)
        lost = tier_stats["lost_workers"] if tier_stats else 0
        print(f"crash scenario: {errors} client-visible errors, "
              f"{lost} worker(s) lost")
        if errors:
            failures.append(
                f"crash scenario surfaced {errors} client errors "
                f"(first: {next(r['first_error'] for r in runs if r['errors'])})"
            )
        if not lost:
            failures.append(
                "crash scenario never fired: no worker was lost "
                "(fault plan misrouted?)"
            )

    artifact = {
        "benchmark": f"serving (closed-loop, {mode} engine)",
        "generated_unix": int(time.time()),
        "mode": mode,
        "wire": "columnar" if arguments.columnar else "json",
        "shards": arguments.shards if sharded else None,
        "replicas": arguments.replicas if sharded else None,
        "crash": arguments.crash,
        "smoke": arguments.smoke,
        "dataset": {
            key: meta[key] for key in ("n_series", "segments", "start",
                                       "end", "si")
        },
        "server": {
            "max_inflight": arguments.max_inflight,
            "result_cache": stats["dispatcher"]["result_cache"],
            "segment_cache": stats["dispatcher"].get("segment_cache"),
            "shard_tier": tier_stats,
            "counters": stats["counters"],
        },
        "workload_statements": len(statements),
        "runs": runs,
        "baseline_runs": baseline_runs,
        "compare": compare,
        # Full registry snapshot (docs/METRICS.md): lets a benchmark
        # diff explain a throughput change via push-down/cache/storage
        # counters instead of guessing.
        "obs": obs_snapshot,
    }
    output = Path(arguments.output)
    output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {output}")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
