"""Serving benchmark: closed-loop load against the query server.

Not a paper figure — the paper serves queries through Spark SQL and
never measures the serving axis — but the ROADMAP's north star ("serve
heavy traffic") needs a measured baseline. The harness follows the
closed-loop shape of SciTS (arXiv:2204.09795): N clients, each issuing
the next statement the moment the previous response lands, over the
evaluation's S-AGG / L-AGG / P-R mix rendered as SQL.

Runs the embedded-engine server in-process at 1, 8 and 32 clients and
writes a ``BENCH_serving.json`` artifact with throughput and
p50/p95/p99 latency per level::

    python benchmarks/bench_serving.py            # ~5 s per level
    python benchmarks/bench_serving.py --smoke    # ~0.5 s per level (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, ModelarDB  # noqa: E402
from repro.datasets import generate_ep  # noqa: E402
from repro.datasets.ep import EP_CORRELATION  # noqa: E402
from repro.server import (  # noqa: E402
    EmbeddedDispatcher,
    QueryServer,
    ServerThread,
    build_workload,
    run_load,
)

#: Serving-scale EP: enough segments that statements do real work, small
#: enough that ingest stays in seconds.
DATASET_SCALE = dict(
    n_entities=5, measures_per_entity=4, n_points=2_000,
    gap_probability=0.0008, seed=42,
)

CLIENT_LEVELS = (1, 8, 32)


def prepare_database() -> tuple[ModelarDB, dict]:
    dataset = generate_ep(**DATASET_SCALE)
    config = Configuration(error_bound=1.0, correlation=list(EP_CORRELATION))
    db = ModelarDB(config, dimensions=dataset.dimensions)
    db.ingest(dataset.series)
    tids = sorted(ts.tid for ts in dataset.series)
    start = min(ts.start_time for ts in dataset.series)
    end = max(ts.end_time for ts in dataset.series)
    si = dataset.series[0].sampling_interval
    meta = {
        "n_series": len(tids),
        "segments": db.segment_count(),
        "tids": tids,
        "start": start,
        "end": end,
        "si": si,
    }
    return db, meta


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="seconds of measured load per client level",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: 0.5 s per level",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8,
        help="server executor width (admission bound)",
    )
    parser.add_argument(
        "--output", default="BENCH_serving.json",
        help="path of the JSON artifact",
    )
    arguments = parser.parse_args(argv)
    duration = 0.5 if arguments.smoke else arguments.duration

    print(f"ingesting synthetic EP {DATASET_SCALE} ...")
    db, meta = prepare_database()
    print(f"  {meta['n_series']} series, {meta['segments']} segments")
    statements = build_workload(
        meta["tids"], meta["start"], meta["end"], meta["si"], seed=7
    )
    print(f"  workload: {len(statements)} statements (S-AGG + L-AGG + P/R)")

    dispatcher = EmbeddedDispatcher.for_db(db)
    server = QueryServer(
        dispatcher,
        max_inflight=arguments.max_inflight,
        max_waiting=max(64, 4 * arguments.max_inflight),
    )
    harness = ServerThread(server)
    host, port = harness.start()
    print(f"serving embedded on {host}:{port}, "
          f"max_inflight={arguments.max_inflight}\n")

    runs = []
    try:
        for clients in CLIENT_LEVELS:
            report = run_load(
                host, port, statements,
                clients=clients, duration=duration,
            )
            print(report.summary())
            runs.append(report.to_dict())
        stats = server.stats()
        obs_snapshot = dispatcher.metrics()
    finally:
        harness.stop()

    artifact = {
        "benchmark": "serving (closed-loop, embedded engine)",
        "generated_unix": int(time.time()),
        "mode": "embedded",
        "smoke": arguments.smoke,
        "dataset": {
            key: meta[key] for key in ("n_series", "segments", "start",
                                       "end", "si")
        },
        "server": {
            "max_inflight": arguments.max_inflight,
            "result_cache": stats["dispatcher"]["result_cache"],
            "segment_cache": stats["dispatcher"]["segment_cache"],
            "counters": stats["counters"],
        },
        "workload_statements": len(statements),
        "runs": runs,
        # Full registry snapshot (docs/METRICS.md): lets a benchmark
        # diff explain a throughput change via push-down/cache/storage
        # counters instead of guessing.
        "obs": obs_snapshot,
    }
    output = Path(arguments.output)
    output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
