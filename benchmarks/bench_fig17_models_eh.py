"""Figure 17: model usage mix on EH per error bound.

Paper (% of data points): on the weakly correlated, high-frequency EH,
Gorilla carries much more of the data than on EP (58.67 % at 0 %) and
PMC grows with the bound (40.72 -> 49.25 %); Swing stays marginal.
"""

import pytest

from .conftest import ERROR_BOUNDS, format_table


def test_fig17_model_mix_eh(benchmark, eh_systems, report):
    def measure():
        mixes = {}
        for bound in ERROR_BOUNDS:
            fmt = eh_systems.get(f"ModelarDBv2@{bound:g}")
            mixes[bound] = fmt.db.stats.model_mix()
        return mixes

    mixes = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [
            f"{bound:g}%",
            f"{mix.get('PMC', 0.0):.2f}",
            f"{mix.get('Swing', 0.0):.2f}",
            f"{mix.get('Gorilla', 0.0):.2f}",
        ]
        for bound, mix in mixes.items()
    ]
    report(
        "Figure 17 models used, EH (% of data points)",
        format_table(["Error bound", "PMC-Mean", "Swing", "Gorilla"], rows)
        + ["Paper shape: Gorilla much more prominent than on EP; PMC "
           "grows with the bound."],
    )
    for mix in mixes.values():
        assert sum(mix.values()) == pytest.approx(100.0)
    # Gorilla carries more of EH at a 0% bound than it does once a
    # usable bound exists.
    assert mixes[0.0].get("Gorilla", 0.0) >= mixes[10.0].get("Gorilla", 0.0)
