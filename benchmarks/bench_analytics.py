"""Analytics benchmark: model-native SIMILAR TO vs point-decode search.

Not a paper figure — the paper lists similarity search on models as
future work (Section 9) — but the claim behind ``repro.query.analytics``
is measurable: a ``SIMILAR TO`` search answered from the parameter-space
:class:`~repro.query.analytics.SignatureIndex` (segment envelopes prune
windows before any value is reconstructed) should beat a brute-force
baseline that decodes every series and scores every window, and the gap
should widen with the number of series. Both sides share the decode
kernels and the distance formula, so the top-k results are verified
identical before anything is timed.

A second section measures ``FORECAST(TS, horizon)``: statement latency
on the same store, plus accuracy on held-out points of deterministic
trend series — the model's slope continuation against the naive
hold-last-value forecast — and the fraction of true values inside the
propagated ``[Lo, Hi]`` interval. Writes a ``BENCH_analytics.json``
artifact::

    python benchmarks/bench_analytics.py            # ~2 min, 1,024 series
    python benchmarks/bench_analytics.py --smoke    # seconds (CI)
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, ModelarDB  # noqa: E402
from repro.core.group import TimeSeriesGroup  # noqa: E402
from repro.core.timeseries import TimeSeries  # noqa: E402
from repro.query.analytics import (  # noqa: E402
    Match,
    SearchStats,
    SignatureIndex,
)
from repro.query.engine import QueryEngine  # noqa: E402
from repro.query.rewriter import Predicates, rewrite  # noqa: E402

SAMPLING_INTERVAL = 100
SERIES_PER_GROUP = 8
ERROR_BOUND = 1.0
PATTERN_LENGTH = 32
K = 10
HORIZON = 16


def regime_group(
    gid: int, first_tid: int, n_points: int, seed: int
) -> TimeSeriesGroup:
    """Correlated holds and ramps with jitter — the same regime the
    ingestion and query benchmarks use, so segments look like
    production ones (PMC-Mean holds and Swing trends dominate)."""
    rng = np.random.default_rng(seed)
    shared = np.empty(n_points)
    level = 100.0
    i = 0
    while i < n_points:
        if rng.random() < 0.5:
            run = min(int(rng.integers(100, 300)), n_points - i)
            shared[i:i + run] = level
        else:
            run = min(int(rng.integers(50, 150)), n_points - i)
            slope = rng.uniform(-0.02, 0.02)
            shared[i:i + run] = level + slope * np.arange(run)
            level = shared[i + run - 1]
        i += run
    timestamps = np.arange(n_points, dtype=np.int64) * SAMPLING_INTERVAL
    series = []
    for offset in range(SERIES_PER_GROUP):
        tid = first_tid + offset
        base = rng.uniform(-0.05, 0.05)
        jitter = rng.normal(0.0, 0.002, n_points)
        values = np.float32(shared + base + jitter)
        series.append(TimeSeries(tid, SAMPLING_INTERVAL, timestamps, values))
    return TimeSeriesGroup(gid, series)


def build_db(n_groups: int, n_points: int) -> tuple[ModelarDB, np.ndarray]:
    """Ingest the workload; returns (db, search pattern).

    The pattern is a window cut from the first series' raw values —
    query-by-example, so the search has a meaningful nearest match.
    """
    groups = [
        regime_group(gid, 1 + (gid - 1) * SERIES_PER_GROUP, n_points, seed=gid)
        for gid in range(1, n_groups + 1)
    ]
    pattern = np.asarray(
        groups[0].series[0].values[
            n_points // 2:n_points // 2 + PATTERN_LENGTH
        ],
        dtype=np.float64,
    )
    db = ModelarDB.open(config=Configuration(error_bound=ERROR_BOUND))
    db.ingest(groups)
    return db, pattern


# ----------------------------------------------------------------------
# The point-decode baseline
# ----------------------------------------------------------------------
def brute_force_search(
    engine: QueryEngine, pattern: np.ndarray, k: int
) -> list[Match]:
    """Decode every series, score every window, keep the global top-k.

    The honest non-indexed competitor: it pays one full reconstruction
    per series (the decode the envelope index avoids) and a vectorised
    distance evaluation over all windows (the work the lower bound
    prunes). Ordering matches the analytics path: (Distance, Tid,
    StartTime).
    """
    plan = rewrite(Predicates(), engine.metadata)
    index = SignatureIndex(engine._segment_view().rows(plan))
    length = len(pattern)
    matches: list[Match] = []
    for tid in index.tids:
        rows = index.segments(tid)
        si = rows[0].row.sampling_interval
        start = rows[0].row.start_time
        end = max(view_row.row.end_time for view_row in rows)
        n_points = (end - start) // si + 1
        values = index.reconstruct(tid, n_points)
        n_windows = n_points - length + 1
        if n_windows < 1:
            continue
        windows = np.lib.stride_tricks.sliding_window_view(values, length)
        squared = ((windows - pattern) ** 2).sum(axis=1)
        for position in np.flatnonzero(np.isfinite(squared)):
            window = values[position:position + length]
            # The exact per-window expression the verified path uses,
            # so distances are bit-identical, not merely close.
            distance = float(np.sqrt(((window - pattern) ** 2).sum()))
            matches.append(Match(tid, int(start + position * si), distance))
    matches.sort(key=lambda m: (m.distance, m.tid, m.start_time))
    return matches[:k]


def row_bits(rows: list[dict]):
    return [
        {
            key: struct.pack("<d", value) if isinstance(value, float) else value
            for key, value in row.items()
        }
        for row in rows
    ]


def time_call(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def measure_similarity(
    db: ModelarDB, pattern: np.ndarray, repeats: int
) -> dict:
    row_engine = QueryEngine(
        db.storage, db.registry, columnar=False, error_bound=ERROR_BOUND
    )
    col_engine = QueryEngine(
        db.storage, db.registry, columnar=True, error_bound=ERROR_BOUND
    )
    literals = ", ".join(repr(float(value)) for value in pattern)
    sql = f"SELECT * FROM DataPoint SIMILAR TO ({literals}) LIMIT {K}"

    # Verify before timing: row mode, columnar mode and the brute-force
    # decode must return bit-identical top-k rows.
    row_rows = row_engine.sql(sql)
    col_rows = col_engine.sql(sql)
    assert row_bits(col_rows) == row_bits(row_rows), (
        "SIMILAR TO: columnar result is not bit-identical to the row path"
    )
    brute = [
        {"Tid": m.tid, "StartTime": m.start_time, "Distance": m.distance}
        for m in brute_force_search(row_engine, pattern, K)
    ]
    assert row_bits(brute) == row_bits(row_rows), (
        "SIMILAR TO: pruned search disagrees with the brute-force decode"
    )

    stats = SearchStats()
    plan = rewrite(Predicates(), row_engine.metadata)
    index = SignatureIndex(row_engine._segment_view().rows(plan))
    from repro.query.analytics import search

    search(index, pattern, K, stats)

    model_best = brute_best = float("inf")
    for _ in range(repeats):
        model_best = min(model_best, time_call(lambda: row_engine.sql(sql)))
        brute_best = min(
            brute_best,
            time_call(lambda: brute_force_search(row_engine, pattern, K)),
        )
    return {
        "sql": f"SELECT * FROM DataPoint SIMILAR TO (...) LIMIT {K}",
        "pattern_length": PATTERN_LENGTH,
        "k": K,
        "windows": stats.windows,
        "verified": stats.verified,
        "pruned_fraction": round(stats.pruned_fraction, 6),
        "model_native_seconds": round(model_best, 6),
        "point_decode_seconds": round(brute_best, 6),
        "speedup": round(brute_best / model_best, 3),
        "top_distance": row_rows[0]["Distance"] if row_rows else None,
    }


def measure_forecast(db: ModelarDB, repeats: int) -> dict:
    row_engine = QueryEngine(
        db.storage, db.registry, columnar=False, error_bound=ERROR_BOUND
    )
    col_engine = QueryEngine(
        db.storage, db.registry, columnar=True, error_bound=ERROR_BOUND
    )
    sql = f"SELECT FORECAST(TS, {HORIZON}) FROM DataPoint"
    row_rows = row_engine.sql(sql)
    col_rows = col_engine.sql(sql)
    assert row_bits(col_rows) == row_bits(row_rows), (
        "FORECAST: columnar result is not bit-identical to the row path"
    )
    best = float("inf")
    for _ in range(repeats):
        best = min(best, time_call(lambda: row_engine.sql(sql)))
    return {
        "sql": sql,
        "horizon": HORIZON,
        "rows": len(row_rows),
        "seconds": round(best, 6),
    }


def forecast_accuracy() -> dict:
    """Held-out accuracy on deterministic trend series.

    Ingest the prefix of linear ramps, forecast ``HORIZON`` steps, and
    compare against the held-out true values: the model forecast
    continues the fitted slope while the naive baseline repeats the
    last observed value. Also reports how often the true value falls
    inside the propagated ``[Lo, Hi]`` interval.
    """
    n_points, n_series = 512, 8
    timestamps = np.arange(n_points, dtype=np.int64) * SAMPLING_INTERVAL
    groups, truth, naive = [], {}, {}
    for tid in range(1, n_series + 1):
        # Steep enough that a constant hold leaves the 1% bound within
        # one segment, so every segment fits Swing, not PMC-Mean.
        slope = 0.05 * tid
        values = np.float32(50.0 + slope * np.arange(n_points))
        prefix = n_points - HORIZON
        # One group per series: the slopes diverge, so joint fitting
        # would push every segment to the lossless model and turn the
        # forecast into a hold — Swing needs per-series segments here.
        groups.append(
            TimeSeriesGroup(
                tid,
                [
                    TimeSeries(
                        tid,
                        SAMPLING_INTERVAL,
                        timestamps[:prefix],
                        values[:prefix],
                    )
                ],
            )
        )
        truth[tid] = values[prefix:].astype(np.float64)
        naive[tid] = float(values[prefix - 1])
    with ModelarDB.open(config=Configuration(error_bound=ERROR_BOUND)) as db:
        db.ingest(groups)
        rows = db.sql(f"SELECT FORECAST(TS, {HORIZON}) FROM DataPoint")
    last_ingested = int(timestamps[n_points - HORIZON - 1])
    model_errors, naive_errors, contained = [], [], 0
    for row in rows:
        tid = row["Tid"]
        step = (row["TS"] - last_ingested) // SAMPLING_INTERVAL - 1
        true = float(truth[tid][step])
        model_errors.append(abs(row["Value"] - true))
        naive_errors.append(abs(naive[tid] - true))
        if row["Lo"] <= true <= row["Hi"]:
            contained += 1
    return {
        "series": n_series,
        "horizon": HORIZON,
        "model_mae": round(float(np.mean(model_errors)), 6),
        "naive_mae": round(float(np.mean(naive_errors)), 6),
        "interval_containment": round(contained / len(rows), 6),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--groups", type=int, default=128,
        help=f"correlated groups of {SERIES_PER_GROUP} series each",
    )
    parser.add_argument(
        "--points", type=int, default=1_000,
        help="ticks per series",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="interleaved repetitions; best of N is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: 16 groups, 256 points, two repetitions",
    )
    parser.add_argument(
        "--output", default="BENCH_analytics.json",
        help="path of the JSON artifact",
    )
    arguments = parser.parse_args(argv)
    n_groups = 16 if arguments.smoke else arguments.groups
    n_points = 256 if arguments.smoke else arguments.points
    repeats = 2 if arguments.smoke else arguments.repeats
    n_series = n_groups * SERIES_PER_GROUP

    print(f"ingesting {n_series} series × {n_points:,} points ...")
    db, pattern = build_db(n_groups, n_points)

    similarity = measure_similarity(db, pattern, repeats)
    print(
        f"  SIMILAR TO      model-native "
        f"{similarity['model_native_seconds'] * 1000:9.2f} ms   "
        f"point-decode {similarity['point_decode_seconds'] * 1000:9.2f} ms   "
        f"speedup {similarity['speedup']:.2f}x   "
        f"pruned {similarity['pruned_fraction']:.1%}"
    )
    forecast = measure_forecast(db, repeats)
    print(
        f"  FORECAST        {forecast['rows']} rows in "
        f"{forecast['seconds'] * 1000:9.2f} ms"
    )
    accuracy = forecast_accuracy()
    print(
        f"  accuracy        model MAE {accuracy['model_mae']:.4f}   "
        f"naive MAE {accuracy['naive_mae']:.4f}   "
        f"containment {accuracy['interval_containment']:.1%}"
    )

    artifact = {
        "benchmark": "model-native analytics (SIMILAR TO, FORECAST)",
        "generated_unix": int(time.time()),
        "smoke": arguments.smoke,
        "workload": "correlated holds+ramps, 1% error bound",
        "series": n_series,
        "points_per_series": n_points,
        "repeats": repeats,
        "similarity": similarity,
        "forecast": forecast,
        "forecast_accuracy": accuracy,
    }
    output = Path(arguments.output)
    output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
