"""Figure 23: point and range queries (P/R) on EP.

P/R is *not* MMGC's use case: a point query may read a large group
segment for one value. Paper (minutes): InfluxDB 5.58, Cassandra 8.63,
Parquet 6.61, ORC 8.64, ModelarDBv1-DPV 8.64, ModelarDBv2-DPV 8.94 — v2
only 3.5 % slower than v1 on EP because EP's groups are small.
"""

import pytest

from repro.workloads import p_r

from .conftest import format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1-DPV@5",
    "ModelarDBv2-DPV@5",
)

_seconds: dict[str, float] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig23_pr_ep(benchmark, ep_dataset, ep_systems, system):
    fmt = ep_systems.get(system)
    workload = p_r(
        ep_dataset.production_tids,
        ep_dataset.start_time,
        ep_dataset.end_time,
        ep_dataset.sampling_interval,
        seed=23,
        count=10,
    )
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig23_report(benchmark, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{value * 1e3:.2f} ms"] for name, value in _seconds.items()
    ]
    v1 = _seconds["ModelarDBv1-DPV"]
    v2 = _seconds["ModelarDBv2-DPV"]
    report(
        "Figure 23 P/R, EP",
        format_table(["System", "Runtime"], rows)
        + [
            f"v2/v1 overhead: {v2 / v1:.2f}x (paper: 1.035x — small "
            "groups keep the MMGC read overhead negligible on EP)",
        ],
    )
    # The overhead of reading groups exists but stays moderate on EP.
    assert v2 < 4.0 * v1
