"""Figure 25: M-AGG-One on EP — GROUP BY month and Category.

The grouping matches the partitioning level, so ModelarDBv2 reads only
the data each query needs and executes the rollup on models. Paper
(minutes): InfluxDB unsupported, Cassandra 1607, Parquet 106, ORC 53,
ModelarDBv2-SV 28.97, -DPV 64.45 — v2 1.84-55x faster than the formats.
"""

import pytest

from .magg_common import SYSTEMS, influx_unsupported, magg_report, run_magg

MEMBER = ("Category", "ProductionMWh")
GROUP_BY = "Category"

_seconds: dict[str, object] = {}


@pytest.mark.parametrize("system", [s for s in SYSTEMS if s != "InfluxDB"])
def test_fig25_magg_one_ep(benchmark, ep_systems, system):
    workload, fmt = run_magg(ep_systems, system, MEMBER, GROUP_BY, False)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig25_report(benchmark, ep_systems, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _seconds["InfluxDB"] = influx_unsupported(ep_systems)
    magg_report(
        report,
        "Figure 25 M-AGG-One, EP",
        _seconds,
        "Paper shape: InfluxDB unsupported; v2-SV fastest by a wide "
        "margin; DPV ~2x slower than SV.",
    )
    sv = _seconds["ModelarDBv2-SV"]
    assert sv < _seconds["Cassandra"]
    assert sv <= _seconds["ModelarDBv2-DPV"]
