"""Query benchmark: row-at-a-time vs columnar read path.

Not a paper figure — the paper reports end-to-end query latency per
system (Fig. 15–16) but never isolates the read path's own execution
strategy — yet the columnar path (block decode via
``FittedModel.values_block``, vectorized predicate masks, and the
model-parameter aggregate fold) exists purely for this axis, so it
needs a measured baseline. The workload splits along the pushdown
boundary:

- **aggregate** statements answerable from segment metadata, where the
  win is the vectorized multi-series fold;
- **point scans** that must materialize values, where the win is
  decoding each segment once into a ``(ticks × series)`` block instead
  of reconstructing point by point.

Both strategies share one plan, so rows are verified bit-identical
before anything is timed. Interleaved best-of-N cancels machine noise
out of the ratio. Writes a ``BENCH_query.json`` artifact::

    python benchmarks/bench_query.py            # ~1 min
    python benchmarks/bench_query.py --smoke    # seconds (CI)
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import Configuration, ModelarDB  # noqa: E402
from repro.core.group import TimeSeriesGroup  # noqa: E402
from repro.core.timeseries import TimeSeries  # noqa: E402
from repro.query.engine import QueryEngine  # noqa: E402

SAMPLING_INTERVAL = 100
N_SERIES = 16

#: (name, kind, statement) — the kind labels which half of the pushdown
#: boundary the statement exercises.
WORKLOAD = (
    (
        "aggregate_full",
        "aggregate",
        "SELECT COUNT(*), SUM(*), MIN(*), MAX(*), AVG(*) FROM DataPoint",
    ),
    (
        "aggregate_grouped",
        "aggregate",
        "SELECT Tid, SUM(*), AVG(*) FROM DataPoint GROUP BY Tid",
    ),
    (
        "aggregate_time_sliced",
        "aggregate",
        None,  # filled in once the time span is known
    ),
    (
        "scan_predicate",
        "point_scan",
        "SELECT Tid, TS, Value FROM DataPoint WHERE Value > 100.0",
    ),
    (
        "aggregate_value_filtered",
        "point_scan",
        "SELECT SUM(*), COUNT(*) FROM DataPoint WHERE Value > 100.0",
    ),
)


def regime_group(n_series: int, n_points: int, seed: int) -> TimeSeriesGroup:
    """Correlated holds and ramps with jitter — same regime the
    ingestion benchmark uses, so segments look like production ones."""
    rng = np.random.default_rng(seed)
    shared = np.empty(n_points)
    level = 100.0
    i = 0
    while i < n_points:
        if rng.random() < 0.5:
            run = min(int(rng.integers(100, 300)), n_points - i)
            shared[i:i + run] = level
        else:
            run = min(int(rng.integers(50, 150)), n_points - i)
            slope = rng.uniform(-0.02, 0.02)
            shared[i:i + run] = level + slope * np.arange(run)
            level = shared[i + run - 1]
        i += run
    timestamps = np.arange(n_points, dtype=np.int64) * SAMPLING_INTERVAL
    series = []
    for tid in range(1, n_series + 1):
        offset = rng.uniform(-0.05, 0.05)
        jitter = rng.normal(0.0, 0.002, n_points)
        values = np.float32(shared + offset + jitter)
        series.append(TimeSeries(tid, SAMPLING_INTERVAL, timestamps, values))
    return TimeSeriesGroup(1, series)


def build_db(n_points: int) -> ModelarDB:
    db = ModelarDB.open(config=Configuration(error_bound=1.0))
    db.ingest([regime_group(N_SERIES, n_points, seed=23)])
    return db


def statements(n_points: int):
    span = n_points * SAMPLING_INTERVAL
    filled = []
    for name, kind, sql in WORKLOAD:
        if sql is None:
            sql = (
                "SELECT SUM(*), AVG(*) FROM DataPoint "
                f"WHERE TS >= {span // 4} AND TS <= {3 * span // 4}"
            )
        filled.append((name, kind, sql))
    return filled


def row_bits(rows: list[dict]):
    return [
        {
            key: struct.pack("<d", value) if isinstance(value, float) else value
            for key, value in row.items()
        }
        for row in rows
    ]


def time_sql(engine: QueryEngine, sql: str) -> float:
    started = time.perf_counter()
    engine.sql(sql)
    return time.perf_counter() - started


def measure(db: ModelarDB, n_points: int, repeats: int) -> list[dict]:
    """Two engines over the same storage, differing only in strategy."""
    row_engine = QueryEngine(db.storage, db.registry, columnar=False)
    col_engine = QueryEngine(db.storage, db.registry, columnar=True)
    runs = []
    for name, kind, sql in statements(n_points):
        row_rows = row_engine.sql(sql)  # warm caches and verify first
        col_rows = col_engine.sql(sql)
        assert row_bits(col_rows) == row_bits(row_rows), (
            f"{name}: columnar result is not bit-identical to the row path"
        )
        row_best = col_best = float("inf")
        for _ in range(repeats):
            row_best = min(row_best, time_sql(row_engine, sql))
            col_best = min(col_best, time_sql(col_engine, sql))
        runs.append(
            {
                "name": name,
                "kind": kind,
                "sql": sql,
                "rows": len(row_rows),
                "row_seconds": round(row_best, 6),
                "columnar_seconds": round(col_best, 6),
                "speedup": round(row_best / col_best, 3),
            }
        )
    return runs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=60_000,
        help=f"ticks per series ({N_SERIES} series total)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="interleaved repetitions; best of N is reported",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run: 4k points, two repetitions",
    )
    parser.add_argument(
        "--output", default="BENCH_query.json",
        help="path of the JSON artifact",
    )
    arguments = parser.parse_args(argv)
    n_points = 4_000 if arguments.smoke else arguments.points
    repeats = 2 if arguments.smoke else arguments.repeats

    print(f"ingesting {N_SERIES} series × {n_points:,} points ...")
    db = build_db(n_points)
    runs = measure(db, n_points, repeats)
    for run in runs:
        print(
            f"  {run['name']:<26} row {run['row_seconds'] * 1000:9.2f} ms   "
            f"columnar {run['columnar_seconds'] * 1000:9.2f} ms   "
            f"speedup {run['speedup']:.2f}x"
        )

    artifact = {
        "benchmark": "query execution (row vs columnar read path)",
        "generated_unix": int(time.time()),
        "smoke": arguments.smoke,
        "workload": "correlated holds+ramps, 1% error bound",
        "series": N_SERIES,
        "points_per_series": n_points,
        "repeats": repeats,
        "runs": runs,
    }
    output = Path(arguments.output)
    output.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
