"""Ablation: gap representation (Section 3.2's design trade-off).

ModelarDB stores gaps by starting a new segment whose ``gaps`` set lists
the absent Tids (24 bytes + model), instead of (Tid, ts, te) triples (20
bytes each). The paper argues the segment method simplifies models and
query processing at a small storage cost. This ablation quantifies that
cost on gap-heavy EP data: segments actually emitted because of gap
transitions vs the triple bytes that method one would have used.
"""

import pytest

from repro import Configuration, ModelarDB
from repro.core.segment import GAP_TRIPLE_BYTES
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.storage import SegmentScan

from .conftest import format_table


def test_ablation_gap_storage(benchmark, report):
    dataset = generate_ep(
        n_entities=3, measures_per_entity=3, n_points=3_000,
        gap_probability=0.004, seed=30,
    )

    def ingest():
        db = ModelarDB(
            Configuration(error_bound=1.0, correlation=EP_CORRELATION),
            dimensions=dataset.dimensions,
        )
        db.ingest(dataset.series)
        return db

    db = benchmark.pedantic(ingest, rounds=1, iterations=1)

    total_gaps = sum(ts.gaps().__len__() for ts in dataset.series)
    triple_bytes = total_gaps * GAP_TRIPLE_BYTES
    # Segments whose gap set is non-empty exist only because of method
    # two; their overhead approximates the method's cost.
    gap_segments = sum(
        1 for segment in db.storage.scan(SegmentScan()) if segment.gaps
    )
    segment_overhead = sum(
        segment.storage_bytes()
        for segment in db.storage.scan(SegmentScan())
        if segment.gaps
    )
    report(
        "Ablation: gap storage methods (Section 3.2)",
        format_table(
            ["Quantity", "Value"],
            [
                ["gaps in the data", total_gaps],
                ["method 1 (triples) bytes", triple_bytes],
                ["method 2 gap-segments", gap_segments],
                ["method 2 gap-segment bytes", segment_overhead],
                ["total store bytes", db.size_bytes()],
            ],
        )
        + [
            "The paper: triples cost 20 B/gap; a new segment costs 24 B "
            "+ model — a deliberate trade for simpler models and faster "
            "queries.",
        ],
    )
    assert total_gaps > 0
    assert gap_segments > 0
