"""Ablation: multiple models per segment (§5.1) vs single-model MGC (§5.2).

Section 5.1's baseline gives any model group support by storing N
sub-models in one segment — sharing metadata but not values. Section 5.2
extends each model so one set of parameters represents the whole group.
This ablation runs both on the same correlated data and measures the
storage difference the paper's design rests on.
"""

import pytest

from repro import Configuration, ModelarDB
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.models.gorilla import Gorilla
from repro.models.multi import MultiModel
from repro.models.pmc_mean import PMCMean
from repro.models.swing import Swing

from .conftest import format_table


def ingest(dataset, bound, models, extra_models=()):
    config = Configuration(
        error_bound=bound, correlation=EP_CORRELATION, models=models
    )
    with ModelarDB(
        config, dimensions=dataset.dimensions, extra_models=extra_models
    ) as db:
        db.ingest(dataset.series)
        return db.size_bytes()


@pytest.mark.parametrize("bound", [1.0, 10.0])
def test_ablation_multi_vs_single(benchmark, report, bound):
    dataset = generate_ep(
        n_entities=3, measures_per_entity=4, n_points=2_000,
        include_temperature=False, seed=31,
    )
    multi_models = (
        MultiModel(PMCMean()), MultiModel(Swing()), MultiModel(Gorilla())
    )

    single = ingest(dataset, bound, ("PMC", "Swing", "Gorilla"))
    multi = benchmark.pedantic(
        lambda: ingest(
            dataset,
            bound,
            ("Multi(PMC)", "Multi(Swing)", "Multi(Gorilla)"),
            extra_models=multi_models,
        ),
        rounds=1,
        iterations=1,
    )
    report(
        f"Ablation: multi- vs single-model segments, {bound:g}% bound",
        format_table(
            ["Variant", "Bytes"],
            [
                ["multiple models per segment (§5.1)", multi],
                ["single group model per segment (§5.2)", single],
            ],
        )
        + [
            f"single-model MGC saves {100 * (1 - single / multi):.1f}% — "
            "the §5.1 baseline removes duplicate metadata but not "
            "duplicate values.",
        ],
    )
    assert single < multi
