"""Figure 16: model usage mix on EP per error bound.

Paper (% of data points represented): Gorilla falls from 5.39 % at a 0 %
bound while PMC-Mean and Swing grow — PMC 92.46/86.39/66.16/51.59 and
Swing 2.14/3.60/16.62/25.65 across 0/1/5/10 % ... (all three models are
always used; the adaptive mix is the point).
"""

import pytest

from .conftest import ERROR_BOUNDS, format_table


def test_fig16_model_mix_ep(benchmark, ep_systems, report):
    def measure():
        mixes = {}
        for bound in ERROR_BOUNDS:
            fmt = ep_systems.get(f"ModelarDBv2@{bound:g}")
            mixes[bound] = fmt.db.stats.model_mix()
        return mixes

    mixes = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [
            f"{bound:g}%",
            f"{mix.get('PMC', 0.0):.2f}",
            f"{mix.get('Swing', 0.0):.2f}",
            f"{mix.get('Gorilla', 0.0):.2f}",
        ]
        for bound, mix in mixes.items()
    ]
    report(
        "Figure 16 models used, EP (% of data points)",
        format_table(["Error bound", "PMC-Mean", "Swing", "Gorilla"], rows)
        + ["Paper shape: PMC dominates; Gorilla share shrinks as the "
           "bound grows."],
    )
    for mix in mixes.values():
        assert sum(mix.values()) == pytest.approx(100.0)
    # Gorilla's share must not grow with the bound.
    gorilla = [mixes[b].get("Gorilla", 0.0) for b in ERROR_BOUNDS]
    assert gorilla[0] >= gorilla[-1]
