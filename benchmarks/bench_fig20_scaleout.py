"""Figure 20: scale-out of L-AGG on 1-32 nodes.

The paper runs L-AGG on Microsoft Azure with 1-32 Standard D8 v3 nodes
and shows linear relative speedup for both the Segment View and the Data
Point View — possible because every group is pinned to one worker, so
queries never shuffle.

The reproduction has two substrates:

* the deterministic simulation (default figure): workers execute
  sequentially and the report models parallel wall time as the slowest
  worker plus the master's merge, from which the relative increase over
  one node is computed — the shape is hardware-independent;
* the process-parallel cluster (``test_fig20_scaleout_measured``, slow
  tier): one OS process per worker, measured wall clock. Real speedup
  is bounded by the host's core count, so the measured test asserts
  result correctness across node counts and only checks speedup when
  the machine actually has spare cores.

The data set is duplicated with random scaling until there are enough
groups for 32 workers, like the paper duplicates EP per node.
"""

import os

import numpy as np
import pytest

from repro.cluster import ModelarCluster, ProcessCluster
from repro.core import Configuration, TimeSeries
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.query.sql import parse

from .conftest import format_table

NODE_COUNTS = (1, 2, 4, 8, 16, 32)

#: Node counts for the measured (process-parallel) variant — capped so
#: the slow tier does not fork 32 interpreters per view.
MEASURED_NODE_COUNTS = (1, 2, 4, 8)


def build_big_ep():
    """EP duplicated to 64 entities so 32 workers all get groups."""
    ep = generate_ep(
        n_entities=64, measures_per_entity=2, n_points=1_000,
        include_temperature=False, gap_probability=0.0, seed=20,
    )
    # Multiply each entity's values by a random constant so duplicated
    # data does not skew compression (the paper does the same).
    rng = np.random.default_rng(21)
    series = []
    for ts in ep.series:
        factor = float(rng.uniform(0.001, 1.001))
        values = [
            None if p.value is None else p.value * factor for p in ts
        ]
        series.append(
            TimeSeries(
                ts.tid, ts.sampling_interval, list(ts.timestamps), values,
                name=ts.name,
            )
        )
    return series, ep.dimensions


def run_scaleout(view: str) -> dict[int, float]:
    series, dimensions = build_big_ep()
    config = Configuration(error_bound=5.0, correlation=EP_CORRELATION)
    sql = (
        "SELECT SUM_S(*) FROM Segment"
        if view == "segment"
        else "SELECT SUM(*) FROM DataPoint"
    )
    query = parse(sql)
    makespans = {}
    for nodes in NODE_COUNTS:
        cluster = ModelarCluster(nodes, config, dimensions)
        cluster.ingest(series)
        # Warm up decode caches, then take the best of three runs to
        # keep scheduler noise out of the modelled makespan.
        cluster.execute(query)
        samples = []
        for _ in range(3):
            _, cluster_report = cluster.execute(query)
            samples.append(cluster_report.makespan)
        makespans[nodes] = min(samples)
    return makespans


@pytest.mark.parametrize("view", ["segment", "datapoint"])
def test_fig20_scaleout(benchmark, report, view):
    makespans = benchmark.pedantic(
        lambda: run_scaleout(view), rounds=1, iterations=1
    )
    base = makespans[1]
    rows = [
        [nodes, f"{base / makespans[nodes]:.2f}x", f"{nodes}x"]
        for nodes in NODE_COUNTS
    ]
    label = "Segment View" if view == "segment" else "Data Point View"
    report(
        f"Figure 20 scale-out, L-AGG ({label})",
        format_table(["Nodes", "Relative increase", "Ideal"], rows)
        + ["Paper shape: close to linear until 32 nodes for both views."],
    )
    # Speedup must grow substantially with the node count (the modelled
    # makespan excludes real network effects, so near-linear is expected;
    # per-worker constant overhead keeps it below ideal).
    assert base / makespans[8] > 2.5
    assert base / makespans[32] > base / makespans[2]


def run_scaleout_measured(view: str):
    """Measured wall clock per node count, plus the rows per count."""
    series, dimensions = build_big_ep()
    config = Configuration(error_bound=5.0, correlation=EP_CORRELATION)
    sql = (
        "SELECT SUM_S(*) FROM Segment"
        if view == "segment"
        else "SELECT SUM(*) FROM DataPoint"
    )
    makespans = {}
    results = {}
    for nodes in MEASURED_NODE_COUNTS:
        with ProcessCluster(nodes, config, dimensions) as cluster:
            cluster.ingest(series)
            cluster.sql(sql)  # warm up worker decode caches
            samples = []
            for _ in range(3):
                rows, cluster_report = cluster.sql(sql)
                samples.append(cluster_report.wall_seconds)
            makespans[nodes] = min(samples)
            results[nodes] = rows
    return makespans, results


@pytest.mark.slow
@pytest.mark.parametrize("view", ["segment", "datapoint"])
def test_fig20_scaleout_measured(benchmark, report, view):
    makespans, results = benchmark.pedantic(
        lambda: run_scaleout_measured(view), rounds=1, iterations=1
    )
    base = makespans[1]
    rows = [
        [nodes, f"{makespans[nodes] * 1e3:.1f}",
         f"{base / makespans[nodes]:.2f}x"]
        for nodes in MEASURED_NODE_COUNTS
    ]
    label = "Segment View" if view == "segment" else "Data Point View"
    report(
        f"Figure 20 scale-out measured, L-AGG ({label})",
        format_table(["Workers", "Wall ms", "Relative increase"], rows)
        + [f"Host cores: {os.cpu_count()} (speedup is core-bound)."],
    )
    # Correctness first: every cluster size must agree on the answer.
    for nodes in MEASURED_NODE_COUNTS[1:]:
        assert len(results[nodes]) == len(results[1])
        for got, expected in zip(results[nodes], results[1]):
            assert set(got) == set(expected)
            for column, value in expected.items():
                assert got[column] == pytest.approx(value, rel=1e-9)
    assert all(span > 0.0 for span in makespans.values())
    # Speedup claims only make sense with real parallel hardware.
    if (os.cpu_count() or 1) >= 4:
        assert base / makespans[4] > 1.3
