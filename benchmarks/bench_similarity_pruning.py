"""Extension benchmark: model-level pruning for similarity search.

Quantifies the benefit of executing similarity search on models (the
paper's future-work item ii): the envelope lower bound computed from
O(1) per-segment min/max discards almost every candidate window, so only
a handful are verified against reconstructed values.
"""

import numpy as np
import pytest

from repro import Configuration, ModelarDB
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.query.similarity import SearchStats, similarity_search

from .conftest import format_table


@pytest.fixture(scope="module")
def search_db():
    dataset = generate_ep(
        n_entities=4, measures_per_entity=3, n_points=3_000, seed=33,
        gap_probability=0.0,
    )
    db = ModelarDB(
        Configuration(error_bound=1.0, correlation=EP_CORRELATION),
        dimensions=dataset.dimensions,
    )
    db.ingest(dataset.series)
    rng = np.random.default_rng(34)
    source = dataset.series[2].values
    start = int(rng.integers(0, len(source) - 16))
    pattern = source[start:start + 16].astype(np.float64)
    return db, pattern


def test_similarity_model_pruning(benchmark, search_db, report):
    db, pattern = search_db
    stats = SearchStats()

    def run():
        stats.windows = stats.verified = 0
        return similarity_search(db.engine, pattern, k=3, stats=stats)

    matches = benchmark(run)
    report(
        "Extension: similarity search pruning",
        format_table(
            ["Quantity", "Value"],
            [
                ["candidate windows", stats.windows],
                ["windows verified on data points", stats.verified],
                ["pruned at the model level", f"{100 * stats.pruned_fraction:.1f}%"],
                ["best distance", f"{matches[0].distance:.3f}"],
            ],
        )
        + ["The planted pattern is an exact sub-sequence, so the best "
           "distance is ~0 and everything else prunes early."],
    )
    assert matches[0].distance == pytest.approx(0.0, abs=1e-6)
    assert stats.pruned_fraction > 0.9
