"""Figure 14: storage required for EP.

Paper (GiB): InfluxDB 19.78, Cassandra 129.37, Parquet 17.61, ORC 14.89,
ModelarDBv1 12.27 (0 %), ModelarDBv2 7.99/... at 0/1/5/10 % — v2 up to
16.19x smaller than the other formats and 1.45-1.54x smaller than v1.
The EP correlation hint is ``Production 0, Measure 1 ProductionMWh``.
"""

import pytest

from repro.models import RAW_POINT_BYTES

from .conftest import ERROR_BOUNDS, format_table

BASELINES = ("InfluxDB", "Cassandra", "Parquet", "ORC")


def test_fig14_storage_ep(benchmark, ep_dataset, ep_systems, report):
    def measure():
        sizes = {}
        for name in BASELINES:
            sizes[f"{name} (0%)"] = ep_systems.get(name).size_bytes()
        sizes["ModelarDBv1 (0%)"] = ep_systems.get("ModelarDBv1@0").size_bytes()
        for bound in ERROR_BOUNDS:
            sizes[f"ModelarDBv2 ({bound:g}%)"] = ep_systems.get(
                f"ModelarDBv2@{bound:g}"
            ).size_bytes()
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    raw = ep_dataset.data_points() * RAW_POINT_BYTES
    rows = [
        [name, size, f"{raw / size:.1f}x"]
        for name, size in sizes.items()
    ]
    report(
        "Figure 14 storage, EP",
        format_table(["System", "Bytes", "Compression vs raw"], rows)
        + [
            f"raw (12 B/point): {raw} bytes",
            "Paper shape: v2 smallest at every bound; Cassandra largest; "
            "v2 1.45-1.54x below v1.",
        ],
    )
    v2 = sizes["ModelarDBv2 (0%)"]
    assert v2 < sizes["ModelarDBv1 (0%)"]
    assert all(v2 < sizes[f"{name} (0%)"] for name in BASELINES)
    assert sizes["Cassandra (0%)"] == max(sizes.values())
    bounds_sizes = [sizes[f"ModelarDBv2 ({b:g}%)"] for b in ERROR_BOUNDS]
    assert bounds_sizes == sorted(bounds_sizes, reverse=True)
