"""Figure 21: small simple aggregates (S-AGG) on EP.

Paper (minutes): InfluxDB 0.35, Cassandra 0.88, Parquet 0.77, ORC 0.70,
ModelarDBv1 0.54/0.59 (SV/DPV), ModelarDBv2 0.50/... — v2 is slightly
slower than the fastest formats because a whole *group* segment must be
read even when the query touches one series, but stays within ~2x of
InfluxDB.
"""

import pytest

from repro.workloads import s_agg

from .conftest import format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1@5",
    "ModelarDBv2@5",
    "ModelarDBv2-DPV@5",
)

_seconds: dict[str, float] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig21_sagg_ep(benchmark, ep_dataset, ep_systems, system):
    fmt = ep_systems.get(system)
    workload = s_agg(ep_dataset.production_tids, seed=21, count=10)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig21_report(benchmark, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{value * 1e3:.2f} ms"] for name, value in _seconds.items()
    ]
    report(
        "Figure 21 S-AGG, EP",
        format_table(["System", "Runtime"], rows)
        + ["Paper shape: InfluxDB fastest; v2 competitive (group read "
           "overhead) and SV faster than DPV."],
    )
    assert _seconds["ModelarDBv2-SV"] <= _seconds["ModelarDBv2-DPV"]
