"""Figure 27: M-AGG-One on EH — GROUP BY month and Park.

Paper (minutes): InfluxDB unsupported, Cassandra 2543, Parquet 84, ORC
32, ModelarDBv2-SV 30.84, -DPV 57.96 — v2 1.05-82x faster.
"""

import pytest

from .magg_common import SYSTEMS, influx_unsupported, magg_report, run_magg

MEMBER = ("Category", "Power")
GROUP_BY = "Park"

_seconds: dict[str, object] = {}


@pytest.mark.parametrize("system", [s for s in SYSTEMS if s != "InfluxDB"])
def test_fig27_magg_one_eh(benchmark, eh_systems, system):
    workload, fmt = run_magg(eh_systems, system, MEMBER, GROUP_BY, False)
    benchmark(lambda: workload.run(fmt))
    _seconds[fmt.name] = benchmark.stats["mean"]


def test_fig27_report(benchmark, eh_systems, report):
    # The report itself is not timed; the benchmark fixture is
    # exercised so --benchmark-only does not skip the report step.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _seconds["InfluxDB"] = influx_unsupported(eh_systems)
    magg_report(
        report,
        "Figure 27 M-AGG-One, EH",
        _seconds,
        "Paper shape: InfluxDB unsupported; v2-SV at least competitive "
        "with the best format and far ahead of Cassandra.",
    )
    assert _seconds["ModelarDBv2-SV"] < _seconds["Cassandra"]
