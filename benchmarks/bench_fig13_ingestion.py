"""Figure 13: ingestion rate on EP.

The paper ingests an EP subset into each system on one node and reports
millions of data points per second: InfluxDB 0.08, Cassandra 0.04,
Parquet 0.17, ORC 0.15, ModelarDBv1 0.21, ModelarDBv2 0.44 — and scale-out
scenarios B-6 (bulk loading, 1.81) and O-6 (online analytics, 1.97).
"""

import pytest

from repro.cluster import ModelarCluster
from repro.workloads import s_agg

from .conftest import ep_config, format_table

SYSTEMS = (
    "InfluxDB",
    "Cassandra",
    "Parquet",
    "ORC",
    "ModelarDBv1@5",
    "ModelarDBv2@5",
)

_results: dict[str, float] = {}


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig13_single_node_ingest(benchmark, ep_dataset, ep_systems, system):
    def ingest():
        cache = type(ep_systems)(ep_dataset, ep_config)
        cache.get(system)
        return cache.ingest_seconds[system]

    elapsed = benchmark.pedantic(ingest, rounds=1, iterations=1)
    _results[system.partition("@")[0]] = (
        ep_dataset.data_points() / elapsed / 1e6
    )


def test_fig13_cluster_scenarios(benchmark, ep_dataset, report):
    """B-6 (bulk) and O-6 (online analytics) on six simulated workers."""

    def bulk():
        cluster = ModelarCluster(
            6, ep_config(5.0), ep_dataset.dimensions
        )
        return cluster.ingest(ep_dataset.series)

    bulk_report = benchmark.pedantic(bulk, rounds=1, iterations=1)
    _results["B-6"] = bulk_report.data_points / bulk_report.makespan / 1e6

    # O-6: the same ingestion with aggregate queries executed on random
    # series through the Segment View while data streams in. The cluster
    # ingests per worker; queries interleave between workers.
    cluster = ModelarCluster(6, ep_config(5.0), ep_dataset.dimensions)
    groups = cluster.partition(ep_dataset.series)
    cluster.assign(groups)
    workload = s_agg(ep_dataset.production_tids, seed=13, count=4)
    import time as _time

    worker_seconds = []
    points = 0
    for worker in cluster.workers:
        if not worker.groups:
            continue
        started = _time.perf_counter()
        worker.ingest_assigned()
        for query in workload.queries:
            worker.engine.aggregate(
                "SUM_S",
                tids=[tid for tid in (query.tids or ()) if tid in worker.tids]
                or None,
            )
        worker_seconds.append(_time.perf_counter() - started)
        points += worker.stats.data_points
    _results["O-6"] = points / max(worker_seconds) / 1e6

    paper = {
        "InfluxDB": 0.08, "Cassandra": 0.04, "Parquet": 0.17, "ORC": 0.15,
        "ModelarDBv1": 0.21, "ModelarDBv2": 0.44, "B-6": 1.81, "O-6": 1.97,
    }
    rows = [
        [name, f"{rate:.3f}", paper.get(name, "-")]
        for name, rate in _results.items()
    ]
    report(
        "Figure 13 ingestion rate, EP (Mpts per s)",
        format_table(["System", "Measured", "Paper"], rows),
    )
    assert _results["B-6"] > _results["ModelarDBv2"], (
        "six workers must out-ingest one"
    )
