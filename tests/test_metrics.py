"""Evaluation metrics (actual average error, compression ratio)."""

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.workloads import (
    actual_average_error,
    compression_ratio,
    max_relative_error,
    reconstruction_errors,
)

from .conftest import make_series


def ingest(series, error_bound):
    db = ModelarDB(Configuration(error_bound=error_bound))
    db.ingest(series)
    return db


class TestErrors:
    def test_lossless_has_zero_error(self):
        values = [float(np.float32(v)) for v in np.random.default_rng(0).normal(50, 5, 200)]
        series = [make_series(1, values)]
        db = ingest(series, 0.0)
        assert actual_average_error(db, series) == 0.0
        assert max_relative_error(db, series) == 0.0

    def test_lossy_error_within_bound(self):
        rng = np.random.default_rng(1)
        values = [float(np.float32(v)) for v in 100 + np.cumsum(rng.normal(0, 0.5, 300))]
        series = [make_series(1, values)]
        db = ingest(series, 5.0)
        average = actual_average_error(db, series)
        worst = max_relative_error(db, series)
        assert 0.0 <= average <= worst
        assert worst <= 5.0 + 1e-6

    def test_average_error_grows_with_bound(self):
        rng = np.random.default_rng(2)
        values = [float(np.float32(v)) for v in 100 + np.cumsum(rng.normal(0, 0.5, 400))]
        series = [make_series(1, values)]
        errors = [
            actual_average_error(ingest(series, bound), series)
            for bound in (0.0, 1.0, 10.0)
        ]
        assert errors[0] <= errors[1] <= errors[2]

    def test_gap_points_excluded(self):
        values = [1.0, None, None, 1.0, 1.0]
        series = [make_series(1, values)]
        db = ingest(series, 0.0)
        assert actual_average_error(db, series) == 0.0

    def test_reconstruction_errors_per_point(self):
        values = [float(np.float32(v)) for v in (1.0, 2.0, 3.0)]
        series = [make_series(1, values)]
        db = ingest(series, 0.0)
        errors = reconstruction_errors(db, series[0])
        assert len(errors) == 3
        assert errors.max() == 0.0


class TestCompressionRatio:
    def test_ratio(self):
        assert compression_ratio(100, 300) == pytest.approx(4.0)

    def test_zero_bytes_is_infinite(self):
        assert compression_ratio(100, 0) == float("inf")
