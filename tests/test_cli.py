"""The ``python -m repro`` SQL shell."""

import io

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.storage import FileStorage
from repro.__main__ import describe_tables, format_rows, main
from repro.models import ModelRegistry
from repro.query.engine import QueryEngine


@pytest.fixture(scope="module")
def storage_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "db"
    values = np.float32(5 + np.arange(100) * 0.5)
    series = [TimeSeries(1, 100, np.arange(100) * 100, values)]
    with ModelarDB.open(directory, config=Configuration(error_bound=0.0)) as db:
        db.ingest(series)
    return directory


class TestFormatRows:
    def test_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_table_shape(self):
        text = format_rows([{"Tid": 1, "SUM_S(*)": 42.5}])
        lines = text.splitlines()
        assert lines[0].split() == ["Tid", "SUM_S(*)"]
        assert "42.5" in lines[2]
        assert lines[-1] == "(1 row)"

    def test_none_rendered_empty(self):
        text = format_rows([{"MIN_S(*)": None}])
        assert "None" not in text

    def test_ragged_rows(self):
        text = format_rows([{"a": 1}, {"a": 2, "b": 3}])
        assert "b" in text.splitlines()[0]


class TestMain:
    def test_single_command(self, storage_dir):
        out = io.StringIO()
        code = main([str(storage_dir), "-c", "SELECT COUNT_S(*) FROM Segment"],
                    out=out)
        assert code == 0
        assert "100" in out.getvalue()

    def test_query_error_is_reported_not_raised(self, storage_dir):
        out = io.StringIO()
        code = main([str(storage_dir), "-c", "SELECT NOPE FROM Segment"],
                    out=out)
        assert code == 0
        assert "error:" in out.getvalue()

    def test_empty_directory_fails(self, tmp_path):
        out = io.StringIO()
        code = main([str(tmp_path / "empty"), "-c", "SELECT 1"], out=out)
        assert code == 1
        assert "no time series" in out.getvalue()

    def test_describe_tables(self, storage_dir):
        engine = QueryEngine(FileStorage(storage_dir), ModelRegistry())
        listing = describe_tables(engine)
        assert listing.splitlines()[1].startswith("1")
        assert "100" in listing  # the sampling interval
