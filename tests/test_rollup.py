"""Time-dimension rollups (Algorithm 6, Fig. 12)."""

import datetime as dt

import pytest

from repro.core.errors import QueryError
from repro.models.pmc_mean import FittedPMCMean
from repro.models.swing import FittedSwing
from repro.query.aggregates import aggregate_by_name
from repro.query.rollup import (
    floor_to_level,
    format_bucket,
    next_boundary,
    parse_cube_function,
    rollup_segment,
)


def ms(year, month, day, hour=0, minute=0, second=0):
    moment = dt.datetime(
        year, month, day, hour, minute, second, tzinfo=dt.timezone.utc
    )
    return int(moment.timestamp() * 1000)


class TestBoundaries:
    def test_floor_hour(self):
        assert floor_to_level(ms(2016, 4, 12, 7, 45), "HOUR") == ms(
            2016, 4, 12, 7
        )

    def test_floor_day_month_year(self):
        t = ms(2016, 4, 12, 7, 45, 30)
        assert floor_to_level(t, "DAY") == ms(2016, 4, 12)
        assert floor_to_level(t, "MONTH") == ms(2016, 4, 1)
        assert floor_to_level(t, "YEAR") == ms(2016, 1, 1)

    def test_next_boundary_simple_units(self):
        assert next_boundary(ms(2016, 4, 12, 7), "HOUR") == ms(2016, 4, 12, 8)
        assert next_boundary(ms(2016, 4, 12), "DAY") == ms(2016, 4, 13)
        assert next_boundary(ms(2016, 4, 12, 7, 5), "MINUTE") == ms(
            2016, 4, 12, 7, 6
        )

    def test_next_boundary_month_lengths(self):
        assert next_boundary(ms(2016, 4, 1), "MONTH") == ms(2016, 5, 1)
        assert next_boundary(ms(2016, 1, 1), "MONTH") == ms(2016, 2, 1)
        # Leap year February.
        assert next_boundary(ms(2016, 2, 1), "MONTH") == ms(2016, 3, 1)
        assert next_boundary(ms(2015, 2, 1), "MONTH") == ms(2015, 3, 1)

    def test_next_boundary_year_rollover(self):
        assert next_boundary(ms(2016, 1, 1), "YEAR") == ms(2017, 1, 1)
        assert next_boundary(ms(2015, 1, 1), "YEAR") == ms(2016, 1, 1)

    def test_unknown_level_rejected(self):
        with pytest.raises(QueryError):
            floor_to_level(0, "FORTNIGHT")
        with pytest.raises(QueryError):
            next_boundary(0, "FORTNIGHT")


class TestParseCube:
    def test_parse(self):
        assert parse_cube_function("CUBE_SUM_HOUR") == ("SUM", "HOUR")
        assert parse_cube_function("cube_avg_month") == ("AVG", "MONTH")

    def test_malformed_rejected(self):
        with pytest.raises(QueryError):
            parse_cube_function("CUBE_SUM")
        with pytest.raises(QueryError):
            parse_cube_function("ROLLUP_SUM_HOUR")
        with pytest.raises(QueryError):
            parse_cube_function("CUBE_SUM_FORTNIGHT")


class TestRollupSegment:
    def test_paper_fig12_structure(self):
        """A segment from 00:13 to 02:48 splits into [00:13, 01:00),
        [01:00, 02:00) and [02:00, 02:48] with an inclusive end."""
        si = 60_000  # one minute
        start = ms(2016, 4, 12, 0, 13)
        length = 156  # 00:13 .. 02:48 inclusive
        model = FittedPMCMean(1.0, n_columns=1, length=length)
        agg = aggregate_by_name("SUM")
        states: dict[int, object] = {}
        rollup_segment(
            states, agg, model, start, si, 0, length - 1, 0, 1.0, "HOUR"
        )
        assert sorted(states) == [
            ms(2016, 4, 12, 0),
            ms(2016, 4, 12, 1),
            ms(2016, 4, 12, 2),
        ]
        # 47 minutes in hour 0 (00:13..00:59), 60 in hour 1,
        # 49 in hour 2 (02:00..02:48 inclusive).
        assert agg.finalize(states[ms(2016, 4, 12, 0)]) == 47.0
        assert agg.finalize(states[ms(2016, 4, 12, 1)]) == 60.0
        assert agg.finalize(states[ms(2016, 4, 12, 2)]) == 49.0

    def test_clipped_range_respected(self):
        si = 60_000
        start = ms(2016, 4, 12, 0, 0)
        model = FittedPMCMean(2.0, n_columns=1, length=120)
        agg = aggregate_by_name("SUM")
        states: dict[int, object] = {}
        # Only indices 30..89 (00:30 .. 01:29).
        rollup_segment(states, agg, model, start, si, 30, 89, 0, 1.0, "HOUR")
        assert agg.finalize(states[ms(2016, 4, 12, 0)]) == 60.0
        assert agg.finalize(states[ms(2016, 4, 12, 1)]) == 60.0

    def test_linear_model_sums_match(self):
        si = 60_000
        start = ms(2016, 4, 12, 0, 30)
        model = FittedSwing(0.0, 1.0, n_columns=1, length=60)
        agg = aggregate_by_name("SUM")
        states: dict[int, object] = {}
        rollup_segment(states, agg, model, start, si, 0, 59, 0, 1.0, "HOUR")
        # Indices 0..29 in hour 0 (values 0..29), 30..59 in hour 1.
        assert agg.finalize(states[ms(2016, 4, 12, 0)]) == sum(range(30))
        assert agg.finalize(states[ms(2016, 4, 12, 1)]) == sum(
            range(30, 60)
        )

    def test_scaling_applied(self):
        si = 60_000
        start = ms(2016, 4, 12, 0, 0)
        model = FittedPMCMean(10.0, n_columns=1, length=10)
        agg = aggregate_by_name("SUM")
        states: dict[int, object] = {}
        rollup_segment(states, agg, model, start, si, 0, 9, 0, 4.0, "HOUR")
        assert agg.finalize(states[ms(2016, 4, 12, 0)]) == 25.0

    def test_existing_states_are_merged(self):
        si = 60_000
        start = ms(2016, 4, 12, 0, 0)
        model = FittedPMCMean(1.0, n_columns=1, length=10)
        agg = aggregate_by_name("SUM")
        states: dict[int, object] = {}
        rollup_segment(states, agg, model, start, si, 0, 9, 0, 1.0, "HOUR")
        rollup_segment(states, agg, model, start, si, 0, 9, 0, 1.0, "HOUR")
        assert agg.finalize(states[ms(2016, 4, 12, 0)]) == 20.0


class TestFormatBucket:
    def test_formats(self):
        t = ms(2016, 4, 12, 7, 5)
        assert format_bucket(t, "YEAR") == "2016"
        assert format_bucket(t, "MONTH") == "2016-04"
        assert format_bucket(t, "DAY") == "2016-04-12"
        assert format_bucket(t, "HOUR") == "2016-04-12 07:00"
        assert format_bucket(t, "MINUTE") == "2016-04-12 07:05"
