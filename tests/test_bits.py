"""Bit-level reader/writer used by the Gorilla codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ModelError
from repro.models.bits import BitReader, BitWriter


class TestWriter:
    def test_single_bits(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.to_bytes() == bytes([0b10110000])

    def test_multi_bit_values(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0b01, 2)
        writer.write(0b111, 3)
        assert writer.to_bytes() == bytes([0b10101111])

    def test_bit_length(self):
        writer = BitWriter()
        writer.write(0xFF, 8)
        writer.write(1, 3)
        assert writer.bit_length == 11
        assert writer.byte_length() == 2

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(ModelError):
            writer.write(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(ModelError):
            BitWriter().write(-1, 4)

    def test_zero_bits_is_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0

    def test_64_bit_write(self):
        writer = BitWriter()
        writer.write((1 << 64) - 1, 64)
        assert writer.to_bytes() == b"\xff" * 8


class TestReader:
    def test_round_trip_aligned(self):
        writer = BitWriter()
        writer.write(0xDEADBEEF, 32)
        reader = BitReader(writer.to_bytes())
        assert reader.read(32) == 0xDEADBEEF

    def test_round_trip_unaligned(self):
        writer = BitWriter()
        pieces = [(1, 1), (5, 3), (100, 7), (0, 2), (1234, 11)]
        for value, bits in pieces:
            writer.write(value, bits)
        reader = BitReader(writer.to_bytes())
        for value, bits in pieces:
            assert reader.read(bits) == value

    def test_exhaustion_raises(self):
        reader = BitReader(b"\x00")
        reader.read(8)
        with pytest.raises(ModelError):
            reader.read(1)

    def test_remaining_bits(self):
        reader = BitReader(b"\x00\x00")
        reader.read(5)
        assert reader.remaining_bits == 11


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=48).flatmap(
            lambda bits: st.tuples(
                st.integers(min_value=0, max_value=(1 << bits) - 1),
                st.just(bits),
            )
        )),
        max_size=50,
    )
)
def test_property_round_trip(pieces):
    """Any sequence of (value, width) writes reads back identically."""
    flat = [piece[0] for piece in pieces]
    writer = BitWriter()
    for value, bits in flat:
        writer.write(value, bits)
    reader = BitReader(writer.to_bytes())
    for value, bits in flat:
        assert reader.read(bits) == value
