"""Segment/Data Point views: clipping, decoding, vectorised access."""

import numpy as np
import pytest

from repro.core import Configuration, SegmentGroup, TimeSeries
from repro.models import ModelRegistry
from repro.query.cache import SegmentCache
from repro.query.engine import _ColumnSharedModel
from repro.query.metadata import MetadataCache
from repro.query.rewriter import Predicates, rewrite
from repro.query.views import DataPointView, SegmentView, _clip
from repro.storage import MemoryStorage, TimeSeriesRecord


def make_segment(start=0, end=900, si=100):
    return SegmentGroup(
        gid=1, start_time=start, end_time=end, sampling_interval=si,
        mid=1, parameters=b"\x00\x00\x80?",  # PMC constant 1.0
        group_tids=(1, 2),
    )


class TestClip:
    def test_no_predicates(self):
        assert _clip(make_segment(), None, None) == (0, 9)

    def test_start_inside(self):
        assert _clip(make_segment(), 250, None) == (3, 9)

    def test_start_on_grid(self):
        assert _clip(make_segment(), 300, None) == (3, 9)

    def test_end_inside(self):
        assert _clip(make_segment(), None, 450) == (0, 4)

    def test_both(self):
        assert _clip(make_segment(), 200, 700) == (2, 7)

    def test_empty_intersection(self):
        assert _clip(make_segment(), 901, None) is None
        assert _clip(make_segment(), None, -1) is None

    def test_point_interval(self):
        assert _clip(make_segment(), 500, 500) == (5, 5)
        assert _clip(make_segment(), 501, 599) is None


class TestViews:
    @pytest.fixture
    def setup(self):
        storage = MemoryStorage()
        storage.insert_time_series([
            TimeSeriesRecord(1, 100, gid=1, scaling=2.0),
            TimeSeriesRecord(2, 100, gid=1),
        ])
        storage.insert_segments([make_segment()])
        registry = ModelRegistry()
        cache = SegmentCache(registry)
        metadata = MetadataCache(storage)
        return storage, cache, metadata

    def test_segment_view_rows(self, setup):
        storage, cache, metadata = setup
        view = SegmentView(storage, cache, metadata)
        plan = rewrite(Predicates(), metadata)
        rows = list(view.rows(plan))
        assert [r.row.tid for r in rows] == [1, 2]
        assert rows[0].row.scaling == 2.0
        assert (rows[0].first, rows[0].last) == (0, 9)

    def test_segment_view_respects_tid_filter(self, setup):
        storage, cache, metadata = setup
        view = SegmentView(storage, cache, metadata)
        plan = rewrite(Predicates(tids=frozenset({2})), metadata)
        rows = list(view.rows(plan))
        assert [r.row.tid for r in rows] == [2]

    def test_data_point_view_applies_scaling(self, setup):
        storage, cache, metadata = setup
        view = DataPointView(storage, cache, metadata)
        plan = rewrite(Predicates(tids=frozenset({1})), metadata)
        points = list(view.rows(plan))
        # Stored constant 1.0 divided by the scaling constant 2.0.
        assert all(p.value == 0.5 for p in points)
        assert len(points) == 10

    def test_arrays_are_clipped(self, setup):
        storage, cache, metadata = setup
        view = DataPointView(storage, cache, metadata)
        plan = rewrite(
            Predicates(tids=frozenset({2}), start_time=200, end_time=400),
            metadata,
        )
        ((row, timestamps, values),) = list(view.arrays(plan))
        assert list(timestamps) == [200, 300, 400]
        assert list(values) == [1.0, 1.0, 1.0]


class TestColumnSharedModel:
    def test_delegates_and_memoises(self, registry):
        fitter = registry.by_name("Swing").fitter(3, 1.0, 50)
        for i in range(10):
            fitter.append((float(i), float(i), float(i)))
        model = registry.by_name("Swing").decode(fitter.parameters(), 3, 10)
        shared = _ColumnSharedModel(model)
        assert shared.constant_time_aggregates
        assert shared.length == 10
        assert shared.n_columns == 3
        # Same answer for every column; second call hits the memo.
        assert shared.slice_sum(0, 9, 0) == shared.slice_sum(0, 9, 2)
        assert shared.slice_min(2, 5, 1) == model.slice_min(2, 5, 0)
        assert shared.slice_max(2, 5, 1) == model.slice_max(2, 5, 0)
        assert shared.value_at(4, 2) == model.value_at(4, 0)
        assert shared.values().shape == (10, 3)
