"""Model-native analytics (tier 1): FORECAST, SIMILAR TO, Anomaly.

The contracts locked here:

- **Segment-only**: FORECAST never reconstructs a stored point at all,
  and neither analytics statement ever enters the engine's point
  materialization paths — proven by making those paths raise.
- **Exactness**: the envelope-pruned SIMILAR TO search returns exactly
  the rows a brute-force decode-everything scan returns, bit for bit —
  including on tie-heavy flat data where runs of equal-distance windows
  must resolve under the (Distance, Tid, StartTime) total order.
- **Bit-identity**: row and columnar execution modes return identical
  bits for all three analytics surfaces (the PR 6 contract).
- **Containment**: for trend data the store fits with a trend model,
  the true continuation lies inside the forecast's [Lo, Hi] interval,
  and interval widths never shrink with the horizon.

Uses hypothesis when installed; otherwise the same properties run over
a fixed parameter corpus so the suite stays meaningful without the
dependency.
"""

import re
import struct
from pathlib import Path

import numpy as np
import pytest

from repro import Configuration, MemoryStorage, ModelarDB, TimeSeries
from repro.core.errors import QueryError
from repro.obs import get_registry
from repro.query import analytics
from repro.query import engine as engine_module
from repro.query.rewriter import Predicates, rewrite
from repro.query.sql import parse

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

SI = 100
REPO_ROOT = Path(__file__).resolve().parent.parent


def bits(value):
    """A comparable bit pattern for any result cell."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def assert_rows_bit_identical(left_rows, right_rows, context=""):
    assert len(left_rows) == len(right_rows), context
    for left, right in zip(left_rows, right_rows):
        assert list(left.keys()) == list(right.keys()), context
        for key in left:
            assert bits(left[key]) == bits(right[key]), (
                context, key, left[key], right[key],
            )


def make_db(series, error_bound=0.0, columnar=True):
    db = ModelarDB(
        Configuration(error_bound=error_bound, columnar_read=columnar),
        storage=MemoryStorage(),
    )
    db.ingest(series)
    return db


def ramp_series(tid, n_points, slope, intercept, start=0):
    values = np.float32(intercept + slope * np.arange(n_points))
    timestamps = start + np.arange(n_points, dtype=np.int64) * SI
    return TimeSeries(tid, SI, timestamps, values)


def counter_value(name):
    return get_registry().snapshot()["counters"].get(name, 0)


# ----------------------------------------------------------------------
# FORECAST
# ----------------------------------------------------------------------
class TestForecast:
    def test_trend_continues_the_fitted_slope(self):
        # 0.5 steps from 10.0 are exact in float32: Swing fits at
        # bound 0 and the extrapolation is exact arithmetic.
        db = make_db([ramp_series(1, 100, 0.5, 10.0)])
        rows = db.sql("SELECT FORECAST(TS, 3) FROM DataPoint")
        assert rows == [
            {"Tid": 1, "TS": 10000, "Value": 60.0, "Lo": 60.0, "Hi": 60.0},
            {"Tid": 1, "TS": 10100, "Value": 60.5, "Lo": 60.5, "Hi": 60.5},
            {"Tid": 1, "TS": 10200, "Value": 61.0, "Lo": 61.0, "Hi": 61.0},
        ]

    def test_level_hold_with_error_interval(self):
        db = make_db(
            [ramp_series(1, 60, 0.0, 4.0)], error_bound=1.0
        )
        rows = db.sql("SELECT FORECAST(TS, 4) FROM DataPoint")
        tolerance = 0.01 * 4.0 / 0.99
        assert len(rows) == 4
        for row in rows:
            assert row["Value"] == 4.0
            # A level hold has no slope uncertainty: the interval is
            # the endpoint tolerance, constant across the horizon.
            assert row["Hi"] - row["Lo"] == pytest.approx(2 * tolerance)
            assert row["Lo"] < 4.0 < row["Hi"]

    def test_lossless_segments_hold_the_last_value(self):
        rng = np.random.default_rng(3)
        values = np.float32(20 + np.cumsum(rng.normal(0, 1.0, 80)))
        series = TimeSeries(1, SI, np.arange(80, dtype=np.int64) * SI, values)
        db = make_db([series], error_bound=0.0)
        rows = db.sql("SELECT FORECAST(TS, 2) FROM DataPoint")
        last = float(values[-1])
        for row in rows:
            assert row["Value"] == last
            assert row["Lo"] == last and row["Hi"] == last

    def test_rows_per_series_and_total_order(self):
        db = make_db(
            [ramp_series(tid, 70, 0.25 * tid, 10.0) for tid in (3, 1, 2)]
        )
        rows = db.sql("SELECT FORECAST(TS, 4) FROM DataPoint")
        assert len(rows) == 12
        order = [(row["Tid"], row["TS"]) for row in rows]
        assert order == sorted(order)
        for row in rows:
            assert row["TS"] > 69 * SI  # strictly past the stored range

    def test_forecast_as_of_a_past_timestamp(self):
        """`WHERE TS <= t` clips the plan, so extrapolation starts at
        the last in-interval point, not the last ingested one."""
        db = make_db([ramp_series(1, 100, 0.5, 10.0)])
        rows = db.sql(
            "SELECT FORECAST(TS, 2) FROM DataPoint WHERE TS <= 4900"
        )
        assert rows == [
            {"Tid": 1, "TS": 5000, "Value": 35.0, "Lo": 35.0, "Hi": 35.0},
            {"Tid": 1, "TS": 5100, "Value": 35.5, "Lo": 35.5, "Hi": 35.5},
        ]

    def test_never_touches_point_paths_or_decodes(self, monkeypatch):
        db = make_db([ramp_series(1, 100, 0.5, 10.0)], error_bound=1.0)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("FORECAST materialized stored points")

        monkeypatch.setattr(
            engine_module.QueryEngine, "_accumulate_point", boom
        )
        monkeypatch.setattr(
            engine_module.QueryEngine, "_execute_point_selection", boom
        )
        # Stronger than "no view materialization": forecasts read model
        # parameters only, so even the index's decoder must stay cold.
        monkeypatch.setattr(analytics.SignatureIndex, "reconstruct", boom)
        rows = db.sql("SELECT FORECAST(TS, 8) FROM DataPoint")
        assert len(rows) == 8


def forecast_containment_case(slope, intercept, error_bound, horizon):
    """Linear data steep enough that Swing wins every segment: the true
    continuation must lie inside [Lo, Hi], and widths must not shrink."""
    n_points = 100 + horizon
    series = ramp_series(1, n_points, slope, intercept)
    truth = series.values[100:]
    db = make_db(
        [TimeSeries(1, SI, series.timestamps[:100], series.values[:100])],
        error_bound=error_bound,
    )
    rows = db.sql(f"SELECT FORECAST(TS, {horizon}) FROM DataPoint")
    assert len(rows) == horizon
    previous_width = 0.0
    for row, true_value in zip(rows, truth):
        slack = 1e-6 * max(abs(float(true_value)), 1.0)
        assert row["Lo"] - slack <= float(true_value) <= row["Hi"] + slack, (
            slope, intercept, error_bound, row, float(true_value),
        )
        width = row["Hi"] - row["Lo"]
        assert width >= previous_width - 1e-12
        previous_width = width


CONTAINMENT_CORPUS = [
    (0.5, 25.0, 0.5, 8),
    (-1.5, 120.0, 1.0, 24),
    (3.0, 40.0, 2.0, 16),
    (0.25, 200.0, 0.5, 1),
    (-0.75, 60.0, 1.0, 12),
]


@pytest.mark.parametrize(
    ("slope", "intercept", "error_bound", "horizon"), CONTAINMENT_CORPUS
)
def test_forecast_interval_contains_truth_corpus(
    slope, intercept, error_bound, horizon
):
    forecast_containment_case(slope, intercept, error_bound, horizon)


if HAVE_HYPOTHESIS:

    @given(
        slope=st.floats(min_value=0.2, max_value=3.0),
        sign=st.sampled_from([-1.0, 1.0]),
        intercept=st.floats(min_value=20.0, max_value=200.0),
        error_bound=st.sampled_from([0.5, 1.0, 2.0]),
        horizon=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=25, deadline=None)
    def test_forecast_interval_contains_truth_hypothesis(
        slope, sign, intercept, error_bound, horizon
    ):
        forecast_containment_case(sign * slope, intercept, error_bound, horizon)


# ----------------------------------------------------------------------
# SIMILAR TO
# ----------------------------------------------------------------------
def walk_db(seed=14, n_series=3, n_points=240, error_bound=0.0,
            columnar=True, planted=None):
    """Random-walk series; ``planted=(tid, position, pattern)`` embeds
    an exact copy of the pattern."""
    rng = np.random.default_rng(seed)
    series = []
    for tid in range(1, n_series + 1):
        values = np.float32(100 + np.cumsum(rng.normal(0, 0.3, n_points)))
        if planted is not None and planted[0] == tid:
            _, position, pattern = planted
            values[position:position + len(pattern)] = np.float32(pattern)
        series.append(
            TimeSeries(tid, SI, np.arange(n_points, dtype=np.int64) * SI,
                       values)
        )
    return make_db(series, error_bound=error_bound, columnar=columnar)


def brute_force_rows(db, pattern, k):
    """Decode-everything reference: every window of every series,
    verified with the exact same distance expression the engine uses."""
    index = analytics.SignatureIndex(
        db.engine._segment_view().rows(
            rewrite(Predicates(), db.engine.metadata)
        )
    )
    query = np.asarray(pattern, dtype=np.float64)
    matches = []
    for tid in index.tids:
        timestamps, _, _ = index.envelope(tid)
        values = index.reconstruct(tid, len(timestamps))
        for position in range(len(values) - len(query) + 1):
            window = values[position:position + len(query)]
            if np.isnan(window).any():
                continue
            distance = float(np.sqrt(((window - query) ** 2).sum()))
            matches.append(
                {
                    "Tid": tid,
                    "StartTime": int(timestamps[position]),
                    "Distance": distance,
                }
            )
    matches.sort(
        key=lambda row: (row["Distance"], row["Tid"], row["StartTime"])
    )
    return matches[:k]


def pattern_sql(pattern, k=None):
    literals = ", ".join(repr(float(value)) for value in pattern)
    limit = f" LIMIT {k}" if k is not None else ""
    return f"SELECT * FROM DataPoint SIMILAR TO ({literals}){limit}"


class TestSimilarity:
    PATTERN = (101.0, 103.5, 106.0, 103.5, 101.0)

    def test_planted_pattern_is_the_top_match(self):
        db = walk_db(planted=(2, 120, self.PATTERN))
        rows = db.sql(pattern_sql(self.PATTERN, k=1))
        assert rows[0]["Tid"] == 2
        assert rows[0]["StartTime"] == 120 * SI
        assert rows[0]["Distance"] == pytest.approx(0.0, abs=1e-5)

    def test_matches_brute_force_bit_identical(self):
        db = walk_db(planted=(2, 120, self.PATTERN))
        rows = db.sql(pattern_sql(self.PATTERN, k=7))
        assert_rows_bit_identical(
            rows, brute_force_rows(db, self.PATTERN, 7), "vs brute force"
        )

    def test_distance_verified_against_the_data_point_view(self):
        """An independent cross-check: recompute a reported distance
        from points materialized by the ordinary read path."""
        db = walk_db(planted=(2, 120, self.PATTERN))
        (row,) = db.sql(pattern_sql(self.PATTERN, k=1))
        end = row["StartTime"] + (len(self.PATTERN) - 1) * SI
        points = [
            p.value
            for p in db.points(
                tids=[row["Tid"]],
                start_time=row["StartTime"],
                end_time=end,
            )
        ]
        expected = float(
            np.sqrt(((np.array(points) - np.array(self.PATTERN)) ** 2).sum())
        )
        assert row["Distance"] == pytest.approx(expected, rel=1e-9)

    def test_tie_heavy_flat_data_resolves_by_total_order(self):
        """Three identical constant series: every window ties at
        distance zero, so top-k is decided purely by (Tid, StartTime).
        Regression for two real bugs — tie acceptance compared distance
        alone, and ulp-level bound noise pruned tied windows."""
        series = [
            ramp_series(tid, 24, 0.0, 5.0) for tid in (1, 2, 3)
        ]
        db = make_db(series)
        rows = db.sql(pattern_sql((5.0, 5.0, 5.0, 5.0), k=5))
        assert rows == [
            {"Tid": 1, "StartTime": start * SI, "Distance": 0.0}
            for start in range(5)
        ]
        assert_rows_bit_identical(
            rows, brute_force_rows(db, (5.0, 5.0, 5.0, 5.0), 5), "flat ties"
        )

    def test_limit_defaults_to_ten(self):
        db = walk_db()
        rows = db.sql(pattern_sql(self.PATTERN))
        assert len(rows) == analytics.DEFAULT_SIMILARITY_K == 10

    def test_lossy_store_matches_its_own_brute_force(self):
        db = walk_db(error_bound=5.0, planted=(1, 40, self.PATTERN))
        rows = db.sql(pattern_sql(self.PATTERN, k=5))
        assert_rows_bit_identical(
            rows, brute_force_rows(db, self.PATTERN, 5), "lossy"
        )

    def test_tid_predicate_restricts_the_search(self):
        db = walk_db(planted=(2, 120, self.PATTERN))
        rows = db.sql(
            "SELECT * FROM DataPoint WHERE Tid = 1 "
            f"SIMILAR TO {pattern_sql(self.PATTERN, 3).split('SIMILAR TO ')[1]}"
        )
        assert rows and all(row["Tid"] == 1 for row in rows)

    def test_never_touches_point_paths(self, monkeypatch):
        db = walk_db(planted=(2, 120, self.PATTERN))

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("SIMILAR TO entered a point path")

        monkeypatch.setattr(
            engine_module.QueryEngine, "_accumulate_point", boom
        )
        monkeypatch.setattr(
            engine_module.QueryEngine, "_execute_point_selection", boom
        )
        rows = db.sql(pattern_sql(self.PATTERN, k=3))
        assert len(rows) == 3

    def test_pruning_metrics(self):
        # A pattern far from the walk's ambient level: the envelope
        # bound alone disqualifies nearly every window.
        pattern = (20.0, 35.0, 50.0, 35.0, 20.0)
        db = walk_db(n_points=600, planted=(2, 120, pattern))
        windows_before = counter_value("query.analytics_windows_total")
        pruned_before = counter_value("query.analytics_windows_pruned_total")
        searches_before = counter_value("query.analytics_similarity_total")
        db.sql(pattern_sql(pattern, k=1))
        windows = counter_value("query.analytics_windows_total") - windows_before
        pruned = (
            counter_value("query.analytics_windows_pruned_total")
            - pruned_before
        )
        assert counter_value("query.analytics_similarity_total") \
            - searches_before == 1
        # 3 series x (600 - 5 + 1) candidate windows, almost all pruned
        # from the envelope alone.
        assert windows == 3 * 596
        assert pruned / windows > 0.9


def similarity_case(seed, error_bound, k, pattern_length):
    rng = np.random.default_rng(seed)
    position = int(rng.integers(0, 200 - pattern_length))
    pattern = tuple(
        float(value)
        for value in np.round(
            100 + rng.normal(0, 2.0, pattern_length), 3
        )
    )
    db = walk_db(
        seed=seed, n_points=200, error_bound=error_bound,
        planted=(int(rng.integers(1, 4)), position, pattern),
    )
    rows = db.sql(pattern_sql(pattern, k=k))
    assert_rows_bit_identical(
        rows, brute_force_rows(db, pattern, k), f"seed={seed}"
    )


@pytest.mark.parametrize(
    ("seed", "error_bound", "k", "pattern_length"),
    [(1, 0.0, 3, 5), (2, 5.0, 5, 8), (3, 1.0, 1, 3), (4, 10.0, 4, 6)],
)
def test_similarity_exactness_corpus(seed, error_bound, k, pattern_length):
    similarity_case(seed, error_bound, k, pattern_length)


if HAVE_HYPOTHESIS:

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        error_bound=st.sampled_from([0.0, 1.0, 5.0]),
        k=st.integers(min_value=1, max_value=6),
        pattern_length=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=25, deadline=None)
    def test_similarity_exactness_hypothesis(
        seed, error_bound, k, pattern_length
    ):
        similarity_case(seed, error_bound, k, pattern_length)


# ----------------------------------------------------------------------
# Anomaly flags
# ----------------------------------------------------------------------
class TestAnomaly:
    def test_level_shift_is_flagged_at_the_boundary(self):
        values = np.float32(
            np.concatenate([np.full(200, 1.0), np.full(200, 50.0)])
        )
        series = TimeSeries(
            1, SI, np.arange(400, dtype=np.int64) * SI, values
        )
        db = make_db([series], error_bound=1.0)
        rows = db.sql("SELECT Tid, StartTime FROM Segment WHERE Anomaly = 1")
        assert rows == [{"Tid": 1, "StartTime": 200 * SI}]

    def test_smooth_ramp_is_never_flagged(self):
        db = make_db([ramp_series(1, 400, 0.2, 10.0)], error_bound=1.0)
        segments = db.sql("SELECT Tid FROM Segment")
        assert len(segments) > 1  # several boundaries, none anomalous
        assert db.sql("SELECT Tid FROM Segment WHERE Anomaly = 1") == []

    def test_gap_boundaries_are_not_scored(self):
        """The same level shift across a gap: absence is not drift."""
        values = [1.0] * 120 + [None] * 5 + [50.0] * 120
        timestamps = [index * SI for index in range(len(values))]
        db = make_db(
            [TimeSeries(1, SI, timestamps, values)], error_bound=1.0
        )
        rows = db.sql("SELECT StartTime FROM Segment WHERE Anomaly = 1")
        assert rows == []

    def test_anomaly_column_is_explicit_only(self):
        db = make_db([ramp_series(1, 120, 0.0, 5.0)])
        star_row = db.sql("SELECT * FROM Segment")[0]
        assert "Anomaly" not in star_row
        explicit = db.sql("SELECT Tid, Anomaly FROM Segment")
        assert all(row["Anomaly"] in (0, 1) for row in explicit)

    def test_anomaly_zero_filter_is_the_complement(self):
        values = np.float32(
            np.concatenate([np.full(200, 1.0), np.full(200, 50.0)])
        )
        series = TimeSeries(
            1, SI, np.arange(400, dtype=np.int64) * SI, values
        )
        db = make_db([series], error_bound=1.0)
        total = len(db.sql("SELECT Tid FROM Segment"))
        calm = len(db.sql("SELECT Tid FROM Segment WHERE Anomaly = 0"))
        assert total - calm == 1

    def test_anomaly_metric_counts_flags(self):
        values = np.float32(
            np.concatenate([np.full(200, 1.0), np.full(200, 50.0)])
        )
        series = TimeSeries(
            1, SI, np.arange(400, dtype=np.int64) * SI, values
        )
        db = make_db([series], error_bound=1.0)
        before = counter_value("query.analytics_anomalies_total")
        db.sql("SELECT Tid FROM Segment WHERE Anomaly = 1")
        assert counter_value("query.analytics_anomalies_total") - before == 1


# ----------------------------------------------------------------------
# Row/columnar bit-identity (the PR 6 contract, extended)
# ----------------------------------------------------------------------
class TestRowColumnarBitIdentity:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT FORECAST(TS, 12) FROM DataPoint",
            "SELECT FORECAST(TS, 3) FROM DataPoint WHERE Tid IN (1, 2)",
            pattern_sql((101.0, 103.5, 106.0, 103.5, 101.0), k=6),
            "SELECT Tid, StartTime, Anomaly FROM Segment",
            "SELECT Tid FROM Segment WHERE Anomaly = 1",
        ],
    )
    def test_modes_agree_bit_for_bit(self, sql):
        planted = (2, 120, (101.0, 103.5, 106.0, 103.5, 101.0))
        columnar = walk_db(error_bound=1.0, columnar=True, planted=planted)
        row_mode = walk_db(error_bound=1.0, columnar=False, planted=planted)
        assert_rows_bit_identical(
            columnar.sql(sql), row_mode.sql(sql), sql
        )


# ----------------------------------------------------------------------
# Validation and EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestValidation:
    @pytest.fixture(scope="class")
    def db(self):
        return make_db([ramp_series(1, 60, 0.5, 10.0)])

    @pytest.mark.parametrize(
        ("sql", "fragment"),
        [
            (
                "SELECT FORECAST(TS, 4), COUNT(*) FROM DataPoint",
                "cannot be combined",
            ),
            ("SELECT FORECAST(TS, 4) FROM Segment", "FROM DataPoint"),
            (
                "SELECT FORECAST(TS, 4) FROM DataPoint GROUP BY Tid",
                "GROUP BY",
            ),
            (
                "SELECT FORECAST(TS, 4) FROM DataPoint SIMILAR TO (1.0)",
                "cannot be combined",
            ),
            (
                "SELECT Tid FROM DataPoint SIMILAR TO (1.0)",
                "select '*'",
            ),
            (
                "SELECT FORECAST(TS, 2) FROM DataPoint WHERE Value > 1.0",
                "Value predicates",
            ),
            (
                "SELECT * FROM DataPoint WHERE TS > 0 SIMILAR TO (1.0)",
                "whole series",
            ),
            (
                "SELECT COUNT(*) FROM DataPoint LIMIT 5",
                "only supported with SIMILAR TO",
            ),
            (
                "SELECT Tid FROM DataPoint WHERE Anomaly = 1",
                "Segment view column",
            ),
            (
                "SELECT Tid FROM Segment WHERE Anomaly > 0",
                "'= 0' and '= 1'",
            ),
        ],
    )
    def test_shape_rules(self, db, sql, fragment):
        with pytest.raises(QueryError, match=re.escape(fragment)):
            db.sql(sql)


class TestExplainAnalyze:
    def test_forecast_scan_stage_is_annotated(self):
        db = make_db([ramp_series(1, 60, 0.5, 10.0)])
        report = db.sql("EXPLAIN ANALYZE SELECT FORECAST(TS, 3) FROM DataPoint")
        details = {row["stage"].strip(): row["detail"] for row in report}
        assert "horizon=3" in details["scan"]
        assert "series=1" in details["scan"]
        assert "mode=columnar" in details["scan"]

    def test_similarity_scan_stage_reports_pruning(self):
        db = walk_db(planted=(2, 120, (101.0, 103.5, 106.0)))
        report = db.sql(
            "EXPLAIN ANALYZE " + pattern_sql((101.0, 103.5, 106.0), k=2)
        )
        details = {row["stage"].strip(): row["detail"] for row in report}
        assert "windows=" in details["scan"]
        assert "verified=" in details["scan"]
        assert "k=2" in details["scan"]


# ----------------------------------------------------------------------
# The scatter-gather merge (unit level; process-level in test_shard.py)
# ----------------------------------------------------------------------
class TestMergeAnalyticsRows:
    def test_similarity_merge_keeps_the_global_top_k(self):
        query = parse("SELECT * FROM DataPoint SIMILAR TO (1.0) LIMIT 3")
        shard_a = [
            {"Tid": 1, "StartTime": 400, "Distance": 0.5},
            {"Tid": 5, "StartTime": 100, "Distance": 2.0},
        ]
        shard_b = [
            {"Tid": 2, "StartTime": 0, "Distance": 0.5},
            {"Tid": 4, "StartTime": 900, "Distance": 1.0},
        ]
        merged = analytics.merge_analytics_rows(query, shard_a + shard_b)
        assert merged == [
            {"Tid": 1, "StartTime": 400, "Distance": 0.5},
            {"Tid": 2, "StartTime": 0, "Distance": 0.5},
            {"Tid": 4, "StartTime": 900, "Distance": 1.0},
        ]

    def test_similarity_merge_defaults_to_k_ten(self):
        query = parse("SELECT * FROM DataPoint SIMILAR TO (1.0)")
        rows = [
            {"Tid": tid, "StartTime": 0, "Distance": float(tid)}
            for tid in range(1, 30)
        ]
        assert len(analytics.merge_analytics_rows(query, rows)) == 10

    def test_forecast_merge_restores_tid_order(self):
        query = parse("SELECT FORECAST(TS, 2) FROM DataPoint")
        shards = [
            {"Tid": 7, "TS": 100, "Value": 1.0, "Lo": 1.0, "Hi": 1.0},
            {"Tid": 2, "TS": 200, "Value": 2.0, "Lo": 2.0, "Hi": 2.0},
            {"Tid": 2, "TS": 100, "Value": 2.0, "Lo": 2.0, "Hi": 2.0},
        ]
        merged = analytics.merge_analytics_rows(query, list(shards))
        assert [(row["Tid"], row["TS"]) for row in merged] == [
            (2, 100), (2, 200), (7, 100),
        ]

    def test_non_analytics_rows_pass_through(self):
        query = parse("SELECT COUNT(*) FROM DataPoint")
        rows = [{"COUNT(*)": 7}]
        assert analytics.merge_analytics_rows(query, rows) is rows


# ----------------------------------------------------------------------
# The README quickstart (executed verbatim, as the README promises)
# ----------------------------------------------------------------------
def test_readme_analytics_quickstart():
    text = (REPO_ROOT / "README.md").read_text()
    marker = "<!-- analytics-quickstart -->"
    assert marker in text, "README lost the analytics quickstart marker"
    block = text.split(marker, 1)[1]
    code = block.split("```python\n", 1)[1].split("```", 1)[0]
    namespace = {}
    exec(compile(code, "README.md", "exec"), namespace)
    assert len(namespace["forecast"]) == 5
    assert all(
        row["Lo"] <= row["Value"] <= row["Hi"]
        for row in namespace["forecast"]
    )
    assert len(namespace["nearest"]) == 3
    # The promised structural break: the level shift at 200 * SI.
    assert namespace["breaks"] == [{"Tid": 1, "StartTime": 20000}]
