"""DatePart rollups: aggregates over calendar components.

The paper points out (Section 7.3) that ModelarDB supports aggregates
over, e.g., the days of months, which InfluxDB cannot express. These
tests cover the ``CUBE_<AGG>_<PART>`` functions on both views.
"""

import datetime as dt

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.core.errors import QueryError
from repro.query.rollup import (
    DATEPART_LEVELS,
    datepart_of,
    format_bucket,
    is_datepart,
    parse_cube_function,
)


def ms(*args):
    return int(
        dt.datetime(*args, tzinfo=dt.timezone.utc).timestamp() * 1000
    )


@pytest.fixture(scope="module")
def db():
    """One week of hourly data starting Monday 2016-01-04, value = 1."""
    si = 3_600_000
    n = 24 * 7
    start = ms(2016, 1, 4)
    series = [
        TimeSeries(1, si, start + np.arange(n) * si, np.ones(n, np.float32))
    ]
    instance = ModelarDB(Configuration(error_bound=0.0))
    instance.ingest(series)
    return instance


class TestPrimitives:
    def test_is_datepart(self):
        assert is_datepart("DAYOFWEEK")
        assert not is_datepart("DAY")

    def test_datepart_of(self):
        monday = ms(2016, 1, 4)
        assert datepart_of(monday, "DAYOFWEEK") == 0
        assert datepart_of(monday, "DAYOFMONTH") == 4
        assert datepart_of(monday, "MONTHOFYEAR") == 1
        assert datepart_of(ms(2016, 1, 4, 13), "HOUROFDAY") == 13

    def test_unknown_part_rejected(self):
        with pytest.raises(QueryError):
            datepart_of(0, "WEEKOFYEAR")

    def test_parse_cube_accepts_parts(self):
        assert parse_cube_function("CUBE_SUM_DAYOFWEEK") == (
            "SUM", "DAYOFWEEK",
        )

    def test_format_bucket_for_parts(self):
        assert format_bucket(0, "DAYOFWEEK") == "Mon"
        assert format_bucket(6, "DAYOFWEEK") == "Sun"
        assert format_bucket(13, "HOUROFDAY") == "13"


class TestQueries:
    def test_day_of_week_counts(self, db):
        rows = db.sql("SELECT CUBE_COUNT_DAYOFWEEK(*) FROM Segment")
        assert len(rows) == 7
        assert all(row["CUBE_COUNT_DAYOFWEEK(*)"] == 24 for row in rows)
        assert [row["DAYOFWEEK"] for row in rows] == [
            "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun",
        ]

    def test_hour_of_day_sums(self, db):
        rows = db.sql("SELECT CUBE_SUM_HOUROFDAY(*) FROM Segment")
        assert len(rows) == 24
        # Every hour of day occurs once per day over seven days.
        assert all(row["CUBE_SUM_HOUROFDAY(*)"] == 7.0 for row in rows)

    def test_views_agree(self, db):
        sv = db.sql("SELECT CUBE_SUM_DAYOFMONTH(*) FROM Segment")
        dpv = db.sql("SELECT CUBE_SUM_DAYOFMONTH(*) FROM DataPoint")
        assert sv == pytest.approx(dpv)

    def test_total_is_preserved(self, db):
        rows = db.sql("SELECT CUBE_SUM_MONTHOFYEAR(*) FROM Segment")
        assert sum(row["CUBE_SUM_MONTHOFYEAR(*)"] for row in rows) == 24 * 7

    def test_all_parts_parse_and_run(self, db):
        for part in DATEPART_LEVELS:
            rows = db.sql(f"SELECT CUBE_AVG_{part}(*) FROM Segment")
            assert rows, part
