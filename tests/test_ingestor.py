"""The batch ingestion driver: ticks, bulk writes, statistics."""

import pytest

from repro.core import Configuration, TimeSeriesGroup
from repro.ingest import Ingestor, group_ticks
from repro.models import ModelRegistry
from repro.storage import MemoryStorage, SegmentScan, records_for_groups

from .conftest import correlated_group, make_series


class TestGroupTicks:
    def test_full_grid(self):
        group = TimeSeriesGroup(
            1, [make_series(1, [1.0, 2.0]), make_series(2, [5.0, 6.0])]
        )
        ticks = list(group_ticks(group))
        assert ticks == [
            (0, {1: 1.0, 2: 5.0}),
            (100, {1: 2.0, 2: 6.0}),
        ]

    def test_gap_reported_as_none(self):
        group = TimeSeriesGroup(1, [make_series(1, [1.0, None, 3.0])])
        ticks = list(group_ticks(group))
        assert ticks[1] == (100, {1: None})

    def test_shifted_series_padded_with_none(self):
        group = TimeSeriesGroup(
            1,
            [
                make_series(1, [1.0, 2.0, 3.0], start=0),
                make_series(2, [9.0], start=200),
            ],
        )
        ticks = list(group_ticks(group))
        assert ticks[0][1] == {1: 1.0, 2: None}
        assert ticks[2][1] == {1: 3.0, 2: 9.0}

    def test_series_ending_early_padded(self):
        group = TimeSeriesGroup(
            1,
            [
                make_series(1, [1.0], start=0),
                make_series(2, [9.0, 8.0], start=0),
            ],
        )
        ticks = list(group_ticks(group))
        assert ticks[1][1] == {1: None, 2: 8.0}


class TestIngestor:
    def make(self, bulk=50_000, error_bound=5.0):
        config = Configuration(
            error_bound=error_bound, bulk_write_size=bulk
        )
        storage = MemoryStorage()
        return Ingestor(config, ModelRegistry(), storage), storage

    def test_ingest_group_produces_segments(self):
        ingestor, storage = self.make()
        group = correlated_group(n_points=300)
        storage.insert_time_series(records_for_groups([group]))
        stats = ingestor.ingest_group(group)
        assert storage.segment_count() > 0
        assert stats.data_points == 3 * 300
        assert stats.storage_bytes == storage.size_bytes()

    def test_all_points_covered(self):
        ingestor, storage = self.make()
        group = correlated_group(n_points=257)
        storage.insert_time_series(records_for_groups([group]))
        ingestor.ingest_group(group)
        covered = set()
        for segment in storage.scan(SegmentScan()):
            covered.update(segment.timestamps())
        assert covered == set(range(0, 257 * 100, 100))

    def test_bulk_write_batches(self):
        # With a bulk size of 1, every segment lands immediately; with a
        # large size, the flush happens at group end — same content.
        group = correlated_group(n_points=300)

        small, small_store = self.make(bulk=1)
        small_store.insert_time_series(records_for_groups([group]))
        small.ingest_group(group)

        large, large_store = self.make(bulk=10_000)
        large_store.insert_time_series(records_for_groups([group]))
        large.ingest_group(group)

        assert small_store.segment_count() == large_store.segment_count()
        assert small_store.size_bytes() == large_store.size_bytes()

    def test_ingest_multiple_groups_merges_stats(self):
        ingestor, storage = self.make()
        groups = [
            correlated_group(gid=1, n_points=100, seed=0),
            correlated_group(gid=2, n_points=100, seed=1),
        ]
        # Reassign tids of the second group to avoid duplicate metadata.
        groups[1] = TimeSeriesGroup(
            2,
            [
                make_series(tid + 3, [p.value for p in ts], si=100)
                for tid, ts in zip(range(1, 4), groups[1])
            ],
        )
        storage.insert_time_series(records_for_groups(groups))
        stats = ingestor.ingest(groups)
        assert stats.data_points == 600
        assert storage.segment_count() > 0
        assert set(s.gid for s in storage.scan(SegmentScan())) == {1, 2}
