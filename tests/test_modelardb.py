"""The ModelarDB facade: partitioning, persistence, v1 mode."""

import numpy as np
import pytest

from repro import (
    Configuration,
    Dimension,
    DimensionSet,
    ModelarDB,
    TimeSeries,
)
from repro.models.pmc_mean import PMCMean


def build_dataset(n_points=400, seed=8):
    rng = np.random.default_rng(seed)
    location = Dimension("Location", ["Entity", "Park"])
    dimensions = DimensionSet([location])
    series = []
    base = 10 + np.cumsum(rng.normal(0, 0.05, n_points))
    for tid in (1, 2, 3, 4):
        values = np.float32(base + rng.normal(0, 0.02, n_points))
        series.append(TimeSeries(tid, 100, np.arange(n_points) * 100, values))
        location.assign(tid, (f"e{tid}", "p0" if tid <= 2 else "p1"))
    return series, dimensions


class TestFacade:
    def test_partition_uses_hints(self):
        series, dimensions = build_dataset()
        db = ModelarDB(
            Configuration(correlation=["Location 1"]), dimensions=dimensions
        )
        groups = db.partition(series)
        assert [g.tids for g in groups] == [(1, 2), (3, 4)]

    def test_v1_mode_disables_grouping(self):
        series, dimensions = build_dataset()
        db = ModelarDB(
            Configuration(correlation=["Location 1"]),
            dimensions=dimensions,
            group_compression=False,
        )
        groups = db.partition(series)
        assert all(len(g) == 1 for g in groups)

    def test_ingest_and_query(self):
        series, dimensions = build_dataset()
        db = ModelarDB(
            Configuration(error_bound=1.0, correlation=["Location 1"]),
            dimensions=dimensions,
        )
        stats = db.ingest(series)
        assert stats.data_points == 4 * 400
        assert db.segment_count() > 0
        assert db.size_bytes() == stats.storage_bytes
        rows = db.sql("SELECT COUNT_S(*) FROM Segment")
        assert rows[0]["COUNT_S(*)"] == 1600

    def test_incremental_ingest_refreshes_metadata(self):
        series, dimensions = build_dataset()
        db = ModelarDB(
            Configuration(error_bound=1.0), dimensions=dimensions
        )
        db.ingest(series[:2])
        assert db.sql("SELECT COUNT_S(*) FROM Segment")[0]["COUNT_S(*)"] == 800
        db.ingest(series[2:])
        assert db.sql("SELECT COUNT_S(*) FROM Segment")[0]["COUNT_S(*)"] == 1600

    def test_extra_models_registered(self):
        class Custom(PMCMean):
            name = "acme.Custom"

        db = ModelarDB(extra_models=[Custom()])
        assert db.registry.mid_of("acme.Custom") == 4

    def test_stats_model_mix(self):
        series, dimensions = build_dataset()
        db = ModelarDB(
            Configuration(error_bound=5.0, correlation=["Location 1"]),
            dimensions=dimensions,
        )
        db.ingest(series)
        mix = db.stats.model_mix()
        assert sum(mix.values()) == pytest.approx(100.0)


class TestPersistence:
    def test_file_storage_survives_reopen(self, tmp_path):
        series, dimensions = build_dataset()
        config = Configuration(error_bound=1.0, correlation=["Location 1"])
        with ModelarDB.open(
            tmp_path / "db", config=config, dimensions=dimensions
        ) as db:
            db.ingest(series)
            expected = db.sql("SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid")

        with ModelarDB.open(tmp_path / "db", config=config) as reopened:
            rows = reopened.sql(
                "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid"
            )
        assert rows == pytest.approx(expected)

    def test_reopened_store_preserves_dimensions(self, tmp_path):
        series, dimensions = build_dataset()
        config = Configuration(error_bound=1.0, correlation=["Location 1"])
        with ModelarDB.open(
            tmp_path / "db", config=config, dimensions=dimensions
        ) as db:
            db.ingest(series)

        reopened = ModelarDB.open(tmp_path / "db", config=config)
        rows = reopened.sql(
            "SELECT Park, COUNT_S(*) FROM Segment GROUP BY Park"
        )
        by_park = {row["Park"]: row["COUNT_S(*)"] for row in rows}
        assert by_park == {"p0": 800, "p1": 800}


class TestCompressionBehaviour:
    def test_higher_error_bound_never_larger(self):
        series, dimensions = build_dataset()
        sizes = []
        for bound in (0.0, 1.0, 5.0, 10.0):
            db = ModelarDB(
                Configuration(error_bound=bound, correlation=["Location 1"]),
                dimensions=dimensions,
            )
            db.ingest(series)
            sizes.append(db.size_bytes())
        assert sizes == sorted(sizes, reverse=True)

    def test_v2_smaller_than_v1_on_correlated_data(self):
        series, dimensions = build_dataset()
        config = Configuration(error_bound=5.0, correlation=["Location 1"])
        v2 = ModelarDB(config, dimensions=dimensions)
        v2.ingest(series)
        v1 = ModelarDB(config, dimensions=dimensions, group_compression=False)
        v1.ingest(series)
        assert v2.size_bytes() < v1.size_bytes()
