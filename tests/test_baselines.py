"""The comparison systems behind the StorageFormat interface."""

import numpy as np
import pytest

from repro.baselines import (
    CassandraLike,
    InfluxLike,
    ModelarV1Format,
    ModelarV2Format,
    ORCLike,
    ParquetLike,
)
from repro.core import Configuration, Dimension, DimensionSet, TimeSeries
from repro.core.errors import UnsupportedQueryError
from repro.datasets.synthetic import DEFAULT_START_MS

SI = 60_000
N = 500

ALL_FORMATS = [
    CassandraLike,
    InfluxLike,
    ParquetLike,
    ORCLike,
]


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(6)
    location = Dimension("Location", ["Entity", "Park"])
    dimensions = DimensionSet([location])
    series = []
    truth = {}
    base = 100 + np.cumsum(rng.normal(0, 0.3, N))
    for tid in (1, 2, 3):
        values = np.float32(base + rng.normal(0, 0.1, N))
        truth[tid] = values.astype(np.float64)
        timestamps = DEFAULT_START_MS + np.arange(N) * SI
        series.append(TimeSeries(tid, SI, timestamps, values))
        location.assign(tid, (f"e{tid}", "park0" if tid < 3 else "park1"))
    return series, dimensions, truth


def build(format_cls, dataset):
    series, dimensions, _ = dataset
    fmt = format_cls()
    fmt.ingest(series, dimensions)
    return fmt


@pytest.fixture(scope="module", params=ALL_FORMATS, ids=lambda c: c.__name__)
def fmt(request, dataset):
    return build(request.param, dataset)


class TestQueriesMatchTruth:
    def test_sum(self, fmt, dataset):
        _, _, truth = dataset
        rows = fmt.simple_aggregate("SUM", tids=[1])
        assert rows[0]["SUM"] == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_group_by_tid(self, fmt, dataset):
        _, _, truth = dataset
        rows = fmt.simple_aggregate("AVG", tids=[1, 2], group_by_tid=True)
        by_tid = {row["Tid"]: row["AVG"] for row in rows}
        assert by_tid[2] == pytest.approx(truth[2].mean(), rel=1e-9)

    def test_min_max_over_all(self, fmt, dataset):
        _, _, truth = dataset
        rows = fmt.simple_aggregate("MIN")
        expected = min(values.min() for values in truth.values())
        assert rows[0]["MIN"] == pytest.approx(expected)

    def test_count(self, fmt, dataset):
        rows = fmt.simple_aggregate("COUNT")
        assert rows[0]["COUNT"] == 3 * N

    def test_point_query(self, fmt, dataset):
        _, _, truth = dataset
        ts = DEFAULT_START_MS + 123 * SI
        assert fmt.point_query(2, ts) == pytest.approx(truth[2][123])

    def test_point_query_miss(self, fmt):
        assert fmt.point_query(1, DEFAULT_START_MS - SI) is None

    def test_range_query(self, fmt, dataset):
        _, _, truth = dataset
        start = DEFAULT_START_MS + 10 * SI
        end = DEFAULT_START_MS + 29 * SI
        timestamps, values = fmt.range_query(3, start, end)
        assert len(values) == 20
        assert values == pytest.approx(truth[3][10:30])
        assert timestamps[0] == start

    def test_time_restricted_aggregate(self, fmt, dataset):
        _, _, truth = dataset
        start = DEFAULT_START_MS + 100 * SI
        end = DEFAULT_START_MS + 199 * SI
        rows = fmt.simple_aggregate("SUM", tids=[1], start=start, end=end)
        assert rows[0]["SUM"] == pytest.approx(truth[1][100:200].sum())


class TestRollups:
    def test_rollup_matches_truth(self, fmt, dataset):
        _, _, truth = dataset
        if not fmt.supports_calendar_rollup:
            pytest.skip("format has no calendar rollups")
        rows = fmt.rollup("SUM", "HOUR", tids=[1])
        total = sum(row["SUM"] for row in rows)
        assert total == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_rollup_group_by_dimension(self, fmt, dataset):
        if not fmt.supports_calendar_rollup:
            pytest.skip("format has no calendar rollups")
        rows = fmt.rollup("SUM", "DAY", group_by="Park")
        assert {row["Park"] for row in rows} == {"park0", "park1"}

    def test_member_filter(self, fmt, dataset):
        if not fmt.supports_calendar_rollup:
            pytest.skip("format has no calendar rollups")
        rows = fmt.rollup("COUNT", "DAY", member=("Park", "nowhere"))
        assert rows == []


class TestCapabilities:
    def test_influx_rejects_calendar_rollups(self, dataset):
        fmt = build(InfluxLike, dataset)
        # The paper's M-AGG queries cannot run on InfluxDB (Figs. 25-28).
        with pytest.raises(UnsupportedQueryError):
            fmt.rollup("SUM", "MONTH")

    def test_influx_is_single_node(self, dataset):
        fmt = build(InfluxLike, dataset)
        assert not fmt.supports_distribution

    def test_influx_capacity_guard(self, dataset):
        fmt = build(InfluxLike, dataset)
        fmt.check_single_node_capacity()  # small data: fine
        fmt._total_points = 10 ** 9
        with pytest.raises(UnsupportedQueryError):
            fmt.check_single_node_capacity()

    def test_files_not_queryable_during_ingest(self):
        assert not ParquetLike.supports_online_analytics
        assert not ORCLike.supports_online_analytics
        assert InfluxLike.supports_online_analytics
        assert CassandraLike.supports_online_analytics

    def test_unknown_aggregate_rejected(self, fmt):
        with pytest.raises(UnsupportedQueryError):
            fmt.simple_aggregate("MEDIAN")


class TestStorageShape:
    def test_cassandra_is_largest(self, dataset):
        """Row-per-point with denormalised dimensions costs the most."""
        sizes = {
            cls.__name__: build(cls, dataset).size_bytes()
            for cls in ALL_FORMATS
        }
        assert sizes["CassandraLike"] == max(sizes.values())

    def test_modelar_v2_smallest(self, dataset):
        series, dimensions, _ = dataset
        config = Configuration(error_bound=5.0, correlation=["Location 1"])
        v2 = ModelarV2Format(config)
        v2.ingest(series, dimensions)
        others = min(build(cls, dataset).size_bytes() for cls in ALL_FORMATS)
        assert v2.size_bytes() < others

    def test_v2_beats_v1_on_correlated_data(self, dataset):
        series, dimensions, _ = dataset
        config = Configuration(error_bound=5.0, correlation=["Location 1"])
        v2 = ModelarV2Format(config)
        v2.ingest(series, dimensions)
        v1 = ModelarV1Format(config)
        v1.ingest(series, dimensions)
        assert v2.size_bytes() < v1.size_bytes()


class TestModelarAdapters:
    @pytest.fixture(scope="class")
    def v2(self, dataset):
        series, dimensions, _ = dataset
        config = Configuration(error_bound=0.0, correlation=["Location 1"])
        fmt = ModelarV2Format(config)
        fmt.ingest(series, dimensions)
        return fmt

    def test_lossless_sum_matches_truth(self, v2, dataset):
        _, _, truth = dataset
        rows = v2.simple_aggregate("SUM", tids=[1])
        assert rows[0]["SUM"] == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_data_point_view_adapter(self, dataset):
        series, dimensions, truth = dataset
        config = Configuration(error_bound=0.0, correlation=["Location 1"])
        dpv = ModelarV2Format(config, view="datapoint")
        dpv.ingest(series, dimensions)
        rows = dpv.simple_aggregate("SUM", tids=[1])
        assert rows[0]["SUM"] == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_rollup_adapter(self, v2, dataset):
        _, _, truth = dataset
        rows = v2.rollup("SUM", "HOUR", tids=[2])
        total = sum(row["SUM"] for row in rows)
        assert total == pytest.approx(truth[2].sum(), rel=1e-9)

    def test_point_and_range_adapter(self, v2, dataset):
        _, _, truth = dataset
        ts = DEFAULT_START_MS + 7 * SI
        assert v2.point_query(1, ts) == pytest.approx(truth[1][7])
        _, values = v2.range_query(1, ts, ts + 4 * SI)
        assert values == pytest.approx(truth[1][7:12])

    def test_names(self, dataset):
        assert ModelarV2Format().name == "ModelarDBv2-SV"
        assert ModelarV1Format(view="datapoint").name == "ModelarDBv1-DPV"

    def test_queries_before_ingest_rejected(self):
        with pytest.raises(RuntimeError):
            ModelarV2Format().simple_aggregate("SUM")
