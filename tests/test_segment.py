"""Segments and their per-series explosion (Definition 9)."""

import pytest

from repro.core import SegmentGroup, explode
from repro.core.errors import ModelarError
from repro.core.segment import SEGMENT_OVERHEAD_BYTES


def segment(**overrides) -> SegmentGroup:
    defaults = dict(
        gid=1,
        start_time=100,
        end_time=400,
        sampling_interval=100,
        mid=1,
        parameters=b"\x01\x02\x03\x04",
        gaps=frozenset(),
        group_tids=(1, 2, 3),
    )
    defaults.update(overrides)
    return SegmentGroup(**defaults)


class TestInvariants:
    def test_length(self):
        assert segment().length == 4

    def test_single_point_segment(self):
        assert segment(end_time=100).length == 1

    def test_end_before_start_rejected(self):
        with pytest.raises(ModelarError):
            segment(end_time=0)

    def test_interval_must_be_si_multiple(self):
        with pytest.raises(ModelarError):
            segment(end_time=450)

    def test_gaps_must_belong_to_group(self):
        with pytest.raises(ModelarError):
            segment(gaps=frozenset({9}))

    def test_member_tids_exclude_gaps(self):
        s = segment(gaps=frozenset({2}))
        assert s.member_tids == (1, 3)
        assert s.n_columns == 2

    def test_column_of(self):
        s = segment(gaps=frozenset({2}))
        assert s.column_of(1) == 0
        assert s.column_of(3) == 1
        with pytest.raises(ModelarError):
            s.column_of(2)

    def test_timestamps(self):
        assert list(segment().timestamps()) == [100, 200, 300, 400]

    def test_index_of(self):
        s = segment()
        assert s.index_of(100) == 0
        assert s.index_of(400) == 3
        with pytest.raises(ModelarError):
            s.index_of(150)
        with pytest.raises(ModelarError):
            s.index_of(500)

    def test_overlaps(self):
        s = segment()
        assert s.overlaps(None, None)
        assert s.overlaps(400, None)
        assert s.overlaps(None, 100)
        assert not s.overlaps(401, None)
        assert not s.overlaps(None, 99)
        assert s.overlaps(250, 260)

    def test_storage_bytes_matches_paper_accounting(self):
        # Section 3.2: a segment costs 24 + sizeof(Model) bytes.
        assert segment().storage_bytes() == SEGMENT_OVERHEAD_BYTES + 4


class TestGapBitmask:
    def test_round_trip(self):
        s = segment(gaps=frozenset({1, 3}))
        mask = s.gap_bitmask()
        assert mask == 0b101
        assert SegmentGroup.gaps_from_bitmask(mask, (1, 2, 3)) == {1, 3}

    def test_no_gaps_is_zero(self):
        assert segment().gap_bitmask() == 0


class TestExplode:
    def test_one_row_per_member(self):
        rows = explode(segment(gaps=frozenset({2})))
        assert [row.tid for row in rows] == [1, 3]
        assert all(row.start_time == 100 for row in rows)
        assert [row.column for row in rows] == [0, 1]

    def test_tid_filter(self):
        rows = explode(segment(), tids={2})
        assert [row.tid for row in rows] == [2]

    def test_scaling_and_dimensions_attached(self):
        rows = explode(
            segment(),
            scalings={1: 4.75},
            dimension_rows={1: {"Park": "Aalborg"}},
        )
        assert rows[0].scaling == 4.75
        assert rows[0].dimensions == {"Park": "Aalborg"}
        assert rows[1].scaling == 1.0

    def test_row_length(self):
        rows = explode(segment())
        assert rows[0].length == 4
