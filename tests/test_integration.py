"""Cross-module integration: the paper's pipelines end to end."""

import numpy as np
import pytest

from repro import Configuration, ModelarDB
from repro.baselines import ModelarV1Format, ModelarV2Format
from repro.datasets import generate_eh, generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.workloads import actual_average_error, max_relative_error


@pytest.fixture(scope="module")
def ep():
    return generate_ep(
        n_entities=3, measures_per_entity=3, n_points=800,
        gap_probability=0.002, seed=10,
    )


@pytest.fixture(scope="module")
def eh():
    return generate_eh(
        n_parks=1, entities_per_park=3, measures=("ActivePower",),
        n_points=1500, seed=11,
    )


def ingest_ep(ep, bound, group_compression=True):
    config = Configuration(error_bound=bound, correlation=EP_CORRELATION)
    db = ModelarDB(
        config, dimensions=ep.dimensions, group_compression=group_compression
    )
    db.ingest(ep.series)
    return db


class TestEPPipeline:
    @pytest.mark.parametrize("bound", [0.0, 1.0, 5.0, 10.0])
    def test_error_bound_respected(self, ep, bound):
        db = ingest_ep(ep, bound)
        worst = max_relative_error(db, ep.series)
        assert worst <= bound + 1e-4

    def test_actual_error_well_below_bound(self, ep):
        # The paper reports average errors far below the bound
        # (e.g. 0.34% at a 10% bound for EP).
        db = ingest_ep(ep, 10.0)
        average = actual_average_error(db, ep.series)
        assert average < 10.0 / 2

    def test_storage_decreases_with_bound(self, ep):
        sizes = [ingest_ep(ep, b).size_bytes() for b in (0.0, 1.0, 5.0, 10.0)]
        assert sizes == sorted(sizes, reverse=True)

    def test_v2_beats_v1_on_ep(self, ep):
        for bound in (0.0, 5.0):
            v2 = ingest_ep(ep, bound).size_bytes()
            v1 = ingest_ep(ep, bound, group_compression=False).size_bytes()
            assert v2 < v1, f"bound={bound}"

    def test_model_mix_contains_multiple_models(self, ep):
        db = ingest_ep(ep, 1.0)
        assert len(db.stats.model_mix()) >= 2

    def test_multidimensional_query(self, ep):
        db = ingest_ep(ep, 1.0)
        rows = db.sql(
            "SELECT Category, CUBE_SUM_MONTH(*) FROM Segment "
            "WHERE Category = 'ProductionMWh' GROUP BY Category"
        )
        assert rows
        assert all(row["Category"] == "ProductionMWh" for row in rows)

    def test_gaps_survive_pipeline(self, ep):
        db = ingest_ep(ep, 1.0)
        for ts in ep.series:
            if ts.gap_count() == 0:
                continue
            points = {p.timestamp for p in db.points(tids=[ts.tid])}
            expected = {
                p.timestamp for p in ts if p.value is not None
            }
            assert points == expected
            break
        else:
            pytest.skip("no gaps generated")


class TestEHPipeline:
    def ingest(self, eh, bound, group_compression=True):
        config = Configuration(
            error_bound=bound, correlation=eh.correlation()
        )
        db = ModelarDB(
            config, dimensions=eh.dimensions,
            group_compression=group_compression,
        )
        db.ingest(eh.series)
        return db

    @pytest.mark.parametrize("bound", [0.0, 10.0])
    def test_error_bound_respected(self, eh, bound):
        db = self.ingest(eh, bound)
        assert max_relative_error(db, eh.series) <= bound + 1e-4

    def test_weak_correlation_favours_v1_at_zero_bound(self, eh):
        # Fig. 15: at a 0% bound v1 beats v2 on EH — grouping weakly
        # correlated series pays a cross-series penalty in the lossless
        # Gorilla stream (the paper measures 1.18x; the synthetic EH's
        # penalty is larger, see EXPERIMENTS.md).
        v2 = self.ingest(eh, 0.0).size_bytes()
        v1 = self.ingest(eh, 0.0, group_compression=False).size_bytes()
        assert v1 < v2
        assert v2 < 6.0 * v1

    def test_high_bound_helps_v2(self, eh):
        v2_low = self.ingest(eh, 0.0).size_bytes()
        v2_high = self.ingest(eh, 10.0).size_bytes()
        assert v2_high < v2_low


class TestFormatAdapters:
    def test_v1_v2_adapters_agree_losslessly(self, ep):
        config = Configuration(error_bound=0.0, correlation=EP_CORRELATION)
        v2 = ModelarV2Format(config)
        v2.ingest(ep.series, ep.dimensions)
        v1 = ModelarV1Format(Configuration(error_bound=0.0))
        v1.ingest(ep.series, ep.dimensions)
        tid = ep.production_tids[0]
        a = v2.simple_aggregate("SUM", tids=[tid])[0]["SUM"]
        b = v1.simple_aggregate("SUM", tids=[tid])[0]["SUM"]
        assert a == pytest.approx(b, rel=1e-9)
