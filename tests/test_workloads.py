"""Workload generators and cross-system result agreement."""

import numpy as np
import pytest

from repro.baselines import ModelarV2Format, ParquetLike
from repro.core import Configuration
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.workloads import QuerySpec, l_agg, m_agg, p_r, s_agg


@pytest.fixture(scope="module")
def systems():
    ep = generate_ep(
        n_entities=2, measures_per_entity=2, n_points=300,
        gap_probability=0.0, seed=5,
    )
    parquet = ParquetLike()
    parquet.ingest(ep.series, ep.dimensions)
    v2 = ModelarV2Format(
        Configuration(error_bound=0.0, correlation=EP_CORRELATION)
    )
    v2.ingest(ep.series, ep.dimensions)
    return ep, parquet, v2


class TestToSql:
    def test_as_of_renders_between_view_and_where(self):
        from repro.query.sql import parse

        spec = QuerySpec("simple", tids=(1,), start=100, as_of=7)
        sql = spec.to_sql()
        assert " FROM Segment AS OF 7 WHERE " in sql
        assert parse(sql).as_of == 7
        ranged = QuerySpec(
            "range", tids=(2,), start=0, end=500, as_of=3
        ).to_sql()
        assert " FROM DataPoint AS OF 3 WHERE " in ranged
        assert parse(ranged).as_of == 3
        # None renders no clause — statements stay byte-identical.
        assert "AS OF" not in QuerySpec("simple", tids=(1,)).to_sql()


class TestGenerators:
    def test_s_agg_structure(self):
        queries = s_agg(list(range(1, 11)), seed=1, count=10).queries
        singles = [q for q in queries if len(q.tids) == 1]
        grouped = [q for q in queries if q.group_by_tid]
        assert len(singles) == 5
        assert len(grouped) == 5
        assert all(len(q.tids) == 5 for q in grouped)

    def test_l_agg_structure(self):
        queries = l_agg(count=4).queries
        assert all(q.tids is None for q in queries)
        assert sum(q.group_by_tid for q in queries) == 2

    def test_m_agg_variants(self):
        one = m_agg(("Category", "ProductionMWh"), "Category")
        two = m_agg(("Category", "ProductionMWh"), "Category", per_tid=True)
        assert one.name == "M-AGG-One"
        assert two.name == "M-AGG-Two"
        assert all(not q.group_by_tid for q in one.queries)
        assert all(q.group_by_tid for q in two.queries)

    def test_p_r_structure(self):
        workload = p_r([1, 2, 3], 0, 100_000, 100, seed=2, count=10)
        points = [q for q in workload.queries if q.kind == "point"]
        ranges = [q for q in workload.queries if q.kind == "range"]
        assert len(points) == 5
        assert len(ranges) == 5
        # Point timestamps land on the sampling grid.
        assert all(q.timestamp % 100 == 0 for q in points)

    def test_deterministic(self):
        a = s_agg([1, 2, 3, 4, 5], seed=7).queries
        b = s_agg([1, 2, 3, 4, 5], seed=7).queries
        assert a == b


class TestCrossSystemAgreement:
    """Lossless ModelarDB and Parquet answer workloads identically."""

    def test_s_agg_agrees(self, systems):
        ep, parquet, v2 = systems
        for query in s_agg(ep.production_tids, seed=3).queries:
            expected = query.run(parquet)
            actual = query.run(v2)
            assert _values(actual) == pytest.approx(
                _values(expected), rel=1e-6
            ), query

    def test_l_agg_agrees(self, systems):
        ep, parquet, v2 = systems
        for query in l_agg().queries:
            assert _values(query.run(v2)) == pytest.approx(
                _values(query.run(parquet)), rel=1e-6
            ), query

    def test_m_agg_agrees(self, systems):
        ep, parquet, v2 = systems
        workload = m_agg(("Category", "ProductionMWh"), "Category", count=2)
        for query in workload.queries:
            expected = query.run(parquet)
            actual = query.run(v2)
            assert len(actual) == len(expected)
            assert _values(actual) == pytest.approx(
                _values(expected), rel=1e-6
            )

    def test_p_r_agrees(self, systems):
        ep, parquet, v2 = systems
        workload = p_r(
            ep.production_tids, ep.start_time, ep.end_time,
            ep.sampling_interval, seed=4,
        )
        for query in workload.queries:
            expected = query.run(parquet)
            actual = query.run(v2)
            if query.kind == "point":
                assert actual == pytest.approx(expected)
            else:
                assert actual[1] == pytest.approx(expected[1])

    def test_run_measures_elapsed(self, systems):
        ep, parquet, _ = systems
        elapsed = l_agg(count=1).run(parquet)
        assert elapsed > 0

    def test_unknown_kind_rejected(self, systems):
        _, parquet, _ = systems
        with pytest.raises(ValueError):
            QuerySpec("explode").run(parquet)


def _values(rows):
    """Numeric row contents, order-normalised (systems may return
    grouped rows in different orders)."""
    if rows is None:
        return []
    if isinstance(rows, (int, float)):
        return [rows]
    ordered = sorted(rows, key=lambda row: str(sorted(row.items())))
    flattened = []
    for row in ordered:
        for value in row.values():
            if isinstance(value, (int, float)):
                flattened.append(value)
    return flattened
