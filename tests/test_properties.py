"""Property-based tests of the core invariants (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Configuration, ModelarDB, TimeSeries
from repro.core import SegmentGroup
from repro.models import ModelRegistry
from repro.models.gorilla import Gorilla
from repro.models.pmc_mean import PMCMean
from repro.models.swing import Swing
from repro.storage import SegmentScan, decode_segment, encode_segment

#: Values representable as float32 without the extremes that make
#: relative-error arithmetic degenerate.
f32_values = st.floats(
    min_value=-1e6,
    max_value=1e6,
    allow_nan=False,
    allow_infinity=False,
    width=32,
)

bounds = st.sampled_from([0.0, 1.0, 5.0, 10.0])


def within_bound(original, estimate, bound_percent):
    slack = 1e-6 * max(abs(original), 1e-3)
    return abs(estimate - original) <= bound_percent / 100.0 * abs(original) + slack


@given(values=st.lists(f32_values, min_size=1, max_size=60), bound=bounds)
@settings(max_examples=200, deadline=None)
def test_pmc_accepted_prefix_is_within_bound(values, bound):
    """Whatever PMC accepts it must reconstruct within the bound."""
    pmc = PMCMean()
    fitter = pmc.fitter(1, bound, 60)
    accepted = []
    for value in values:
        if not fitter.append((value,)):
            break
        accepted.append(value)
    if not accepted:
        return
    model = pmc.decode(fitter.parameters(), 1, len(accepted))
    for index, value in enumerate(accepted):
        assert within_bound(value, model.value_at(index, 0), bound)


@given(values=st.lists(f32_values, min_size=1, max_size=60), bound=bounds)
@settings(max_examples=200, deadline=None)
def test_swing_accepted_prefix_is_within_bound(values, bound):
    swing = Swing()
    fitter = swing.fitter(1, bound, 60)
    accepted = []
    for value in values:
        if not fitter.append((value,)):
            break
        accepted.append(value)
    if not accepted:
        return
    model = swing.decode(fitter.parameters(), 1, len(accepted))
    for index, value in enumerate(accepted):
        assert within_bound(value, model.value_at(index, 0), bound)


@given(
    rows=st.lists(
        st.lists(f32_values, min_size=2, max_size=2), min_size=1, max_size=50
    )
)
@settings(max_examples=150, deadline=None)
def test_gorilla_is_lossless_for_any_float32(rows):
    gorilla = Gorilla()
    fitter = gorilla.fitter(2, 0.0, 50)
    for row in rows:
        assert fitter.append(tuple(row))
    model = gorilla.decode(fitter.parameters(), 2, len(rows))
    decoded = model.values()
    for index, row in enumerate(rows):
        for column, value in enumerate(row):
            assert decoded[index, column] == float(np.float32(value))


@given(
    values=st.lists(f32_values, min_size=1, max_size=120),
    bound=bounds,
)
@settings(max_examples=60, deadline=None)
def test_ingestion_reconstructs_within_bound(values, bound):
    """End-to-end: ingest -> store -> Data Point View stays in bound and
    loses no data points."""
    series = TimeSeries(1, 100, [i * 100 for i in range(len(values))], values)
    db = ModelarDB(Configuration(error_bound=bound))
    db.ingest([series])
    points = {p.timestamp: p.value for p in db.points(tids=[1])}
    assert len(points) == len(values)
    for index, value in enumerate(values):
        quantized = float(np.float32(value))
        assert within_bound(quantized, points[index * 100], bound)


@given(
    values=st.lists(f32_values, min_size=1, max_size=80),
    bound=bounds,
)
@settings(max_examples=40, deadline=None)
def test_segment_views_agree_on_sum(values, bound):
    """SUM on the Segment View equals SUM on the Data Point View."""
    series = TimeSeries(1, 100, [i * 100 for i in range(len(values))], values)
    db = ModelarDB(Configuration(error_bound=bound))
    db.ingest([series])
    sv = db.sql("SELECT SUM_S(*) FROM Segment")[0]["SUM_S(*)"]
    dpv = db.sql("SELECT SUM(*) FROM DataPoint")[0]["SUM(*)"]
    assert sv == pytest.approx(dpv, rel=1e-9, abs=1e-9)


@given(
    values=st.lists(f32_values, min_size=1, max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_segments_partition_the_timeline(values):
    """Emitted segments are disjoint and cover every non-gap timestamp."""
    series = TimeSeries(1, 100, [i * 100 for i in range(len(values))], values)
    db = ModelarDB(Configuration(error_bound=1.0))
    db.ingest([series])
    covered = []
    for segment in db.storage.scan(SegmentScan()):
        covered.extend(segment.timestamps())
    assert sorted(covered) == [i * 100 for i in range(len(values))]
    assert len(covered) == len(set(covered))


@given(
    gid=st.integers(min_value=0, max_value=2 ** 31 - 1),
    start_index=st.integers(min_value=0, max_value=1000),
    length=st.integers(min_value=1, max_value=500),
    mid=st.integers(min_value=1, max_value=255),
    params=st.binary(max_size=64),
    gap_positions=st.sets(st.integers(min_value=0, max_value=4), max_size=4),
)
@settings(max_examples=200, deadline=None)
def test_segment_serialization_round_trip(
    gid, start_index, length, mid, params, gap_positions
):
    group_tids = (1, 2, 3, 4, 5)
    gaps = frozenset(group_tids[p] for p in gap_positions)
    si = 100
    segment = SegmentGroup(
        gid=gid,
        start_time=start_index * si,
        end_time=(start_index + length - 1) * si,
        sampling_interval=si,
        mid=mid,
        parameters=params,
        gaps=gaps,
        group_tids=group_tids,
    )
    decoded, offset = decode_segment(
        encode_segment(segment), 0, si, group_tids
    )
    assert decoded == segment


@given(
    data=st.lists(
        st.tuples(f32_values, st.booleans()), min_size=2, max_size=100
    )
)
@settings(max_examples=40, deadline=None)
def test_gaps_never_produce_phantom_points(data):
    """Ingesting a series with arbitrary gaps reconstructs exactly the
    non-gap points — nothing lost, nothing invented."""
    values = [value if present else None for value, present in data]
    if all(v is None for v in values):
        return
    # The series must start with a real point for a stable start time.
    first_present = next(i for i, v in enumerate(values) if v is not None)
    values = values[first_present:]
    series = TimeSeries(1, 100, [i * 100 for i in range(len(values))], values)
    db = ModelarDB(Configuration(error_bound=0.0))
    db.ingest([series])
    points = {p.timestamp for p in db.points(tids=[1])}
    expected = {
        i * 100 for i, value in enumerate(values) if value is not None
    }
    assert points == expected
