"""End-to-end query engine tests against numpy ground truth."""

import numpy as np
import pytest

from repro import Configuration, Dimension, DimensionSet, ModelarDB, TimeSeries
from repro.core.errors import QueryError
from repro.datasets.synthetic import DEFAULT_START_MS

SI = 60_000
N = 720  # 12 hours of minutes


@pytest.fixture(scope="module")
def db_and_truth():
    """Four series in two parks with lossless ingestion for exact sums."""
    rng = np.random.default_rng(9)
    location = Dimension("Location", ["Entity", "Park"])
    measure = Dimension("Measure", ["Concrete", "Category"])
    dimensions = DimensionSet([location, measure])
    truth = {}
    series = []
    base = np.float32(100 + np.cumsum(rng.normal(0, 0.5, N)))
    for tid in range(1, 5):
        values = np.float32(base + np.float32(rng.normal(0, 0.1, N)))
        truth[tid] = values.astype(np.float64)
        timestamps = DEFAULT_START_MS + np.arange(N) * SI
        series.append(TimeSeries(tid, SI, timestamps, values))
        park = "north" if tid <= 2 else "south"
        location.assign(tid, (f"e{tid}", park))
        measure.assign(tid, (f"m{tid}", "Power"))
    config = Configuration(error_bound=0.0, correlation=["Location 1"])
    db = ModelarDB(config, dimensions=dimensions)
    db.ingest(series)
    return db, truth


class TestSimpleAggregates:
    def test_sum_single_series(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql("SELECT SUM_S(*) FROM Segment WHERE Tid = 1")
        assert rows[0]["SUM_S(*)"] == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_group_by_tid(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT Tid, AVG_S(*) FROM Segment WHERE Tid IN (1, 3) "
            "GROUP BY Tid"
        )
        assert len(rows) == 2
        by_tid = {row["Tid"]: row["AVG_S(*)"] for row in rows}
        assert by_tid[1] == pytest.approx(truth[1].mean(), rel=1e-9)
        assert by_tid[3] == pytest.approx(truth[3].mean(), rel=1e-9)

    def test_min_max_count(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT MIN_S(*), MAX_S(*), COUNT_S(*) FROM Segment WHERE Tid = 2"
        )
        assert rows[0]["MIN_S(*)"] == pytest.approx(truth[2].min())
        assert rows[0]["MAX_S(*)"] == pytest.approx(truth[2].max())
        assert rows[0]["COUNT_S(*)"] == N

    def test_aggregate_over_all_series(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql("SELECT SUM_S(*) FROM Segment")
        expected = sum(values.sum() for values in truth.values())
        assert rows[0]["SUM_S(*)"] == pytest.approx(expected, rel=1e-9)

    def test_time_restricted_aggregate(self, db_and_truth):
        db, truth = db_and_truth
        start = DEFAULT_START_MS + 100 * SI
        end = DEFAULT_START_MS + 199 * SI
        rows = db.sql(
            f"SELECT SUM_S(*) FROM Segment WHERE Tid = 1 AND TS >= {start} "
            f"AND TS <= {end}"
        )
        assert rows[0]["SUM_S(*)"] == pytest.approx(
            truth[1][100:200].sum(), rel=1e-9
        )

    def test_segment_and_point_views_agree(self, db_and_truth):
        db, truth = db_and_truth
        sv = db.sql("SELECT SUM_S(*) FROM Segment WHERE Tid = 4")
        dpv = db.sql("SELECT SUM(*) FROM DataPoint WHERE Tid = 4")
        assert sv[0]["SUM_S(*)"] == pytest.approx(
            dpv[0]["SUM(*)"], rel=1e-12
        )


class TestDimensionQueries:
    def test_member_predicate_rewrites_to_gids(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT SUM_S(*) FROM Segment WHERE Park = 'north'"
        )
        expected = truth[1].sum() + truth[2].sum()
        assert rows[0]["SUM_S(*)"] == pytest.approx(expected, rel=1e-9)

    def test_group_by_dimension(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql("SELECT Park, SUM_S(*) FROM Segment GROUP BY Park")
        by_park = {row["Park"]: row["SUM_S(*)"] for row in rows}
        assert by_park["north"] == pytest.approx(
            truth[1].sum() + truth[2].sum(), rel=1e-9
        )
        assert by_park["south"] == pytest.approx(
            truth[3].sum() + truth[4].sum(), rel=1e-9
        )

    def test_member_and_tid_combined(self, db_and_truth):
        db, _ = db_and_truth
        rows = db.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE Park = 'north' AND Tid = 3"
        )
        assert rows[0]["COUNT_S(*)"] == 0

    def test_unknown_member_returns_empty(self, db_and_truth):
        db, _ = db_and_truth
        rows = db.sql("SELECT COUNT_S(*) FROM Segment WHERE Park = 'mars'")
        assert rows[0]["COUNT_S(*)"] == 0

    def test_unknown_column_rejected(self, db_and_truth):
        db, _ = db_and_truth
        with pytest.raises(QueryError):
            db.sql("SELECT COUNT_S(*) FROM Segment WHERE Planet = 'mars'")

    def test_group_by_unknown_column_rejected(self, db_and_truth):
        db, _ = db_and_truth
        with pytest.raises(QueryError):
            db.sql("SELECT SUM_S(*) FROM Segment GROUP BY Planet")


class TestTimeRollups:
    def test_cube_sum_hour_matches_truth(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 1"
        )
        assert len(rows) == 12
        for hour, row in enumerate(rows):
            expected = truth[1][hour * 60:(hour + 1) * 60].sum()
            assert row["CUBE_SUM_HOUR(*)"] == pytest.approx(
                expected, rel=1e-9
            ), f"hour {hour}"

    def test_cube_rollup_views_agree(self, db_and_truth):
        db, _ = db_and_truth
        sv = db.sql("SELECT CUBE_AVG_HOUR(*) FROM Segment WHERE Tid = 2")
        dpv = db.sql("SELECT CUBE_AVG_HOUR(*) FROM DataPoint WHERE Tid = 2")
        assert len(sv) == len(dpv)
        for sv_row, dpv_row in zip(sv, dpv):
            assert sv_row["HOUR"] == dpv_row["HOUR"]
            assert sv_row["CUBE_AVG_HOUR(*)"] == pytest.approx(
                dpv_row["CUBE_AVG_HOUR(*)"], rel=1e-9
            )

    def test_cube_grouped_by_dimension(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT Park, CUBE_SUM_HOUR(*) FROM Segment "
            "WHERE Park = 'south' GROUP BY Park"
        )
        assert all(row["Park"] == "south" for row in rows)
        first_hour = rows[0]["CUBE_SUM_HOUR(*)"]
        expected = truth[3][:60].sum() + truth[4][:60].sum()
        assert first_hour == pytest.approx(expected, rel=1e-9)


class TestPointQueries:
    def test_point_query(self, db_and_truth):
        db, truth = db_and_truth
        ts = DEFAULT_START_MS + 42 * SI
        rows = db.sql(
            f"SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS = {ts}"
        )
        assert rows == [{"TS": ts, "Value": pytest.approx(truth[1][42])}]

    def test_range_query(self, db_and_truth):
        db, truth = db_and_truth
        start = DEFAULT_START_MS + 10 * SI
        end = DEFAULT_START_MS + 19 * SI
        rows = db.sql(
            f"SELECT Value FROM DataPoint WHERE Tid = 2 AND TS >= {start} "
            f"AND TS <= {end}"
        )
        assert [row["Value"] for row in rows] == pytest.approx(
            list(truth[2][10:20])
        )

    def test_star_selection_includes_dimensions(self, db_and_truth):
        db, _ = db_and_truth
        ts = DEFAULT_START_MS
        rows = db.sql(
            f"SELECT * FROM DataPoint WHERE Tid = 3 AND TS = {ts}"
        )
        assert rows[0]["Park"] == "south"
        assert rows[0]["Tid"] == 3

    def test_value_predicate(self, db_and_truth):
        db, truth = db_and_truth
        threshold = float(np.median(truth[1]))
        rows = db.sql(
            f"SELECT Value FROM DataPoint WHERE Tid = 1 AND "
            f"Value > {threshold}"
        )
        assert len(rows) == int((truth[1] > threshold).sum())

    def test_segment_view_selection(self, db_and_truth):
        db, _ = db_and_truth
        rows = db.sql("SELECT Tid, StartTime, EndTime FROM Segment WHERE Tid = 1")
        assert all(row["Tid"] == 1 for row in rows)
        assert rows[0]["StartTime"] == DEFAULT_START_MS
        assert rows[-1]["EndTime"] == DEFAULT_START_MS + (N - 1) * SI


class TestEngineInternals:
    def test_segment_cache_hits_on_repeat(self, db_and_truth):
        db, _ = db_and_truth
        db.sql("SELECT SUM_S(*) FROM Segment WHERE Tid = 1")
        hits_before, _ = db.engine.cache_stats
        db.sql("SELECT SUM_S(*) FROM Segment WHERE Tid = 1")
        hits_after, _ = db.engine.cache_stats
        assert hits_after > hits_before

    def test_timestamp_string_literals(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE Tid = 1 AND "
            "TS >= '2016-01-04' AND TS <= '2016-01-05'"
        )
        assert rows[0]["COUNT_S(*)"] == N  # everything is on 2016-01-04

    def test_programmatic_aggregate(self, db_and_truth):
        db, truth = db_and_truth
        rows = db.aggregate("SUM_S", tids=[1])
        assert rows[0]["SUM_S(*)"] == pytest.approx(truth[1].sum(), rel=1e-9)

    def test_programmatic_points(self, db_and_truth):
        db, truth = db_and_truth
        points = list(
            db.points(tids=[1], start_time=DEFAULT_START_MS,
                      end_time=DEFAULT_START_MS + 4 * SI)
        )
        assert [p.value for p in points] == pytest.approx(list(truth[1][:5]))
