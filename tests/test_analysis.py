"""Tests for the reprolint invariant linter (:mod:`repro.analysis`).

Each rule gets the four-quadrant treatment — a positive hit, a clean
pass, a suppressed hit, and an unused suppression — on fixture trees
written under ``tmp_path`` (path-scoped rules need files at the right
relative locations, e.g. ``src/repro/models/``). The end-to-end tests
run the real CLI: the actual repository tree must be clean, and each
rule's fixture violation must make ``python -m repro.analysis`` exit
non-zero.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Config, Report, run_analysis
from repro.analysis.rules import (
    ALL_RULE_SPECS,
    RULES,
    BroadExceptRule,
    DeadMetricRule,
    DeterminismTaintRule,
    LockDisciplineRule,
    MetricCatalogRule,
    NoWallClockRule,
    PickleSafetyRule,
    ResourceLifecycleRule,
    ScalarLoopRule,
    WireContractRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A real catalog metric name, so RPR002 clean fixtures stay clean even
#: as the catalog evolves (the test fails loudly if it disappears).
KNOWN_METRIC = "ingest.points_total"


def analyze(
    tmp_path: Path, files: dict[str, str], rule: type | None = None
) -> Report:
    """Write dedented fixture files under tmp_path and lint them."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    config = Config()
    rules = None if rule is None else [rule(config)]
    return run_analysis(tmp_path, ["."], config, rules=rules)


def rule_ids(report: Report) -> list[str]:
    return [finding.rule for finding in report.findings]


class TestEngine:
    def test_clean_report(self, tmp_path):
        report = analyze(tmp_path, {"src/ok.py": "x = 1\n"})
        assert report.clean
        assert report.files_checked == 1
        assert report.to_dict()["counts_by_rule"] == {}

    def test_unused_suppression_is_reported(self, tmp_path):
        report = analyze(
            tmp_path, {"src/ok.py": "x = 1  # reprolint: disable=RPR001\n"}
        )
        assert rule_ids(report) == ["RPR000"]
        assert "unused suppression" in report.findings[0].message

    def test_unparsable_file_is_reported(self, tmp_path):
        report = analyze(tmp_path, {"src/bad.py": "def broken(:\n"})
        assert rule_ids(report) == ["RPR000"]
        assert "does not parse" in report.findings[0].message

    def test_multi_rule_suppression_comment(self, tmp_path):
        source = """
            import time

            def f():
                time.time()  # reprolint: disable=RPR001, RPR002
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        # RPR001 is suppressed; the RPR002 half suppressed nothing.
        assert rule_ids(report) == ["RPR000"]
        assert "RPR002" in report.findings[0].message

    def test_pycache_is_skipped(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/__pycache__/junk.py": "import time\ntime.time()\n",
                "src/ok.py": "x = 1\n",
            },
        )
        assert report.clean
        assert report.files_checked == 1

    def test_json_report_shape(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/models/x.py": "import time\ntime.time()\n"},
            NoWallClockRule,
        )
        data = json.loads(report.to_json())
        assert data["tool"] == "reprolint"
        assert data["counts_by_rule"] == {"RPR001": 1}
        (finding,) = data["findings"]
        assert finding["path"] == "src/repro/models/x.py"
        assert finding["rule"] == "RPR001"
        assert finding["line"] == 2

    def test_rule_registry_is_complete(self):
        ids = [spec.id for spec in ALL_RULE_SPECS]
        assert ids == sorted(ids)
        assert ids[0] == "RPR000"
        assert len(ids) == len(RULES) + 1


class TestRPR001WallClock:
    def test_wall_clock_in_models_is_flagged(self, tmp_path):
        source = """
            import time

            def fit():
                return time.time()
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_datetime_now_via_from_import(self, tmp_path):
        source = """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """
        report = analyze(
            tmp_path, {"src/repro/ingest/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_unseeded_default_rng_is_flagged(self, tmp_path):
        source = """
            import numpy as np

            def jitter():
                return np.random.default_rng()
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_seeded_rng_and_perf_counter_are_clean(self, tmp_path):
        source = """
            import time

            import numpy as np

            def fit():
                rng = np.random.default_rng(42)
                started = time.perf_counter()
                return rng, started
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert report.clean

    def test_wall_clock_outside_scope_is_clean(self, tmp_path):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        report = analyze(
            tmp_path, {"src/repro/server/x.py": source}, NoWallClockRule
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            import time

            def fit():
                return time.time()  # reprolint: disable=RPR001
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert report.clean


class TestRPR002MetricNames:
    def test_undeclared_literal_is_flagged(self, tmp_path):
        source = """
            def instrument(registry):
                return registry.counter("definitely.not.in.catalog_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert rule_ids(report) == ["RPR002"]

    def test_catalog_name_is_clean(self, tmp_path):
        source = f"""
            def instrument(registry):
                return registry.counter("{KNOWN_METRIC}")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_literal_declare_makes_name_known(self, tmp_path):
        source = """
            def setup(registry):
                registry.declare("adhoc.test_total", "counter", "doc")
                return registry.counter("adhoc.test_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_non_literal_name_is_skipped(self, tmp_path):
        source = """
            def instrument(registry, name):
                return registry.counter(f"server.{name}_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            def instrument(registry):
                return registry.counter("nope.nope_total")  # reprolint: disable=RPR002
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean


class TestRPR003LockDiscipline:
    def test_blocking_call_under_lock(self, tmp_path):
        source = """
            import threading
            import time

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def get(self):
                    with self._lock:
                        time.sleep(0.1)
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "time.sleep" in report.findings[0].message

    def test_metric_inc_under_lock(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        self._hits_total.inc()
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]

    def test_inc_outside_lock_is_clean(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        hit = True
                    self._hits_total.inc()
                    return hit
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_open_in_with_under_lock(self, tmp_path):
        source = """
            class Store:
                def dump(self, path):
                    with self._lock:
                        with open(path) as handle:
                            return handle.read()
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert "RPR003" in rule_ids(report)

    def test_string_join_under_lock_is_clean(self, tmp_path):
        source = """
            class Cache:
                def keys(self):
                    with self._lock:
                        return ", ".join(self._entries)
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_self_deadlock_via_nested_with(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        with self._lock:
                            return 1
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "re-acquires" in report.findings[0].message

    def test_self_deadlock_via_method_indirection(self, tmp_path):
        source = """
            class Cache:
                def size(self):
                    with self._lock:
                        return len(self._entries)

                def stats(self):
                    with self._lock:
                        return {"size": self.size()}
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "self.size()" in report.findings[0].message

    def test_nested_def_escapes_lock_region(self, tmp_path):
        source = """
            import time

            class Cache:
                def schedule(self):
                    with self._lock:
                        def later():
                            time.sleep(1.0)
                        return later
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_cross_file_lock_order_cycle(self, tmp_path):
        shared = """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()
        """
        forward = """
            import shared

            def f():
                with shared.lock_a:
                    with shared.lock_b:
                        pass
        """
        backward = """
            import shared

            def g():
                with shared.lock_b:
                    with shared.lock_a:
                        pass
        """
        report = analyze(
            tmp_path,
            {
                "src/shared.py": shared,
                "src/forward.py": forward,
                "src/backward.py": backward,
            },
            LockDisciplineRule,
        )
        assert rule_ids(report) == ["RPR003"]
        assert "cycle" in report.findings[0].message
        assert "shared.lock_a" in report.findings[0].message

    def test_consistent_lock_order_is_clean(self, tmp_path):
        source = """
            import shared

            def f():
                with shared.lock_a:
                    with shared.lock_b:
                        pass

            def g():
                with shared.lock_a:
                    with shared.lock_b:
                        pass
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        self._hits_total.inc()  # reprolint: disable=RPR003
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean


class TestRPR004PickleSafety:
    def test_lock_in_init_of_rpc_type(self, tmp_path):
        source = """
            import threading

            class FaultPlan:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_lambda_field_in_rpc_type(self, tmp_path):
        source = """
            class IngestStats:
                def __init__(self):
                    self.key = lambda row: row[0]
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_threading_annotation_in_rpc_type(self, tmp_path):
        source = """
            from dataclasses import dataclass
            from threading import Lock

            @dataclass
            class PartialResult:
                guard: Lock
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_project_local_condition_class_is_clean(self, tmp_path):
        # The SQL layer's own Condition dataclass must not be confused
        # with threading.Condition (alias-resolved, not name-matched).
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Condition:
                column: str

            @dataclass(frozen=True)
            class Query:
                where: tuple[Condition, ...] = ()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean

    def test_non_rpc_type_with_lock_is_clean(self, tmp_path):
        source = """
            import threading

            class LocalCache:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            import threading

            class FaultPlan:
                def __init__(self):
                    self._lock = threading.Lock()  # reprolint: disable=RPR004
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean


class TestRPR005BroadExcept:
    def test_bare_except_is_flagged(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert rule_ids(report) == ["RPR005"]

    def test_broad_except_is_flagged(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert rule_ids(report) == ["RPR005"]

    def test_specific_except_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_broad_ok_tag_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # broad-ok: errors recorded upstream
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_noqa_tag_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # noqa: BLE001 - reported, not raised
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # reprolint: disable=RPR005
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean


class TestRPR006ScalarLoops:
    def test_scalar_loop_in_extend_is_flagged(self, tmp_path):
        source = """
            class Fitter:
                def _extend(self, block):
                    accepted = 0
                    for row in block.tolist():
                        if not self._try_append(row):
                            break
                        accepted += 1
                    return accepted
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert rule_ids(report) == ["RPR006"]

    def test_vectorized_extend_is_clean(self, tmp_path):
        source = """
            import numpy as np

            class Fitter:
                def _extend(self, block):
                    lowers = block.max(axis=1)
                    np.maximum.accumulate(lowers, out=lowers)
                    return int(len(lowers))
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_loop_outside_kernel_function_is_clean(self, tmp_path):
        source = """
            class Fitter:
                def replay(self, rows):
                    for row in rows:
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_loop_outside_models_path_is_clean(self, tmp_path):
        source = """
            class Buffer:
                def _extend(self, block):
                    for row in block:
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/server/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            class Fitter:
                def _extend(self, block):
                    for row in block.tolist():  # reprolint: disable=RPR006
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean


class TestRPR007DeterminismTaint:
    #: A deterministic-scope kernel calling an out-of-scope helper that
    #: reads the clock — RPR001 is blind to this, RPR007 is not.
    TAINTED = {
        "src/repro/util/clock.py": """
            import time

            def stamp():
                return time.time()
        """,
        "src/repro/models/kernel.py": """
            from repro.util.clock import stamp

            def fit(values):
                return stamp()
        """,
    }

    def test_cross_file_chain_is_flagged(self, tmp_path):
        report = analyze(tmp_path, dict(self.TAINTED), DeterminismTaintRule)
        assert rule_ids(report) == ["RPR007"]
        finding = report.findings[0]
        assert finding.path == "src/repro/models/kernel.py"
        assert "time.time" in finding.message
        assert "path:" in finding.message

    def test_monotonic_clock_is_clean(self, tmp_path):
        files = {
            "src/repro/util/clock.py": """
                import time

                def stamp():
                    return time.monotonic()
            """,
            "src/repro/models/kernel.py": self.TAINTED[
                "src/repro/models/kernel.py"
            ],
        }
        report = analyze(tmp_path, files, DeterminismTaintRule)
        assert report.clean

    def test_direct_in_scope_source_is_rpr001_territory(self, tmp_path):
        files = {
            "src/repro/models/a.py": """
                import time

                def leaky():
                    return time.time()
            """,
            "src/repro/models/b.py": """
                from repro.models.a import leaky

                def kernel():
                    return leaky()
            """,
        }
        report = analyze(tmp_path, files, DeterminismTaintRule)
        assert report.clean  # one defect, one finding — RPR001's

    def test_two_hop_chain_is_flagged(self, tmp_path):
        files = {
            "src/repro/util/clock.py": """
                import time

                def stamp():
                    return time.time()

                def relay():
                    return stamp()
            """,
            "src/repro/models/kernel.py": """
                from repro.util.clock import relay

                def fit(values):
                    return relay()
            """,
        }
        report = analyze(tmp_path, files, DeterminismTaintRule)
        assert rule_ids(report) == ["RPR007"]
        assert "relay" in report.findings[0].message

    def test_suppressed(self, tmp_path):
        files = dict(self.TAINTED)
        files["src/repro/models/kernel.py"] = """
            from repro.util.clock import stamp

            def fit(values):
                return stamp()  # reprolint: disable=RPR007
        """
        report = analyze(tmp_path, files, DeterminismTaintRule)
        assert report.clean


class TestRPR008WireContract:
    SERVER = "src/repro/server/server.py"
    CLIENT = "src/repro/server/client.py"
    DISPATCHER = "src/repro/server/dispatcher.py"
    DOCS = "docs/OPERATIONS.md"

    def test_undocumented_op_is_flagged(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    async def _handle_request(self, request):
                        op = request.get("op")
                        if op == "ping":
                            return {"ok": True}
                        return {"ok": False}
            """,
            self.CLIENT: """
                class ServerClient:
                    def ping(self):
                        return self.request({"op": "ping"})
            """,
            self.DOCS: "Nothing documented here.\n",
        }
        report = analyze(tmp_path, files, WireContractRule)
        assert rule_ids(report) == ["RPR008"]
        assert "not documented" in report.findings[0].message

    def test_client_server_op_mismatch(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    async def _handle_request(self, request):
                        op = request.get("op")
                        if op == "ping":
                            return {"ok": True}
                        return {"ok": False}
            """,
            self.CLIENT: """
                class ServerClient:
                    def zap(self):
                        return self.request({"op": "zap"})
            """,
            self.DOCS: "The ping op is documented.\n",
        }
        report = analyze(tmp_path, files, WireContractRule)
        messages = sorted(f.message for f in report.findings)
        assert len(messages) == 2
        assert any("no handler branch" in m for m in messages)
        assert any("no ServerClient payload" in m for m in messages)

    def test_missing_dispatcher_route(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    def _run(self, sql):
                        return self.dispatcher.execute(sql)
            """,
            self.DISPATCHER: """
                class Dispatcher:
                    def metrics(self):
                        return {}
            """,
        }
        report = analyze(tmp_path, files, WireContractRule)
        assert rule_ids(report) == ["RPR008"]
        assert "defines no execute()" in report.findings[0].message

    def test_validated_field_dropped_is_flagged(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    async def _handle_query(self, request):
                        sql = request.get("sql")
                        if not isinstance(sql, str):
                            return {"ok": False}
                        return {"ok": True}
            """,
        }
        report = analyze(tmp_path, files, WireContractRule)
        assert rule_ids(report) == ["RPR008"]
        assert 'field "sql"' in report.findings[0].message

    def test_threaded_field_is_clean(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    async def _handle_query(self, request):
                        sql = request.get("sql")
                        if not isinstance(sql, str):
                            return {"ok": False}
                        return self.engine.execute(sql)
            """,
        }
        report = analyze(tmp_path, files, WireContractRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        files = {
            self.SERVER: """
                class Server:
                    async def _handle_request(self, request):
                        op = request.get("op")
                        if op == "ping":  # reprolint: disable=RPR008
                            return {"ok": True}
                        return {"ok": False}
            """,
            self.DOCS: "Nothing documented here.\n",
        }
        report = analyze(tmp_path, files, WireContractRule)
        assert report.clean


class TestRPR009ResourceLifecycle:
    def test_unclosed_handle_is_flagged(self, tmp_path):
        source = """
            def leak():
                client = ServerClient()
                client.ping()
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert rule_ids(report) == ["RPR009"]
        assert "never closed" in report.findings[0].message

    def test_conditional_close_is_flagged(self, tmp_path):
        source = """
            def maybe(flag):
                db = ModelarDB()
                if flag:
                    db.close()
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert rule_ids(report) == ["RPR009"]
        assert "conditionally closed" in report.findings[0].message

    def test_with_block_is_clean(self, tmp_path):
        source = """
            def scoped():
                with ModelarDB() as db:
                    return db.size_bytes()
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert report.clean

    def test_close_in_finally_is_clean(self, tmp_path):
        source = """
            def guarded(simulated):
                cluster = ProcessCluster()
                try:
                    cluster.ingest([])
                finally:
                    if not simulated:
                        cluster.close()
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert report.clean

    def test_returned_handle_escapes(self, tmp_path):
        source = """
            def factory():
                db = ModelarDB.open()
                return db
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert report.clean

    def test_handle_passed_to_call_escapes(self, tmp_path):
        source = """
            def wire(registry):
                tier = ShardedCluster()
                return registry.adopt(tier)
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert report.clean

    def test_method_call_on_handle_is_not_an_escape(self, tmp_path):
        source = """
            def leak():
                db = ModelarDB.open()
                rows = db.sql("SELECT * FROM DataPoint")
                return rows
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert rule_ids(report) == ["RPR009"]

    def test_internal_shim_call_is_flagged(self, tmp_path):
        files = {
            "src/store.py": """
                import warnings

                class Storage:
                    def segments(self):
                        warnings.warn(
                            "use scan()", DeprecationWarning, stacklevel=2
                        )
                        return []
            """,
            "src/use.py": """
                def consume(storage):
                    return storage.segments()
            """,
        }
        report = analyze(tmp_path, files, ResourceLifecycleRule)
        assert rule_ids(report) == ["RPR009"]
        assert "Storage.segments" in report.findings[0].message

    def test_suppressed(self, tmp_path):
        source = """
            def leak():
                client = ServerClient()  # reprolint: disable=RPR009
                client.ping()
        """
        report = analyze(tmp_path, {"src/v.py": source}, ResourceLifecycleRule)
        assert report.clean


class TestRPR010DeadMetrics:
    CATALOG = "src/repro/obs/catalog.py"
    ENTRY = 'DEAD = MetricSpec("zz.dead_total", "counter", (), "unused")\n'

    def test_unrecorded_entry_is_flagged(self, tmp_path):
        report = analyze(tmp_path, {self.CATALOG: self.ENTRY}, DeadMetricRule)
        assert rule_ids(report) == ["RPR010"]
        assert "zz.dead_total" in report.findings[0].message
        assert report.findings[0].path == self.CATALOG

    def test_literal_use_is_clean(self, tmp_path):
        files = {
            self.CATALOG: self.ENTRY,
            "src/site.py": (
                "def f(registry):\n"
                '    return registry.counter("zz.dead_total")\n'
            ),
        }
        report = analyze(tmp_path, files, DeadMetricRule)
        assert report.clean

    def test_fstring_template_covers_entry(self, tmp_path):
        files = {
            self.CATALOG: self.ENTRY,
            "src/site.py": (
                "def f(registry, name):\n"
                '    return registry.counter(f"zz.{name}_total")\n'
            ),
        }
        report = analyze(tmp_path, files, DeadMetricRule)
        assert report.clean

    def test_no_catalog_in_tree_is_a_noop(self, tmp_path):
        report = analyze(tmp_path, {"src/ok.py": "x = 1\n"}, DeadMetricRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        catalog = (
            "DEAD = MetricSpec("
            '"zz.dead_total", "counter", (), "unused"'
            ")  # reprolint: disable=RPR010\n"
        )
        report = analyze(tmp_path, {self.CATALOG: catalog}, DeadMetricRule)
        assert report.clean


class TestIncrementalCache:
    FILES = {
        "src/repro/models/v.py": (
            "import time\n\n\ndef f():\n    return time.time()\n"
        ),
        "src/ok.py": "x = 1\n",
    }

    @staticmethod
    def write(tmp_path, files):
        for rel, source in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")

    def test_second_run_reuses_every_file(self, tmp_path):
        self.write(tmp_path, self.FILES)
        config = Config()
        first = run_analysis(tmp_path, ["."], config)
        second = run_analysis(tmp_path, ["."], config)
        assert first.files_reused == 0
        assert second.files_reused == len(self.FILES)
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]
        assert (tmp_path / ".reprolint-cache.json").is_file()

    def test_edited_file_is_reanalyzed(self, tmp_path):
        self.write(tmp_path, self.FILES)
        config = Config()
        run_analysis(tmp_path, ["."], config)
        (tmp_path / "src/ok.py").write_text(
            "import time\ny = time.monotonic()\n", encoding="utf-8"
        )
        report = run_analysis(tmp_path, ["."], config)
        assert report.files_reused == len(self.FILES) - 1

    def test_config_change_invalidates_cache(self, tmp_path):
        self.write(tmp_path, self.FILES)
        run_analysis(tmp_path, ["."], Config())
        report = run_analysis(
            tmp_path, ["."], Config(deterministic_paths=("src",))
        )
        assert report.files_reused == 0

    def test_explicit_rule_subset_skips_the_cache(self, tmp_path):
        self.write(tmp_path, self.FILES)
        config = Config()
        run_analysis(tmp_path, ["."], config)
        report = run_analysis(
            tmp_path, ["."], config, rules=[NoWallClockRule(config)]
        )
        assert report.files_reused == 0

    def test_cached_findings_identical_to_fresh(self, tmp_path):
        self.write(tmp_path, self.FILES)
        config = Config()
        fresh = run_analysis(tmp_path, ["."], config, use_cache=False)
        run_analysis(tmp_path, ["."], config)
        warm = run_analysis(tmp_path, ["."], config)
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in fresh.findings
        ]


class TestDisabledRules:
    def test_disabled_rule_does_not_run(self, tmp_path):
        config = Config(disabled_rules=("RPR001",))
        for rel, source in {
            "src/repro/models/v.py": (
                "import time\n\n\ndef f():\n    return time.time()\n"
            )
        }.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        report = run_analysis(tmp_path, ["."], config)
        assert report.clean

    def test_suppression_of_disabled_rule_is_not_audited(self, tmp_path):
        config = Config(disabled_rules=("RPR001",))
        target = tmp_path / "src/repro/models/v.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "import time\n\n\ndef f():\n"
            "    return time.time()  # reprolint: disable=RPR001\n",
            encoding="utf-8",
        )
        report = run_analysis(tmp_path, ["."], config)
        assert report.clean  # dormant, not stale

    def test_suppression_of_active_rule_is_still_audited(self, tmp_path):
        config = Config(disabled_rules=("RPR001",))
        target = tmp_path / "src/ok.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "x = 1  # reprolint: disable=RPR005\n", encoding="utf-8"
        )
        report = run_analysis(tmp_path, ["."], config)
        assert rule_ids(report) == ["RPR000"]

    def test_from_pyproject_reads_new_keys(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            textwrap.dedent(
                """
                [tool.reprolint]
                paths = ["src"]
                disabled-rules = ["RPR006"]
                wire-server = "src/srv.py"
                wire-client = "src/cli.py"
                wire-dispatcher = "src/disp.py"
                wire-docs = "docs/OPS.md"
                resource-types = ["Widget"]
                """
            ),
            encoding="utf-8",
        )
        config = Config.from_pyproject(tmp_path)
        assert config.disabled_rules == ("RPR006",)
        assert config.wire_server == "src/srv.py"
        assert config.wire_client == "src/cli.py"
        assert config.wire_dispatcher == "src/disp.py"
        assert config.wire_docs == "docs/OPS.md"
        assert config.resource_types == ("Widget",)


class TestSarifOutput:
    def test_sarif_shape(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/models/x.py": "import time\ntime.time()\n"},
            NoWallClockRule,
        )
        sarif = json.loads(report.to_sarif_json())
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert {rule["id"] for rule in driver["rules"]} == {
            spec.id for spec in ALL_RULE_SPECS
        }
        (result,) = run["results"]
        assert result["ruleId"] == "RPR001"
        assert result["level"] == "error"
        (location,) = result["locations"]
        physical = location["physicalLocation"]
        assert (
            physical["artifactLocation"]["uri"]
            == "src/repro/models/x.py"
        )
        assert physical["region"]["startLine"] == 2

    def test_clean_report_has_empty_results(self, tmp_path):
        report = analyze(tmp_path, {"src/ok.py": "x = 1\n"})
        sarif = json.loads(report.to_sarif_json())
        assert sarif["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# End-to-end: the CLI on fixture trees and on the real repository
# ---------------------------------------------------------------------------

#: One violating fixture per rule, used to prove the CLI gate actually
#: blocks: each must make `python -m repro.analysis` exit non-zero.
VIOLATIONS: dict[str, tuple[str, str]] = {
    "RPR001": (
        "src/repro/models/v.py",
        "import time\n\n\ndef f():\n    return time.time()\n",
    ),
    "RPR002": (
        "src/v.py",
        'def f(registry):\n    return registry.counter("no.such_total")\n',
    ),
    "RPR003": (
        "src/v.py",
        "class C:\n    def f(self):\n        with self._lock:\n"
        "            self._hits_total.inc()\n",
    ),
    "RPR004": (
        "src/v.py",
        "import threading\n\n\nclass FaultPlan:\n    def __init__(self):\n"
        "        self._lock = threading.Lock()\n",
    ),
    "RPR005": (
        "src/v.py",
        "def f():\n    try:\n        return 1\n    except Exception:\n"
        "        return 0\n",
    ),
    "RPR006": (
        "src/repro/models/v.py",
        "class C:\n    def _extend(self, block):\n        for row in block:\n"
        "            self._try_append(row)\n",
    ),
    # A kernel reaching the clock through two in-scope hops: RPR001
    # flags the direct read, RPR007 the transitive call chain.
    "RPR007": (
        "src/repro/models/v.py",
        "import time\n\n\ndef helper_a():\n    return time.time()\n\n\n"
        "def helper_b():\n    return helper_a()\n\n\n"
        "def kernel():\n    return helper_b()\n",
    ),
    "RPR008": (
        "src/repro/server/server.py",
        "class Server:\n    async def _handle_query(self, request):\n"
        '        sql = request.get("sql")\n'
        "        if not isinstance(sql, str):\n"
        '            return {"ok": False}\n'
        '        return {"ok": True}\n',
    ),
    "RPR009": (
        "src/v.py",
        "def leak():\n    client = ServerClient()\n    client.ping()\n",
    ),
    "RPR010": (
        "src/repro/obs/catalog.py",
        'DEAD = MetricSpec("zz.dead_total", "counter", (), "unused")\n',
    ),
}


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCLI:
    @pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
    def test_each_rule_fixture_fails_the_gate(self, tmp_path, rule_id):
        rel, source = VIOLATIONS[rule_id]
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        result = run_cli("src", "--root", str(tmp_path), cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert rule_id in result.stdout

    def test_clean_tree_exits_zero_and_writes_report(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n", encoding="utf-8")
        out = tmp_path / "report.json"
        result = run_cli(
            "src",
            "--root",
            str(tmp_path),
            "--format",
            "json",
            "--output",
            str(out),
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data == json.loads(result.stdout)
        assert data["files_checked"] == 1
        assert data["findings"] == []

    def test_sarif_artifact_and_format(self, tmp_path):
        rel, source = VIOLATIONS["RPR001"]
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        sarif_path = tmp_path / "report.sarif"
        result = run_cli(
            "src",
            "--root",
            str(tmp_path),
            "--format",
            "sarif",
            "--sarif",
            str(sarif_path),
            "--no-cache",
            cwd=tmp_path,
        )
        assert result.returncode == 1, result.stdout + result.stderr
        data = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert data == json.loads(result.stdout)
        assert data["version"] == "2.1.0"
        assert data["runs"][0]["results"][0]["ruleId"] == "RPR001"
        assert not (tmp_path / ".reprolint-cache.json").exists()

    def test_missing_path_is_a_usage_error(self, tmp_path):
        result = run_cli(
            "no/such/dir", "--root", str(tmp_path), cwd=tmp_path
        )
        assert result.returncode == 2

    def test_real_tree_is_clean(self):
        result = run_cli(
            "src", "benchmarks", "scripts", "--root", str(REPO_ROOT),
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stdout
