"""Tests for the reprolint invariant linter (:mod:`repro.analysis`).

Each rule gets the four-quadrant treatment — a positive hit, a clean
pass, a suppressed hit, and an unused suppression — on fixture trees
written under ``tmp_path`` (path-scoped rules need files at the right
relative locations, e.g. ``src/repro/models/``). The end-to-end tests
run the real CLI: the actual repository tree must be clean, and each
rule's fixture violation must make ``python -m repro.analysis`` exit
non-zero.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Config, Report, run_analysis
from repro.analysis.rules import (
    ALL_RULE_SPECS,
    RULES,
    BroadExceptRule,
    LockDisciplineRule,
    MetricCatalogRule,
    NoWallClockRule,
    PickleSafetyRule,
    ScalarLoopRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A real catalog metric name, so RPR002 clean fixtures stay clean even
#: as the catalog evolves (the test fails loudly if it disappears).
KNOWN_METRIC = "ingest.points_total"


def analyze(
    tmp_path: Path, files: dict[str, str], rule: type | None = None
) -> Report:
    """Write dedented fixture files under tmp_path and lint them."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    config = Config()
    rules = None if rule is None else [rule(config)]
    return run_analysis(tmp_path, ["."], config, rules=rules)


def rule_ids(report: Report) -> list[str]:
    return [finding.rule for finding in report.findings]


class TestEngine:
    def test_clean_report(self, tmp_path):
        report = analyze(tmp_path, {"src/ok.py": "x = 1\n"})
        assert report.clean
        assert report.files_checked == 1
        assert report.to_dict()["counts_by_rule"] == {}

    def test_unused_suppression_is_reported(self, tmp_path):
        report = analyze(
            tmp_path, {"src/ok.py": "x = 1  # reprolint: disable=RPR001\n"}
        )
        assert rule_ids(report) == ["RPR000"]
        assert "unused suppression" in report.findings[0].message

    def test_unparsable_file_is_reported(self, tmp_path):
        report = analyze(tmp_path, {"src/bad.py": "def broken(:\n"})
        assert rule_ids(report) == ["RPR000"]
        assert "does not parse" in report.findings[0].message

    def test_multi_rule_suppression_comment(self, tmp_path):
        source = """
            import time

            def f():
                time.time()  # reprolint: disable=RPR001, RPR002
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        # RPR001 is suppressed; the RPR002 half suppressed nothing.
        assert rule_ids(report) == ["RPR000"]
        assert "RPR002" in report.findings[0].message

    def test_pycache_is_skipped(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "src/__pycache__/junk.py": "import time\ntime.time()\n",
                "src/ok.py": "x = 1\n",
            },
        )
        assert report.clean
        assert report.files_checked == 1

    def test_json_report_shape(self, tmp_path):
        report = analyze(
            tmp_path,
            {"src/repro/models/x.py": "import time\ntime.time()\n"},
            NoWallClockRule,
        )
        data = json.loads(report.to_json())
        assert data["tool"] == "reprolint"
        assert data["counts_by_rule"] == {"RPR001": 1}
        (finding,) = data["findings"]
        assert finding["path"] == "src/repro/models/x.py"
        assert finding["rule"] == "RPR001"
        assert finding["line"] == 2

    def test_rule_registry_is_complete(self):
        ids = [spec.id for spec in ALL_RULE_SPECS]
        assert ids == sorted(ids)
        assert ids[0] == "RPR000"
        assert len(ids) == len(RULES) + 1


class TestRPR001WallClock:
    def test_wall_clock_in_models_is_flagged(self, tmp_path):
        source = """
            import time

            def fit():
                return time.time()
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_datetime_now_via_from_import(self, tmp_path):
        source = """
            from datetime import datetime

            def stamp():
                return datetime.now()
        """
        report = analyze(
            tmp_path, {"src/repro/ingest/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_unseeded_default_rng_is_flagged(self, tmp_path):
        source = """
            import numpy as np

            def jitter():
                return np.random.default_rng()
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert rule_ids(report) == ["RPR001"]

    def test_seeded_rng_and_perf_counter_are_clean(self, tmp_path):
        source = """
            import time

            import numpy as np

            def fit():
                rng = np.random.default_rng(42)
                started = time.perf_counter()
                return rng, started
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert report.clean

    def test_wall_clock_outside_scope_is_clean(self, tmp_path):
        source = "import time\n\n\ndef now():\n    return time.time()\n"
        report = analyze(
            tmp_path, {"src/repro/server/x.py": source}, NoWallClockRule
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            import time

            def fit():
                return time.time()  # reprolint: disable=RPR001
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, NoWallClockRule
        )
        assert report.clean


class TestRPR002MetricNames:
    def test_undeclared_literal_is_flagged(self, tmp_path):
        source = """
            def instrument(registry):
                return registry.counter("definitely.not.in.catalog_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert rule_ids(report) == ["RPR002"]

    def test_catalog_name_is_clean(self, tmp_path):
        source = f"""
            def instrument(registry):
                return registry.counter("{KNOWN_METRIC}")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_literal_declare_makes_name_known(self, tmp_path):
        source = """
            def setup(registry):
                registry.declare("adhoc.test_total", "counter", "doc")
                return registry.counter("adhoc.test_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_non_literal_name_is_skipped(self, tmp_path):
        source = """
            def instrument(registry, name):
                return registry.counter(f"server.{name}_total")
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            def instrument(registry):
                return registry.counter("nope.nope_total")  # reprolint: disable=RPR002
        """
        report = analyze(tmp_path, {"src/x.py": source}, MetricCatalogRule)
        assert report.clean


class TestRPR003LockDiscipline:
    def test_blocking_call_under_lock(self, tmp_path):
        source = """
            import threading
            import time

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()

                def get(self):
                    with self._lock:
                        time.sleep(0.1)
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "time.sleep" in report.findings[0].message

    def test_metric_inc_under_lock(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        self._hits_total.inc()
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]

    def test_inc_outside_lock_is_clean(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        hit = True
                    self._hits_total.inc()
                    return hit
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_open_in_with_under_lock(self, tmp_path):
        source = """
            class Store:
                def dump(self, path):
                    with self._lock:
                        with open(path) as handle:
                            return handle.read()
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert "RPR003" in rule_ids(report)

    def test_string_join_under_lock_is_clean(self, tmp_path):
        source = """
            class Cache:
                def keys(self):
                    with self._lock:
                        return ", ".join(self._entries)
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_self_deadlock_via_nested_with(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        with self._lock:
                            return 1
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "re-acquires" in report.findings[0].message

    def test_self_deadlock_via_method_indirection(self, tmp_path):
        source = """
            class Cache:
                def size(self):
                    with self._lock:
                        return len(self._entries)

                def stats(self):
                    with self._lock:
                        return {"size": self.size()}
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert rule_ids(report) == ["RPR003"]
        assert "self.size()" in report.findings[0].message

    def test_nested_def_escapes_lock_region(self, tmp_path):
        source = """
            import time

            class Cache:
                def schedule(self):
                    with self._lock:
                        def later():
                            time.sleep(1.0)
                        return later
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_cross_file_lock_order_cycle(self, tmp_path):
        shared = """
            import threading

            lock_a = threading.Lock()
            lock_b = threading.Lock()
        """
        forward = """
            import shared

            def f():
                with shared.lock_a:
                    with shared.lock_b:
                        pass
        """
        backward = """
            import shared

            def g():
                with shared.lock_b:
                    with shared.lock_a:
                        pass
        """
        report = analyze(
            tmp_path,
            {
                "src/shared.py": shared,
                "src/forward.py": forward,
                "src/backward.py": backward,
            },
            LockDisciplineRule,
        )
        assert rule_ids(report) == ["RPR003"]
        assert "cycle" in report.findings[0].message
        assert "shared.lock_a" in report.findings[0].message

    def test_consistent_lock_order_is_clean(self, tmp_path):
        source = """
            import shared

            def f():
                with shared.lock_a:
                    with shared.lock_b:
                        pass

            def g():
                with shared.lock_a:
                    with shared.lock_b:
                        pass
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            class Cache:
                def get(self):
                    with self._lock:
                        self._hits_total.inc()  # reprolint: disable=RPR003
        """
        report = analyze(tmp_path, {"src/x.py": source}, LockDisciplineRule)
        assert report.clean


class TestRPR004PickleSafety:
    def test_lock_in_init_of_rpc_type(self, tmp_path):
        source = """
            import threading

            class FaultPlan:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_lambda_field_in_rpc_type(self, tmp_path):
        source = """
            class IngestStats:
                def __init__(self):
                    self.key = lambda row: row[0]
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_threading_annotation_in_rpc_type(self, tmp_path):
        source = """
            from dataclasses import dataclass
            from threading import Lock

            @dataclass
            class PartialResult:
                guard: Lock
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert rule_ids(report) == ["RPR004"]

    def test_project_local_condition_class_is_clean(self, tmp_path):
        # The SQL layer's own Condition dataclass must not be confused
        # with threading.Condition (alias-resolved, not name-matched).
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Condition:
                column: str

            @dataclass(frozen=True)
            class Query:
                where: tuple[Condition, ...] = ()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean

    def test_non_rpc_type_with_lock_is_clean(self, tmp_path):
        source = """
            import threading

            class LocalCache:
                def __init__(self):
                    self._lock = threading.Lock()
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            import threading

            class FaultPlan:
                def __init__(self):
                    self._lock = threading.Lock()  # reprolint: disable=RPR004
        """
        report = analyze(tmp_path, {"src/x.py": source}, PickleSafetyRule)
        assert report.clean


class TestRPR005BroadExcept:
    def test_bare_except_is_flagged(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert rule_ids(report) == ["RPR005"]

    def test_broad_except_is_flagged(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert rule_ids(report) == ["RPR005"]

    def test_specific_except_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_broad_ok_tag_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # broad-ok: errors recorded upstream
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_noqa_tag_is_clean(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # noqa: BLE001 - reported, not raised
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            def f():
                try:
                    return 1
                except Exception:  # reprolint: disable=RPR005
                    return 0
        """
        report = analyze(tmp_path, {"src/x.py": source}, BroadExceptRule)
        assert report.clean


class TestRPR006ScalarLoops:
    def test_scalar_loop_in_extend_is_flagged(self, tmp_path):
        source = """
            class Fitter:
                def _extend(self, block):
                    accepted = 0
                    for row in block.tolist():
                        if not self._try_append(row):
                            break
                        accepted += 1
                    return accepted
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert rule_ids(report) == ["RPR006"]

    def test_vectorized_extend_is_clean(self, tmp_path):
        source = """
            import numpy as np

            class Fitter:
                def _extend(self, block):
                    lowers = block.max(axis=1)
                    np.maximum.accumulate(lowers, out=lowers)
                    return int(len(lowers))
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_loop_outside_kernel_function_is_clean(self, tmp_path):
        source = """
            class Fitter:
                def replay(self, rows):
                    for row in rows:
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_loop_outside_models_path_is_clean(self, tmp_path):
        source = """
            class Buffer:
                def _extend(self, block):
                    for row in block:
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/server/x.py": source}, ScalarLoopRule
        )
        assert report.clean

    def test_suppressed(self, tmp_path):
        source = """
            class Fitter:
                def _extend(self, block):
                    for row in block.tolist():  # reprolint: disable=RPR006
                        self._try_append(row)
        """
        report = analyze(
            tmp_path, {"src/repro/models/x.py": source}, ScalarLoopRule
        )
        assert report.clean


# ---------------------------------------------------------------------------
# End-to-end: the CLI on fixture trees and on the real repository
# ---------------------------------------------------------------------------

#: One violating fixture per rule, used to prove the CLI gate actually
#: blocks: each must make `python -m repro.analysis` exit non-zero.
VIOLATIONS: dict[str, tuple[str, str]] = {
    "RPR001": (
        "src/repro/models/v.py",
        "import time\n\n\ndef f():\n    return time.time()\n",
    ),
    "RPR002": (
        "src/v.py",
        'def f(registry):\n    return registry.counter("no.such_total")\n',
    ),
    "RPR003": (
        "src/v.py",
        "class C:\n    def f(self):\n        with self._lock:\n"
        "            self._hits_total.inc()\n",
    ),
    "RPR004": (
        "src/v.py",
        "import threading\n\n\nclass FaultPlan:\n    def __init__(self):\n"
        "        self._lock = threading.Lock()\n",
    ),
    "RPR005": (
        "src/v.py",
        "def f():\n    try:\n        return 1\n    except Exception:\n"
        "        return 0\n",
    ),
    "RPR006": (
        "src/repro/models/v.py",
        "class C:\n    def _extend(self, block):\n        for row in block:\n"
        "            self._try_append(row)\n",
    ),
}


def run_cli(*args: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCLI:
    @pytest.mark.parametrize("rule_id", sorted(VIOLATIONS))
    def test_each_rule_fixture_fails_the_gate(self, tmp_path, rule_id):
        rel, source = VIOLATIONS[rule_id]
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        result = run_cli("src", "--root", str(tmp_path), cwd=tmp_path)
        assert result.returncode == 1, result.stdout + result.stderr
        assert rule_id in result.stdout

    def test_clean_tree_exits_zero_and_writes_report(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n", encoding="utf-8")
        out = tmp_path / "report.json"
        result = run_cli(
            "src",
            "--root",
            str(tmp_path),
            "--format",
            "json",
            "--output",
            str(out),
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data == json.loads(result.stdout)
        assert data["files_checked"] == 1
        assert data["findings"] == []

    def test_missing_path_is_a_usage_error(self, tmp_path):
        result = run_cli(
            "no/such/dir", "--root", str(tmp_path), cwd=tmp_path
        )
        assert result.returncode == 2

    def test_real_tree_is_clean(self):
        result = run_cli(
            "src", "benchmarks", "scripts", "--root", str(REPO_ROOT),
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 findings" in result.stdout
