"""Row-vs-columnar equivalence: the read path must be bit-identical.

The columnar read path (``Configuration.columnar_read``) decodes stored
segments into ``(ticks × series)`` blocks and folds aggregates from
vectorized slices; the row path walks points one at a time. Both share
one plan — including the per-subtree pushdown decisions — and promise
the *same bits*: every float in every result row must compare equal at
the ``struct.pack`` level, for SUM/MIN/MAX/AVG/COUNT over PMC-Mean,
Swing and Gorilla segments, with lossy error bounds, scaled correlated
groups, and time ranges that cut segments mid-way.

Uses hypothesis when installed; otherwise the same properties run over
seeded pseudo-random cases so the suite stays meaningful without the
dependency.
"""

import random
import struct

import numpy as np
import pytest

from repro import Configuration, MemoryStorage, ModelarDB, TimeSeries
from repro.core.group import TimeSeriesGroup
from repro.storage import SegmentScan

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

#: The acceptance matrix: scalar baseline, prime-sized, default chunks.
CHUNK_SIZES = (1, 7, 1024)

START = 1_600_000_000_000  # an epoch-ms origin, mid-2020
SI = 100


def bits(value):
    """A comparable bit pattern for any result cell."""
    if isinstance(value, float):
        return struct.pack("<d", value)
    return value


def assert_rows_bit_identical(columnar_rows, row_rows, context=""):
    assert len(columnar_rows) == len(row_rows), context
    for left, right in zip(columnar_rows, row_rows):
        assert list(left.keys()) == list(right.keys()), context
        for key in left:
            assert type(left[key]) is type(right[key]), (context, key)
            assert bits(left[key]) == bits(right[key]), (
                context, key, left[key], right[key],
            )


def make_values(rng: random.Random, n_ticks: int, n_columns: int):
    """Constant holds, linear ramps and rough noise — the regimes that
    select PMC-Mean, Swing and Gorilla respectively."""
    base = rng.uniform(-50, 50)
    matrix = np.empty((n_ticks, n_columns))
    i = 0
    while i < n_ticks:
        run = min(n_ticks - i, rng.randint(1, 14))
        kind = rng.random()
        if kind < 0.4:  # hold
            matrix[i:i + run] = base
        elif kind < 0.8:  # ramp
            slope = rng.uniform(-1, 1)
            matrix[i:i + run] = (
                base + slope * np.arange(run)
            )[:, np.newaxis]
            base = matrix[i + run - 1, 0]
        else:  # noise
            matrix[i:i + run] = base + np.array(
                [
                    [rng.uniform(-5, 5) for _ in range(n_columns)]
                    for _ in range(run)
                ]
            )
        i += run
    return np.float64(np.float32(matrix))


def build_db(seed, bound, chunk_size, columnar, grouped=True):
    """One in-memory instance: a correlated group (distinct scalings)
    plus a singleton series, same data for any (columnar, chunk_size)."""
    rng = random.Random(seed)
    n_ticks = rng.randint(40, 260)
    matrix = make_values(rng, n_ticks, 3)
    timestamps = np.arange(n_ticks, dtype=np.int64) * SI + START
    series = [
        TimeSeries(
            tid, SI, timestamps, matrix[:, tid - 1],
            scaling=(1.0, 2.0, 0.5)[tid - 1],
        )
        for tid in (1, 2, 3)
    ]
    solo = TimeSeries(4, SI, timestamps, matrix[:, 0] * 1.5 + 3.0)
    config = Configuration(
        error_bound=bound,
        model_length_limit=16,
        ingest_chunk_size=chunk_size,
        columnar_read=columnar,
    )
    db = ModelarDB(config, storage=MemoryStorage())
    if grouped:
        db.ingest([TimeSeriesGroup(1, series), TimeSeriesGroup(2, [solo])])
    else:
        db.ingest(series + [solo])
    return db, n_ticks


def query_matrix(n_ticks):
    """Statements covering every aggregate, both views, partial-segment
    time ranges, Value predicates and selections."""
    mid = START + (n_ticks // 2) * SI + SI // 2  # cuts a segment mid-way
    lo = START + 3 * SI + 1  # off-grid: exercises ceiling clipping
    return [
        "SELECT COUNT(*), SUM(*), MIN(*), MAX(*), AVG(*) FROM DataPoint",
        "SELECT Tid, SUM(*), AVG(*) FROM DataPoint GROUP BY Tid",
        f"SELECT COUNT(*), SUM(*), MIN(*), MAX(*), AVG(*) FROM DataPoint "
        f"WHERE TS >= {lo} AND TS <= {mid}",
        f"SELECT Tid, MIN(*), MAX(*) FROM DataPoint "
        f"WHERE Tid IN (1, 3, 4) AND TS >= {mid} GROUP BY Tid",
        "SELECT SUM(*), COUNT(*) FROM DataPoint WHERE Value > 0.0",
        f"SELECT AVG(*) FROM DataPoint WHERE Value <= 10.0 AND TS <= {mid}",
        "SELECT COUNT_S(*), SUM_S(*), MIN_S(*), MAX_S(*), AVG_S(*) "
        "FROM Segment",
        f"SELECT Tid, SUM_S(*) FROM Segment WHERE TS >= {lo} GROUP BY Tid",
        "SELECT Tid, CUBE_SUM_MINUTE(*) FROM Segment GROUP BY Tid",
        "SELECT Tid, CUBE_AVG_MINUTE(*) FROM DataPoint GROUP BY Tid",
        f"SELECT Tid, TS, Value FROM DataPoint "
        f"WHERE Value >= -5.0 AND TS <= {mid}",
        "SELECT * FROM Segment WHERE Tid IN (2, 4)",
    ]


def check_equivalence(seed, bound, chunk_size, grouped=True):
    columnar, n_ticks = build_db(seed, bound, chunk_size, True, grouped)
    row, _ = build_db(seed, bound, chunk_size, False, grouped)
    assert columnar.engine.columnar and not row.engine.columnar
    for sql in query_matrix(n_ticks):
        assert_rows_bit_identical(
            columnar.sql(sql),
            row.sql(sql),
            context=f"seed={seed} bound={bound} chunk={chunk_size}: {sql}",
        )


class TestSeededEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("bound", (0.0, 5.0))
    def test_row_and_columnar_agree_bitwise(self, bound, chunk_size):
        for seed in range(6):
            check_equivalence(seed, bound, chunk_size)

    def test_singleton_groups_agree_bitwise(self):
        # No group compression: every series its own (1-column) segment.
        for seed in range(4):
            check_equivalence(seed, 10.0, 1024, grouped=False)

    def test_mixed_model_types_are_exercised(self):
        db, _ = build_db(seed=1, bound=5.0, chunk_size=1024, columnar=True)
        mids = {segment.mid for segment in db.storage.scan(SegmentScan())}
        assert len(mids) >= 2, "data should select more than one model type"


if HAVE_HYPOTHESIS:

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 31),
        bound=st.sampled_from((0.0, 1.0, 5.0, 10.0)),
        chunk_size=st.sampled_from(CHUNK_SIZES),
    )
    def test_equivalence_hypothesis(seed, bound, chunk_size):
        check_equivalence(seed, bound, chunk_size)


# ----------------------------------------------------------------------
# The decode kernels themselves: values_block == values()[first:last+1]
# ----------------------------------------------------------------------
class TestValuesBlockContract:
    def test_blocks_slice_the_full_reconstruction(self):
        db, _ = build_db(seed=3, bound=5.0, chunk_size=1024, columnar=True)
        cache = db.engine.segment_cache
        checked = 0
        for segment in db.storage.scan(SegmentScan()):
            model = cache.decode(
                segment.mid,
                segment.parameters,
                segment.n_columns,
                segment.length,
            )
            full = model.values()
            for first, last in [
                (0, segment.length - 1),
                (0, 0),
                (segment.length // 2, segment.length - 1),
            ]:
                block = model.values_block(first, last)
                assert block.shape == (last - first + 1, segment.n_columns)
                assert (
                    block.tobytes() == full[first:last + 1].tobytes()
                ), (segment.mid, first, last)
                checked += 1
        assert checked > 0
