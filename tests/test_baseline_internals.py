"""Format-internal behaviour: block pruning, RLE, cache eviction."""

import numpy as np
import pytest

from repro.baselines.cassandra import CassandraLike
from repro.baselines.influx import InfluxLike, _TSM_BLOCK
from repro.baselines.orc import ORCLike, _rle_decode, _rle_encode
from repro.baselines.parquet import ParquetLike
from repro.core import TimeSeries
from repro.models import ModelRegistry
from repro.query.cache import SegmentCache

from .conftest import make_series


def long_series(n=2_500, si=100, tid=1):
    rng = np.random.default_rng(0)
    values = np.float32(10 + np.cumsum(rng.normal(0, 0.1, n)))
    return TimeSeries(tid, si, np.arange(n) * si, values)


class TestInfluxBlocks:
    def test_blocks_are_bounded(self):
        fmt = InfluxLike()
        ts = long_series()
        fmt.ingest([ts])
        blocks = fmt._blocks[1]
        assert len(blocks) == -(-len(ts) // _TSM_BLOCK)
        assert all(len(b.values) <= _TSM_BLOCK for b in blocks)

    def test_range_skips_blocks(self):
        fmt = InfluxLike()
        ts = long_series()
        fmt.ingest([ts])
        # A range inside the second block must not include first-block
        # timestamps.
        start = _TSM_BLOCK * 100 + 100
        timestamps, values = fmt._read_series_range(1, start, start + 500)
        assert timestamps[0] == start
        assert len(values) == 6

    def test_gorilla_sized_blocks_smaller_than_raw(self):
        fmt = InfluxLike()
        fmt.ingest([long_series()])
        raw = 2_500 * 12
        assert fmt.size_bytes() < raw

    def test_gaps_are_not_stored(self):
        fmt = InfluxLike()
        fmt.ingest([make_series(1, [1.0, None, None, 2.0])])
        timestamps, values = fmt._read_series(1)
        assert len(values) == 2


class TestParquetRowGroups:
    def test_row_group_pruning(self):
        fmt = ParquetLike()
        fmt.row_group_size = 500
        fmt.ingest([long_series()])
        groups = fmt._files[1]
        assert len(groups) == 5
        timestamps, _ = fmt._read_series_range(1, 60_000, 60_400)
        assert list(timestamps) == [60_000, 60_100, 60_200, 60_300, 60_400]

    def test_value_column_pruning_matches_full_read(self):
        fmt = ParquetLike()
        fmt.ingest([long_series()])
        assert np.array_equal(fmt._read_values(1), fmt._read_series(1)[1])

    def test_round_trip_exact(self):
        fmt = ParquetLike()
        ts = long_series()
        fmt.ingest([ts])
        timestamps, values = fmt._read_series(1)
        assert np.array_equal(timestamps, ts.timestamps)
        assert np.array_equal(values, ts.values)


class TestORC:
    def test_rle_round_trip_regular(self):
        timestamps = np.arange(0, 100_000, 100, dtype=np.int64)
        assert np.array_equal(_rle_decode(_rle_encode(timestamps)), timestamps)

    def test_rle_round_trip_with_jumps(self):
        timestamps = np.array([0, 100, 200, 700, 800, 1500], dtype=np.int64)
        assert np.array_equal(_rle_decode(_rle_encode(timestamps)), timestamps)

    def test_rle_single_timestamp(self):
        timestamps = np.array([4200], dtype=np.int64)
        assert np.array_equal(_rle_decode(_rle_encode(timestamps)), timestamps)

    def test_rle_is_compact_for_regular_series(self):
        timestamps = np.arange(0, 1_000_000, 100, dtype=np.int64)
        assert len(_rle_encode(timestamps)) == 20  # one run

    def test_stripe_pruning(self):
        fmt = ORCLike()
        fmt.stripe_rows = 500
        ts = long_series()
        fmt.ingest([ts])
        assert len(fmt._files[1]) == 5
        timestamps, values = fmt._read_series_range(1, 125_000, 125_200)
        assert list(timestamps) == [125_000, 125_100, 125_200]

    def test_stripe_value_statistics(self):
        fmt = ORCLike()
        fmt.ingest([long_series()])
        stripe = fmt._files[1][0]
        values = stripe.values()
        assert stripe.min_value == pytest.approx(values.min())
        assert stripe.max_value == pytest.approx(values.max())


class TestCassandra:
    def test_round_trip_across_block_boundary(self):
        fmt = CassandraLike()
        ts = long_series(n=5_000)
        fmt.ingest([ts])
        timestamps, values = fmt._read_series(1)
        assert np.array_equal(values, ts.values)

    def test_rows_carry_dimension_cost(self):
        from repro.core import Dimension, DimensionSet

        bare = CassandraLike()
        bare.ingest([long_series()])

        dimension = Dimension("Location", ["Entity", "Park"])
        dimension.assign(1, ("a-rather-long-entity-name", "some-park"))
        with_dims = CassandraLike()
        with_dims.ingest([long_series()], DimensionSet([dimension]))
        assert with_dims.size_bytes() > bare.size_bytes()


class TestSegmentCacheEviction:
    def test_lru_eviction(self):
        registry = ModelRegistry()
        cache = SegmentCache(registry, capacity=2)
        pmc = registry.by_name("PMC")
        params = [
            pmc.fitter(1, 0.0, 5) for _ in range(3)
        ]
        for value, fitter in zip((1.0, 2.0, 3.0), params):
            fitter.append((value,))
        blobs = [fitter.parameters() for fitter in params]
        for blob in blobs:
            cache.decode(1, blob, 1, 1)
        assert cache.misses == 3
        # The first entry was evicted; re-decoding misses again.
        cache.decode(1, blobs[0], 1, 1)
        assert cache.misses == 4
        # The most recent two hit.
        cache.decode(1, blobs[2], 1, 1)
        assert cache.hits == 1

    def test_clear(self):
        registry = ModelRegistry()
        cache = SegmentCache(registry, capacity=4)
        fitter = registry.by_name("PMC").fitter(1, 0.0, 5)
        fitter.append((1.0,))
        blob = fitter.parameters()
        cache.decode(1, blob, 1, 1)
        cache.clear()
        cache.decode(1, blob, 1, 1)
        assert cache.misses == 2
