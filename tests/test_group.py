"""Time series groups (Definition 8)."""

import pytest

from repro.core import TimeSeriesGroup, singleton_groups
from repro.core.errors import GroupError

from .conftest import make_series


class TestValidation:
    def test_same_si_required(self):
        a = make_series(1, [1.0], si=100)
        b = make_series(2, [1.0], si=200)
        with pytest.raises(GroupError):
            TimeSeriesGroup(1, [a, b])

    def test_alignment_required(self):
        # t1 mod SI must agree (Definition 8).
        a = make_series(1, [1.0, 2.0], si=100, start=0)
        b = make_series(2, [1.0, 2.0], si=100, start=50)
        with pytest.raises(GroupError):
            TimeSeriesGroup(1, [a, b])

    def test_shifted_but_aligned_allowed(self):
        a = make_series(1, [1.0, 2.0], si=100, start=0)
        b = make_series(2, [1.0, 2.0], si=100, start=300)
        group = TimeSeriesGroup(1, [a, b])
        assert group.tids == (1, 2)

    def test_empty_group_rejected(self):
        with pytest.raises(GroupError):
            TimeSeriesGroup(1, [])

    def test_duplicate_tids_rejected(self):
        a = make_series(1, [1.0])
        b = make_series(1, [2.0])
        with pytest.raises(GroupError):
            TimeSeriesGroup(1, [a, b])


class TestAccess:
    def test_members_sorted_by_tid(self):
        series = [make_series(tid, [1.0]) for tid in (3, 1, 2)]
        group = TimeSeriesGroup(1, series)
        assert group.tids == (1, 2, 3)

    def test_column_of(self):
        series = [make_series(tid, [1.0]) for tid in (5, 2, 9)]
        group = TimeSeriesGroup(1, series)
        assert group.column_of(2) == 0
        assert group.column_of(5) == 1
        assert group.column_of(9) == 2

    def test_column_of_unknown_rejected(self):
        group = TimeSeriesGroup(1, [make_series(1, [1.0])])
        with pytest.raises(GroupError):
            group.column_of(99)

    def test_get_and_contains(self):
        group = TimeSeriesGroup(1, [make_series(4, [1.0])])
        assert group.get(4).tid == 4
        assert 4 in group
        assert 5 not in group
        with pytest.raises(GroupError):
            group.get(5)

    def test_scalings(self):
        a = make_series(1, [1.0], scaling=2.0)
        b = make_series(2, [1.0], scaling=4.75)
        group = TimeSeriesGroup(1, [a, b])
        assert group.scalings() == {1: 2.0, 2: 4.75}

    def test_singleton_groups(self):
        series = [make_series(tid, [1.0]) for tid in (1, 2, 3)]
        groups = singleton_groups(series)
        assert [g.gid for g in groups] == [1, 2, 3]
        assert all(len(g) == 1 for g in groups)

    def test_singleton_groups_custom_first_gid(self):
        groups = singleton_groups([make_series(1, [1.0])], first_gid=7)
        assert groups[0].gid == 7
