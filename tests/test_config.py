"""Configuration validation and the Table 1 defaults."""

import pytest

from repro.core import Configuration
from repro.core.config import (
    DEFAULT_BULK_WRITE_SIZE,
    DEFAULT_DYNAMIC_SPLIT_FRACTION,
    DEFAULT_MODEL_LENGTH_LIMIT,
    DEFAULT_MODELS,
)
from repro.core.errors import ConfigurationError


class TestDefaults:
    def test_table1_model_length_limit(self):
        assert DEFAULT_MODEL_LENGTH_LIMIT == 50

    def test_table1_dynamic_split_fraction(self):
        assert DEFAULT_DYNAMIC_SPLIT_FRACTION == 10

    def test_table1_bulk_write_size(self):
        assert DEFAULT_BULK_WRITE_SIZE == 50_000

    def test_default_models_are_the_three_core_models(self):
        assert DEFAULT_MODELS == ("PMC", "Swing", "Gorilla")

    def test_default_error_bound_is_lossless(self):
        assert Configuration().error_bound == 0.0

    def test_defaults_applied(self):
        config = Configuration()
        assert config.model_length_limit == DEFAULT_MODEL_LENGTH_LIMIT
        assert config.dynamic_split_fraction == DEFAULT_DYNAMIC_SPLIT_FRACTION
        assert config.bulk_write_size == DEFAULT_BULK_WRITE_SIZE


class TestValidation:
    def test_negative_error_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(error_bound=-1.0)

    def test_zero_length_limit_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(model_length_limit=0)

    def test_negative_split_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(dynamic_split_fraction=-1)

    def test_zero_bulk_write_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(bulk_write_size=0)

    def test_empty_model_list_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration(models=())

    def test_zero_split_fraction_disables_splitting(self):
        assert not Configuration(dynamic_split_fraction=0).splitting_enabled
        assert Configuration(dynamic_split_fraction=10).splitting_enabled

    def test_evaluated_error_bounds_accepted(self):
        # The evaluation uses 0, 1, 5 and 10 percent.
        for bound in (0.0, 1.0, 5.0, 10.0):
            assert Configuration(error_bound=bound).error_bound == bound
