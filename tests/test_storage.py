"""Segment stores: serialization, predicate push-down, persistence."""

import pytest

from repro.core import SegmentGroup
from repro.core.errors import StorageError
from repro.storage import (
    FileStorage,
    MemoryStorage,
    SegmentScan,
    TimeSeriesRecord,
    decode_segment,
    encode_segment,
    encoded_size,
)
from repro.storage.serialization import HEADER_BYTES


def make_segment(gid=1, start=0, end=400, mid=1, gaps=(), params=b"\x00" * 4):
    return SegmentGroup(
        gid=gid,
        start_time=start,
        end_time=end,
        sampling_interval=100,
        mid=mid,
        parameters=params,
        gaps=frozenset(gaps),
        group_tids=(1, 2, 3),
    )


def records(gid=1, tids=(1, 2, 3), si=100):
    return [
        TimeSeriesRecord(tid=tid, sampling_interval=si, gid=gid)
        for tid in tids
    ]


class TestSerialization:
    def test_header_is_24_bytes(self):
        # Matches the paper's 24 + sizeof(Model) accounting.
        assert HEADER_BYTES == 24

    def test_round_trip(self):
        segment = make_segment(gaps={2}, params=b"\xaa\xbb")
        data = encode_segment(segment)
        assert len(data) == encoded_size(segment)
        decoded, offset = decode_segment(data, 0, 100, (1, 2, 3))
        assert offset == len(data)
        assert decoded == segment

    def test_start_time_recomputed_from_size(self):
        # StartTime = EndTime - (Size - 1) * SI (Section 3.3).
        segment = make_segment(start=1000, end=1400)
        decoded, _ = decode_segment(
            encode_segment(segment), 0, 100, (1, 2, 3)
        )
        assert decoded.start_time == 1000
        assert decoded.length == 5

    def test_truncated_header_rejected(self):
        with pytest.raises(StorageError):
            decode_segment(b"\x00" * 10, 0, 100, (1,))

    def test_truncated_parameters_rejected(self):
        data = encode_segment(make_segment(params=b"\x01\x02\x03\x04"))
        with pytest.raises(StorageError):
            decode_segment(data[:-2], 0, 100, (1, 2, 3))

    def test_oversized_group_rejected(self):
        segment = SegmentGroup(
            gid=1, start_time=0, end_time=0, sampling_interval=100,
            mid=1, parameters=b"", group_tids=tuple(range(1, 40)),
        )
        with pytest.raises(StorageError):
            encode_segment(segment)


class TestStores:
    @pytest.fixture(params=["memory", "file"])
    def store(self, request, tmp_path):
        if request.param == "memory":
            return MemoryStorage()
        return FileStorage(tmp_path / "store")

    def test_metadata_round_trip(self, store):
        store.insert_time_series(records())
        store.insert_model_table({1: "PMC", 2: "Swing"})
        assert [r.tid for r in store.time_series()] == [1, 2, 3]
        assert store.model_table() == {1: "PMC", 2: "Swing"}

    def test_segment_round_trip(self, store):
        store.insert_time_series(records())
        segment = make_segment(gaps={3})
        store.insert_segments([segment])
        (loaded,) = list(store.scan(SegmentScan()))
        assert loaded == segment
        assert store.segment_count() == 1

    def test_gid_predicate_pushdown(self, store):
        store.insert_time_series(records(gid=1) + [
            TimeSeriesRecord(tid=4, sampling_interval=100, gid=2)
        ])
        store.insert_segments([
            make_segment(gid=1),
            SegmentGroup(
                gid=2, start_time=0, end_time=100, sampling_interval=100,
                mid=1, parameters=b"\x00" * 4, group_tids=(4,),
            ),
        ])
        assert all(s.gid == 1 for s in store.scan(SegmentScan(gids=(1,))))
        assert all(s.gid == 2 for s in store.scan(SegmentScan(gids=(2,))))
        assert len(list(store.scan(SegmentScan(gids=(1, 2))))) == 2
        assert list(store.scan(SegmentScan(gids=(99,)))) == []

    def test_time_predicate_pushdown(self, store):
        store.insert_time_series(records())
        store.insert_segments([
            make_segment(start=0, end=400),
            make_segment(start=500, end=900),
        ])
        assert len(list(store.scan(SegmentScan(start_time=450)))) == 1
        assert len(list(store.scan(SegmentScan(end_time=450)))) == 1
        assert len(list(store.scan(SegmentScan(start_time=100, end_time=600)))) == 2
        assert list(store.scan(SegmentScan(start_time=1000))) == []

    def test_size_accounting(self, store):
        store.insert_time_series(records())
        segment = make_segment(params=b"\x01" * 10)
        store.insert_segments([segment])
        assert store.size_bytes() == HEADER_BYTES + 10

    def test_group_metadata(self, store):
        store.insert_time_series(records())
        assert store.group_metadata() == {1: ((1, 2, 3), 100)}

    def test_mixed_si_in_group_rejected(self, store):
        # The file store validates on insert, the memory store on the
        # first metadata derivation — both surface a StorageError.
        with pytest.raises(StorageError):
            store.insert_time_series([
                TimeSeriesRecord(tid=1, sampling_interval=100, gid=1),
                TimeSeriesRecord(tid=2, sampling_interval=200, gid=1),
            ])
            store.group_metadata()


class TestFileStorePersistence:
    def test_reopen_restores_everything(self, tmp_path):
        path = tmp_path / "db"
        store = FileStorage(path)
        store.insert_time_series(records())
        store.insert_model_table({1: "PMC"})
        store.insert_segments([make_segment(), make_segment(start=500, end=800)])

        reopened = FileStorage(path)
        assert reopened.segment_count() == 2
        assert len(list(reopened.scan(SegmentScan()))) == 2
        assert reopened.model_table() == {1: "PMC"}
        assert [r.tid for r in reopened.time_series()] == [1, 2, 3]

    def test_unknown_group_rejected(self, tmp_path):
        store = FileStorage(tmp_path / "db")
        with pytest.raises(StorageError):
            store.insert_segments([make_segment()])

    def test_corrupt_metadata_raises(self, tmp_path):
        path = tmp_path / "db"
        FileStorage(path)
        (path / "metadata.json").write_text("{not json")
        with pytest.raises(StorageError):
            FileStorage(path)

    def test_size_matches_files_on_disk(self, tmp_path):
        path = tmp_path / "db"
        store = FileStorage(path)
        store.insert_time_series(records())
        store.insert_segments([make_segment(params=b"\x07" * 6)])
        on_disk = sum(
            f.stat().st_size for f in path.glob("segments_gid_*.bin")
        )
        assert store.size_bytes() == on_disk == HEADER_BYTES + 6


class TestLifecycle:
    def test_context_manager_closes_on_exit(self, tmp_path):
        with FileStorage(tmp_path / "db") as store:
            store.insert_time_series(records())
            store.insert_segments([make_segment()])
            assert not store.closed
        assert store.closed
        with pytest.raises(StorageError):
            store.insert_segments([make_segment(start=500, end=800)])

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            with FileStorage(tmp_path / "db") as store:
                raise RuntimeError("boom")
        assert store.closed

    def test_close_is_idempotent(self, tmp_path):
        store = FileStorage(tmp_path / "db")
        store.close()
        store.close()
        assert store.closed

    def test_close_flushes_pending_state(self, tmp_path):
        path = tmp_path / "db"
        with FileStorage(path) as store:
            store.insert_time_series(records())
            store.insert_segments([make_segment()])
        reopened = FileStorage(path)
        assert reopened.segment_count() == 1
        assert [r.tid for r in reopened.time_series()] == [1, 2, 3]

    def test_memory_storage_supports_the_protocol_too(self):
        with MemoryStorage() as store:
            store.insert_time_series(records())
            store.insert_segments([make_segment()])
            assert store.segment_count() == 1
