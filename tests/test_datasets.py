"""Synthetic EP/EH data sets and CSV round-trips."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.datasets import (
    EH_LOWEST_DISTANCE,
    generate_eh,
    generate_ep,
    read_dimensions_csv,
    read_series_csv,
    turbine_temperatures,
    write_dataset,
    write_series_csv,
)
from repro.datasets.ep import EP_CORRELATION, EP_SAMPLING_INTERVAL
from repro.partitioner import group_from_config


class TestEP:
    def test_determinism(self):
        a = generate_ep(n_entities=2, measures_per_entity=2, n_points=100, seed=3)
        b = generate_ep(n_entities=2, measures_per_entity=2, n_points=100, seed=3)
        for sa, sb in zip(a.series, b.series):
            assert np.array_equal(sa.values, sb.values, equal_nan=True)

    def test_shape(self):
        ep = generate_ep(n_entities=3, measures_per_entity=4, n_points=50)
        # 4 production + 1 temperature per entity.
        assert len(ep.series) == 15
        assert len(ep.production_tids) == 12
        assert all(ts.sampling_interval == EP_SAMPLING_INTERVAL for ts in ep.series)

    def test_dimensions_assigned(self):
        ep = generate_ep(n_entities=2, measures_per_entity=2, n_points=50)
        production = ep.dimensions["Production"]
        measure = ep.dimensions["Measure"]
        for ts in ep.series:
            assert production.member(ts.tid, "Entity")
            assert measure.member(ts.tid, "Category") in (
                "ProductionMWh",
                "Temperature",
            )

    def test_paper_correlation_clause_groups_by_entity(self):
        ep = generate_ep(n_entities=3, measures_per_entity=3, n_points=50)
        groups = group_from_config(ep.series, EP_CORRELATION, ep.dimensions)
        sizes = sorted(len(group) for group in groups)
        # Three production groups of 3 plus three temperature singletons.
        assert sizes == [1, 1, 1, 3, 3, 3]

    def test_gaps_injected(self):
        ep = generate_ep(
            n_entities=2, measures_per_entity=2, n_points=2000,
            gap_probability=0.01, seed=1,
        )
        assert any(ts.gap_count() > 0 for ts in ep.series)

    def test_values_are_float32_representable(self):
        ep = generate_ep(n_entities=1, measures_per_entity=1, n_points=100)
        for ts in ep.series:
            values = ts.values[~np.isnan(ts.values)]
            assert np.array_equal(values, np.float32(values).astype(np.float64))

    def test_production_measures_strongly_correlated(self):
        ep = generate_ep(
            n_entities=1, measures_per_entity=2, n_points=500,
            include_temperature=False, gap_probability=0.0,
        )
        a, b = (ts.values for ts in ep.series)
        correlation = np.corrcoef(a, b)[0, 1]
        assert correlation > 0.99

    def test_turbine_temperatures(self):
        series = turbine_temperatures(n_points=200)
        assert len(series) == 3
        values = np.array([ts.values for ts in series])
        assert np.corrcoef(values[0], values[1])[0, 1] > 0.95


class TestEH:
    def test_shape(self):
        eh = generate_eh(
            n_parks=2, entities_per_park=3,
            measures=("ActivePower",), n_points=100,
        )
        assert len(eh.series) == 6
        assert all(ts.sampling_interval == 100 for ts in eh.series)

    def test_lowest_distance_rule_of_thumb(self):
        # (1 / 3 levels) / 2 dimensions — the paper's 0.16666667.
        assert EH_LOWEST_DISTANCE == pytest.approx(0.16666667, abs=1e-7)

    def test_distance_grouping_by_park_and_measure(self):
        eh = generate_eh(
            n_parks=2, entities_per_park=3,
            measures=("ActivePower", "WindSpeed"), n_points=50,
        )
        groups = group_from_config(
            eh.series, eh.correlation(), eh.dimensions
        )
        # One group per (park, measure): 4 groups of 3 series.
        assert sorted(len(g) for g in groups) == [3, 3, 3, 3]

    def test_weak_correlation(self):
        eh = generate_eh(
            n_parks=1, entities_per_park=2, measures=("ActivePower",),
            n_points=2000, gap_probability=0.0,
        )
        a, b = (ts.values for ts in eh.series)
        correlation = abs(np.corrcoef(a, b)[0, 1])
        # Correlated, but far from the EP regime.
        assert correlation < 0.95

    def test_determinism(self):
        a = generate_eh(n_points=100, seed=9)
        b = generate_eh(n_points=100, seed=9)
        for sa, sb in zip(a.series, b.series):
            assert np.array_equal(sa.values, sb.values, equal_nan=True)


class TestIO:
    def test_series_round_trip(self, tmp_path):
        ep = generate_ep(
            n_entities=1, measures_per_entity=1, n_points=300,
            gap_probability=0.01, seed=2,
        )
        original = ep.series[0]
        path = write_series_csv(original, tmp_path)
        assert path.suffix == ".gz"
        loaded = read_series_csv(path, original.tid, original.sampling_interval)
        assert np.array_equal(
            loaded.values, original.values, equal_nan=True
        )
        assert loaded.gap_count() == original.gap_count()

    def test_uncompressed_round_trip(self, tmp_path):
        ep = generate_ep(n_entities=1, measures_per_entity=1, n_points=50)
        path = write_series_csv(ep.series[0], tmp_path, compress=False)
        assert path.suffix == ".csv"
        loaded = read_series_csv(path, 1, ep.sampling_interval)
        assert len(loaded) == 50

    def test_dimensions_round_trip(self, tmp_path):
        ep = generate_ep(n_entities=2, measures_per_entity=1, n_points=10)
        write_dataset(ep.series, ep.dimensions, tmp_path)
        loaded = read_dimensions_csv(
            tmp_path / "dimensions.csv",
            {
                "Production": ("Entity", "Type"),
                "Measure": ("Concrete", "Category"),
            },
        )
        for ts in ep.series:
            assert loaded.row(ts.tid) == ep.dimensions.row(ts.tid)

    def test_write_dataset_creates_all_files(self, tmp_path):
        ep = generate_ep(n_entities=1, measures_per_entity=2, n_points=10)
        paths = write_dataset(ep.series, ep.dimensions, tmp_path / "out")
        assert len(paths) == len(ep.series)
        assert (tmp_path / "out" / "dimensions.csv").exists()
