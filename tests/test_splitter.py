"""Dynamic splitting and joining (Section 4.2, Algorithms 3-4)."""

import numpy as np
import pytest

from repro.core import Configuration, TimeSeriesGroup
from repro.ingest import GroupIngestor, group_ticks, within_double_bound
from repro.models import ModelRegistry

from .conftest import make_series


def run_group(series, error_bound=1.0, split_fraction=10):
    group = TimeSeriesGroup(1, series)
    config = Configuration(
        error_bound=error_bound, dynamic_split_fraction=split_fraction
    )
    out = []
    ingestor = GroupIngestor(group, config, ModelRegistry(), out.append)
    partitions = set()
    for timestamp, values in group_ticks(group):
        ingestor.tick(timestamp, values)
        partitions.add(tuple(sorted(ingestor.subgroup_tids)))
    ingestor.finish()
    return ingestor, out, partitions


def diverging_series(n=900, diverge=(300, 600), seed=7):
    rng = np.random.default_rng(seed)
    a = np.full(n, 100.0)
    b = np.full(n, 100.0)
    b[diverge[0]:diverge[1]] = 150 + rng.normal(0, 5, diverge[1] - diverge[0])
    return [
        make_series(1, [float(v) for v in np.float32(a)]),
        make_series(2, [float(v) for v in np.float32(b)]),
    ]


class TestWithinDoubleBound:
    def test_equal_values(self):
        assert within_double_bound(100.0, 100.0, 0.0)

    def test_overlapping_intervals(self):
        # 100±1 and 101.5±1.015 overlap.
        assert within_double_bound(100.0, 101.5, 1.0)

    def test_disjoint_intervals(self):
        assert not within_double_bound(100.0, 103.0, 1.0)

    def test_zero_bound_requires_equality(self):
        assert not within_double_bound(100.0, 100.0001, 0.0)

    def test_negative_values(self):
        assert within_double_bound(-100.0, -101.0, 1.0)
        assert not within_double_bound(-100.0, 100.0, 1.0)


class TestSplitJoin:
    def test_divergence_triggers_split_and_rejoin(self):
        ingestor, out, partitions = run_group(diverging_series())
        assert ingestor.stats.splits >= 1
        assert ingestor.stats.joins >= 1
        assert ((1,), (2,)) in partitions
        assert ingestor.subgroup_tids == [(1, 2)]

    def test_split_improves_compression(self):
        series = diverging_series()
        _, out_split, _ = run_group(series, split_fraction=10)
        _, out_nosplit, _ = run_group(series, split_fraction=0)
        split_bytes = sum(s.storage_bytes() for s in out_split)
        nosplit_bytes = sum(s.storage_bytes() for s in out_nosplit)
        assert split_bytes < nosplit_bytes

    def test_splitting_disabled_by_fraction_zero(self):
        ingestor, _, partitions = run_group(
            diverging_series(), split_fraction=0
        )
        assert ingestor.stats.splits == 0
        assert partitions == {((1, 2),)}

    def test_no_split_on_correlated_data(self):
        rng = np.random.default_rng(0)
        base = 100 + np.cumsum(rng.normal(0, 0.2, 500))
        series = [
            make_series(
                tid, [float(v) for v in np.float32(base + rng.normal(0, 0.05, 500))]
            )
            for tid in (1, 2)
        ]
        ingestor, _, _ = run_group(series, error_bound=5.0)
        assert ingestor.stats.splits == 0

    def test_no_data_points_lost_across_split(self):
        series = diverging_series()
        _, out, _ = run_group(series)
        # Reconstruct coverage per tid from segments.
        covered = {1: set(), 2: set()}
        for segment in out:
            for tid in segment.member_tids:
                covered[tid].update(segment.timestamps())
        for ts in series:
            expected = {p.timestamp for p in ts if p.value is not None}
            assert covered[ts.tid] == expected

    def test_segments_remain_within_error_bound_across_split(self):
        series = diverging_series()
        group = TimeSeriesGroup(1, series)
        config = Configuration(error_bound=1.0, dynamic_split_fraction=10)
        registry = ModelRegistry()
        out = []
        ingestor = GroupIngestor(group, config, registry, out.append)
        for timestamp, values in group_ticks(group):
            ingestor.tick(timestamp, values)
        ingestor.finish()
        by_tid = {ts.tid: ts for ts in series}
        for segment in out:
            model = registry.decode(
                segment.mid, segment.parameters,
                segment.n_columns, segment.length,
            )
            values = model.values()
            for column, tid in enumerate(segment.member_tids):
                for index, timestamp in enumerate(segment.timestamps()):
                    original = by_tid[tid].value_at(timestamp)
                    error = abs(values[index, column] - original)
                    assert error <= 0.01 * abs(original) + 1e-6

    def test_divergence_splits_into_singletons(self):
        n = 400
        rng = np.random.default_rng(1)
        a = [float(v) for v in np.float32(np.full(n, 100.0))]
        b = [float(v) for v in np.float32(150 + rng.normal(0, 5, n))]
        b[:150] = a[:150]  # correlated at first, then diverges
        series = [make_series(1, a), make_series(2, b)]
        ingestor, _, partitions = run_group(series, split_fraction=3)
        # At some point the group was split into singletons.
        assert ((1,), (2,)) in partitions

    def test_permanent_divergence_never_rejoins(self):
        # Join attempts keep failing (the threshold doubles after each,
        # Algorithm 4) and the final partition stays split.
        n = 600
        rng = np.random.default_rng(2)
        a = np.full(n, 100.0)
        b = np.concatenate(
            [np.full(100, 100.0), 200 + rng.normal(0, 8, n - 100)]
        )
        series = [
            make_series(1, [float(v) for v in np.float32(a)]),
            make_series(2, [float(v) for v in np.float32(b)]),
        ]
        ingestor, _, _ = run_group(series, split_fraction=3)
        assert ingestor.stats.splits >= 1
        assert ingestor.stats.joins == 0
        assert sorted(ingestor.subgroup_tids) == [(1,), (2,)]

    def test_algorithm3_groups_gap_series_together(self, config):
        # Unit-level check of the buffered-point partitioning: series
        # without buffered values (currently in a gap) form one group.
        from repro.core import Configuration, TimeSeriesGroup
        from repro.ingest.splitter import GroupIngestor
        from repro.models import ModelRegistry

        series = [make_series(tid, [1.0, 2.0]) for tid in (1, 2, 3, 4)]
        group = TimeSeriesGroup(1, series)
        ingestor = GroupIngestor(
            group, Configuration(error_bound=1.0), ModelRegistry(),
            lambda s: None,
        )
        window = [
            (0, {1: 100.0, 2: 100.5, 3: 200.0, 4: None}),
            (100, {1: 101.0, 2: 101.2, 3: 210.0, 4: None}),
        ]
        partitions = ingestor._partition_by_double_bound(
            (1, 2, 3, 4), window
        )
        assert partitions == [(1, 2), (3,), (4,)]
