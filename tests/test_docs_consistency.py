"""The CI docs checker (tier 1): docs match the code, and the checker
actually catches drift.

``scripts/check_docs.py`` is the lint-job gate asserting that
``docs/METRICS.md`` equals the metric catalog, that every command
line in ``docs/OPERATIONS.md`` parses against the real argparse
parsers, and that ``docs/QUERYING.md`` quotes the parser's grammar
verbatim with examples that parse and cover every keyword, operator,
aggregate and rollup level. The positive tests here keep the repo
green; the negative
tests prove the gate fails on a rename — a checker that never fails is
just documentation about documentation.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    """The scripts/check_docs.py module, imported from its file path."""
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["check_docs"] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop("check_docs", None)


class TestDocsAreConsistent:
    def test_metrics_table_matches_catalog(self, checker):
        assert checker.check_metrics() == []

    def test_operations_commands_parse(self, checker):
        assert checker.check_operations() == []

    def test_reprolint_rule_table_matches_registry(self, checker):
        assert checker.check_development() == []

    def test_querying_reference_matches_parser(self, checker):
        assert checker.check_querying() == []

    def test_main_exits_zero(self, checker, capsys):
        assert checker.main() == 0
        assert "match the code" in capsys.readouterr().out


class TestCheckerCatchesDrift:
    def test_renamed_metric_is_reported_both_ways(self, checker, monkeypatch):
        """Simulate a code-side rename: the old documented name becomes
        undeclared AND the new declared name becomes undocumented."""
        catalog = dict(checker.CATALOG)
        spec = catalog.pop("query.statements_total")
        renamed = type(spec)(
            "query.stmts_total", spec.kind, spec.labels, spec.description
        )
        catalog[renamed.name] = renamed
        monkeypatch.setattr(checker, "CATALOG", catalog)
        problems = checker.check_metrics()
        assert any("query.stmts_total" in p and "missing" in p
                   for p in problems)
        assert any("query.statements_total" in p and "not declared" in p
                   for p in problems)

    def test_kind_change_is_reported(self, checker, monkeypatch):
        catalog = dict(checker.CATALOG)
        spec = catalog["query.execute_seconds"]
        catalog["query.execute_seconds"] = type(spec)(
            spec.name, "counter", spec.labels, spec.description
        )
        monkeypatch.setattr(checker, "CATALOG", catalog)
        problems = checker.check_metrics()
        assert any("query.execute_seconds" in p and "documented as" in p
                   for p in problems)

    def test_removed_subcommand_doc_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        """Strip every `metrics` command line from a copy of
        OPERATIONS.md: the registered-but-undocumented check fires."""
        text = checker.OPERATIONS_DOC.read_text()
        kept = "\n".join(
            line for line in text.splitlines()
            if not ("python -m repro" in line and " metrics" in line)
        )
        doc = tmp_path / "OPERATIONS.md"
        doc.write_text(kept)
        monkeypatch.setattr(checker, "OPERATIONS_DOC", doc)
        problems = checker.check_operations()
        assert any("'metrics'" in p and "never shown" in p for p in problems)

    def test_unparseable_flag_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        doc = tmp_path / "OPERATIONS.md"
        doc.write_text(
            "```bash\npython -m repro serve /db --no-such-flag 3\n```\n"
        )
        monkeypatch.setattr(checker, "OPERATIONS_DOC", doc)
        problems = checker.check_operations()
        assert any("does not parse" in p for p in problems)

    def test_renamed_rule_is_reported_both_ways(
        self, checker, monkeypatch, tmp_path
    ):
        """Rename a rule in a copy of the doc table: the registered id
        keeps matching, but the name mismatch is reported."""
        text = checker.DEVELOPMENT_DOC.read_text()
        doc = tmp_path / "DEVELOPMENT.md"
        doc.write_text(text.replace("`lock-discipline`", "`lock-rules`"))
        monkeypatch.setattr(checker, "DEVELOPMENT_DOC", doc)
        problems = checker.check_development()
        assert any(
            "RPR003" in p and "'lock-rules'" in p for p in problems
        )

    def test_removed_rule_row_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        text = checker.DEVELOPMENT_DOC.read_text()
        kept = "\n".join(
            line
            for line in text.splitlines()
            if not line.lstrip().startswith("| RPR006")
        )
        doc = tmp_path / "DEVELOPMENT.md"
        doc.write_text(kept)
        monkeypatch.setattr(checker, "DEVELOPMENT_DOC", doc)
        problems = checker.check_development()
        assert any(
            "RPR006" in p and "missing from the rule table" in p
            for p in problems
        )

    def test_missing_rule_section_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        text = checker.DEVELOPMENT_DOC.read_text()
        doc = tmp_path / "DEVELOPMENT.md"
        doc.write_text(text.replace("#### RPR004", "#### removed"))
        monkeypatch.setattr(checker, "DEVELOPMENT_DOC", doc)
        problems = checker.check_development()
        assert any("RPR004" in p and "no '####" in p for p in problems)

    def test_stale_grammar_block_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        """Simulate a parser change the reference missed: the quoted
        ebnf block no longer equals repro.query.sql.GRAMMAR."""
        text = checker.QUERYING_DOC.read_text()
        doc = tmp_path / "QUERYING.md"
        doc.write_text(text.replace("'LIMIT' integer", "'TOP' integer"))
        monkeypatch.setattr(checker, "QUERYING_DOC", doc)
        problems = checker.check_querying()
        assert any("differs from" in p and "GRAMMAR" in p for p in problems)

    def test_unparseable_sql_example_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        text = checker.QUERYING_DOC.read_text()
        doc = tmp_path / "QUERYING.md"
        doc.write_text(
            text + "\n```sql\nSELECT FORECAST(Value, 5) FROM DataPoint\n```\n"
        )
        monkeypatch.setattr(checker, "QUERYING_DOC", doc)
        problems = checker.check_querying()
        assert any(
            "does not parse" in p and "FORECAST(Value, 5)" in p
            for p in problems
        )

    def test_uncovered_keyword_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        """Drop every SIMILAR TO example: keyword coverage (derived
        from the grammar terminals, not a hardcoded list) fires."""
        text = checker.QUERYING_DOC.read_text()
        kept = "\n".join(
            line
            for line in text.splitlines()
            if "SIMILAR TO" not in line
        )
        doc = tmp_path / "QUERYING.md"
        doc.write_text(kept)
        monkeypatch.setattr(checker, "QUERYING_DOC", doc)
        problems = checker.check_querying()
        assert any(
            "'SIMILAR'" in p and "never appears" in p for p in problems
        )

    def test_uncovered_aggregate_is_reported(
        self, checker, monkeypatch, tmp_path
    ):
        text = checker.QUERYING_DOC.read_text()
        kept = "\n".join(
            line
            for line in text.splitlines()
            if "MAX" not in line or line.lstrip().startswith("|")
        )
        doc = tmp_path / "QUERYING.md"
        doc.write_text(kept)
        monkeypatch.setattr(checker, "QUERYING_DOC", doc)
        problems = checker.check_querying()
        assert any("'MAX'" in p for p in problems)

    def test_metrics_cli_exit_is_nonzero_on_drift(self, checker, monkeypatch):
        catalog = dict(checker.CATALOG)
        catalog.pop("server.requests_total")
        monkeypatch.setattr(checker, "CATALOG", catalog)
        assert checker.main() == 1
