"""PMC-Mean: the group-extended constant model."""

import struct

import pytest

from repro.core.errors import ModelError
from repro.models.pmc_mean import PMCMean


@pytest.fixture
def pmc():
    return PMCMean()


def fit(pmc, vectors, error_bound=10.0, limit=50):
    fitter = pmc.fitter(len(vectors[0]), error_bound, limit)
    accepted = 0
    for vector in vectors:
        if not fitter.append(tuple(vector)):
            break
        accepted += 1
    return fitter, accepted


class TestFitting:
    def test_constant_run_fits(self, pmc):
        fitter, accepted = fit(pmc, [(100.0,)] * 20)
        assert accepted == 20

    def test_within_bound_fits(self, pmc):
        # 10% of 100 allows estimates in [90, 110] for each value.
        fitter, accepted = fit(pmc, [(95.0,), (105.0,), (100.0,)])
        assert accepted == 3

    def test_outside_bound_rejected(self, pmc):
        fitter, accepted = fit(pmc, [(100.0,), (130.0,)])
        assert accepted == 1

    def test_group_reduction_uses_extremes(self, pmc):
        # Group values per timestamp: only min/max matter (Fig. 10).
        fitter, accepted = fit(pmc, [(95.0, 100.0, 105.0)] * 5)
        assert accepted == 5

    def test_group_with_empty_intersection_rejected(self, pmc):
        fitter, accepted = fit(pmc, [(80.0, 120.0)])
        assert accepted == 0

    def test_rejection_keeps_state(self, pmc):
        fitter = pmc.fitter(1, 10.0, 50)
        assert fitter.append((100.0,))
        assert not fitter.append((200.0,))
        assert fitter.append((101.0,))  # still fits the old interval
        assert fitter.length == 2

    def test_length_limit(self, pmc):
        fitter, accepted = fit(pmc, [(1.0,)] * 60, limit=50)
        assert accepted == 50

    def test_zero_error_bound_requires_exact_equality(self, pmc):
        fitter, accepted = fit(pmc, [(1.5,), (1.5,), (1.5001,)], error_bound=0.0)
        assert accepted == 2

    def test_zero_value_with_relative_bound(self, pmc):
        fitter, accepted = fit(pmc, [(0.0,), (0.0,)], error_bound=10.0)
        assert accepted == 2
        model = pmc.decode(fitter.parameters(), 1, fitter.length)
        assert model.value == 0.0


class TestEncoding:
    def test_parameters_are_four_bytes(self, pmc):
        fitter, _ = fit(pmc, [(100.0,)])
        assert len(fitter.parameters()) == 4
        assert fitter.size_bytes() == 4

    def test_empty_fitter_cannot_encode(self, pmc):
        fitter = pmc.fitter(1, 10.0, 50)
        with pytest.raises(ModelError):
            fitter.parameters()

    def test_decode_rejects_wrong_size(self, pmc):
        with pytest.raises(ModelError):
            pmc.decode(b"\x00" * 8, 1, 5)

    def test_round_trip_within_bound(self, pmc):
        values = [(100.0,), (105.0,), (95.0,)]
        fitter, _ = fit(pmc, values)
        model = pmc.decode(fitter.parameters(), 1, fitter.length)
        for (value,) in values:
            assert abs(model.value - value) <= 0.10 * abs(value) + 1e-6

    def test_representative_prefers_average(self, pmc):
        fitter, _ = fit(pmc, [(100.0,), (102.0,)], error_bound=10.0)
        (stored,) = struct.unpack("<f", fitter.parameters())
        assert stored == pytest.approx(101.0, abs=0.01)


class TestAggregates:
    def test_constant_time_flag(self, pmc):
        fitter, _ = fit(pmc, [(10.0,)] * 4)
        model = pmc.decode(fitter.parameters(), 1, 4)
        assert model.constant_time_aggregates

    def test_slice_aggregates(self, pmc):
        fitter, _ = fit(pmc, [(10.0,)] * 4, error_bound=0.0)
        model = pmc.decode(fitter.parameters(), 1, 4)
        assert model.slice_sum(0, 3, 0) == 40.0
        assert model.slice_sum(1, 2, 0) == 20.0
        assert model.slice_min(0, 3, 0) == 10.0
        assert model.slice_max(0, 3, 0) == 10.0
        assert model.value_at(2, 0) == 10.0

    def test_values_shape(self, pmc):
        fitter, _ = fit(pmc, [(10.0, 10.0, 10.0)] * 4, error_bound=0.0)
        model = pmc.decode(fitter.parameters(), 3, 4)
        assert model.values().shape == (4, 3)
