"""Model-level similarity search (the paper's future-work item ii)."""

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.core.errors import QueryError
from repro.query.similarity import SearchStats, similarity_search


@pytest.fixture(scope="module")
def db():
    """Three series; series 2 contains an exact copy of the pattern."""
    rng = np.random.default_rng(14)
    n = 600
    pattern = np.float32([50, 60, 75, 60, 50, 40, 50, 60])
    series = []
    for tid in (1, 2, 3):
        values = np.float32(100 + np.cumsum(rng.normal(0, 0.2, n)))
        if tid == 2:
            values[300:308] = pattern
        series.append(TimeSeries(tid, 100, np.arange(n) * 100, values))
    instance = ModelarDB(Configuration(error_bound=0.0))
    instance.ingest(series)
    return instance, pattern.astype(np.float64)


class TestSearch:
    def test_finds_exact_match(self, db):
        instance, pattern = db
        (match,) = similarity_search(instance.engine, pattern, k=1)
        assert match.tid == 2
        assert match.start_time == 300 * 100
        assert match.distance == pytest.approx(0.0, abs=1e-6)

    def test_top_k_ordering(self, db):
        instance, pattern = db
        matches = similarity_search(instance.engine, pattern, k=5)
        assert len(matches) == 5
        distances = [match.distance for match in matches]
        assert distances == sorted(distances)
        assert matches[0].tid == 2

    def test_tid_restriction(self, db):
        instance, pattern = db
        matches = similarity_search(instance.engine, pattern, k=3, tids=[1])
        assert all(match.tid == 1 for match in matches)
        assert matches[0].distance > 1.0  # no planted pattern in series 1

    def test_model_level_pruning_is_effective(self, db):
        instance, pattern = db
        stats = SearchStats()
        similarity_search(instance.engine, pattern, k=1, stats=stats)
        # The envelope bound must discard the overwhelming majority of
        # windows without reconstruction.
        assert stats.windows > 1000
        assert stats.pruned_fraction > 0.9

    def test_result_verified_against_reconstruction(self, db):
        instance, pattern = db
        matches = similarity_search(instance.engine, pattern, k=2)
        # Recompute the reported distance from the Data Point View.
        match = matches[1]
        points = [
            p.value
            for p in instance.points(
                tids=[match.tid],
                start_time=match.start_time,
                end_time=match.start_time + (len(pattern) - 1) * 100,
            )
        ]
        expected = float(np.sqrt(((np.array(points) - pattern) ** 2).sum()))
        assert match.distance == pytest.approx(expected, rel=1e-9)

    def test_lossy_ingestion_still_finds_the_region(self):
        rng = np.random.default_rng(15)
        n = 400
        pattern = np.float32([10, 20, 30, 20, 10])
        values = np.float32(100 + rng.normal(0, 0.05, n))
        values[200:205] = pattern
        series = TimeSeries(1, 100, np.arange(n) * 100, values)
        instance = ModelarDB(Configuration(error_bound=5.0))
        instance.ingest([series])
        (match,) = similarity_search(
            instance.engine, pattern.astype(np.float64), k=1
        )
        assert match.start_time == 200 * 100

    def test_gap_windows_are_skipped(self):
        values = [1.0] * 20 + [None] * 5 + [1.0] * 20
        series = TimeSeries(1, 100, [i * 100 for i in range(45)], values)
        instance = ModelarDB(Configuration(error_bound=0.0))
        instance.ingest([series])
        matches = similarity_search(
            instance.engine, np.ones(10), k=45
        )
        # No reported window may overlap the gap.
        for match in matches:
            first = match.start_time // 100
            assert first + 10 <= 20 or first >= 25

    def test_validation(self, db):
        instance, pattern = db
        with pytest.raises(QueryError):
            similarity_search(instance.engine, [], k=1)
        with pytest.raises(QueryError):
            similarity_search(instance.engine, pattern, k=0)
