"""The UDAF framework: initialize / iterate / merge / finalize."""

import pytest

from repro.core.errors import QueryError
from repro.models.pmc_mean import FittedPMCMean
from repro.models.swing import FittedSwing
from repro.query.aggregates import aggregate_by_name, aggregate_names


@pytest.fixture
def constant_model():
    return FittedPMCMean(10.0, n_columns=1, length=8)


@pytest.fixture
def linear_model():
    # 0, 1, 2, ..., 9
    return FittedSwing(0.0, 1.0, n_columns=1, length=10)


class TestLookup:
    def test_names(self):
        assert aggregate_names() == ["AVG", "COUNT", "MAX", "MIN", "SUM"]

    def test_suffixed_lookup(self):
        assert aggregate_by_name("SUM_S").name == "SUM"
        assert aggregate_by_name("sum_s").name == "SUM"
        assert aggregate_by_name("MIN").name == "MIN"

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            aggregate_by_name("MEDIAN_S")


class TestIterate:
    def test_count(self, constant_model):
        agg = aggregate_by_name("COUNT")
        state = agg.iterate(agg.initialize(), constant_model, 0, 7, 0, 1.0)
        assert agg.finalize(state) == 8

    def test_sum(self, constant_model):
        agg = aggregate_by_name("SUM")
        state = agg.iterate(agg.initialize(), constant_model, 2, 5, 0, 1.0)
        assert agg.finalize(state) == 40.0

    def test_min_max(self, linear_model):
        low = aggregate_by_name("MIN")
        high = aggregate_by_name("MAX")
        state = low.iterate(low.initialize(), linear_model, 3, 7, 0, 1.0)
        assert low.finalize(state) == 3.0
        state = high.iterate(high.initialize(), linear_model, 3, 7, 0, 1.0)
        assert high.finalize(state) == 7.0

    def test_avg(self, linear_model):
        agg = aggregate_by_name("AVG")
        state = agg.iterate(agg.initialize(), linear_model, 0, 9, 0, 1.0)
        assert agg.finalize(state) == pytest.approx(4.5)

    def test_scaling_divides_results(self, constant_model):
        # Section 6.1: aggregates divide by the scaling constant.
        agg = aggregate_by_name("SUM")
        state = agg.iterate(agg.initialize(), constant_model, 0, 7, 0, 2.0)
        assert agg.finalize(state) == 40.0
        low = aggregate_by_name("MIN")
        state = low.iterate(low.initialize(), constant_model, 0, 7, 0, 2.0)
        assert low.finalize(state) == 5.0

    def test_empty_states_finalize(self):
        assert aggregate_by_name("MIN").finalize(
            aggregate_by_name("MIN").initialize()
        ) is None
        assert aggregate_by_name("AVG").finalize(
            aggregate_by_name("AVG").initialize()
        ) is None
        assert aggregate_by_name("COUNT").finalize(
            aggregate_by_name("COUNT").initialize()
        ) == 0


class TestMerge:
    """Distributive/algebraic merging for the cluster's master step."""

    def test_sum_merge(self, constant_model):
        agg = aggregate_by_name("SUM")
        a = agg.iterate(agg.initialize(), constant_model, 0, 3, 0, 1.0)
        b = agg.iterate(agg.initialize(), constant_model, 4, 7, 0, 1.0)
        assert agg.finalize(agg.merge(a, b)) == 80.0

    def test_min_merge_with_empty(self, linear_model):
        agg = aggregate_by_name("MIN")
        state = agg.iterate(agg.initialize(), linear_model, 2, 4, 0, 1.0)
        assert agg.finalize(agg.merge(state, agg.initialize())) == 2.0
        assert agg.finalize(agg.merge(agg.initialize(), state)) == 2.0

    def test_max_merge(self, linear_model):
        agg = aggregate_by_name("MAX")
        a = agg.iterate(agg.initialize(), linear_model, 0, 4, 0, 1.0)
        b = agg.iterate(agg.initialize(), linear_model, 5, 9, 0, 1.0)
        assert agg.finalize(agg.merge(a, b)) == 9.0

    def test_avg_merge_is_algebraic(self, linear_model):
        # AVG merges (sum, count) pairs, not averages of averages.
        agg = aggregate_by_name("AVG")
        a = agg.iterate(agg.initialize(), linear_model, 0, 1, 0, 1.0)  # 0,1
        b = agg.iterate(agg.initialize(), linear_model, 2, 9, 0, 1.0)
        assert agg.finalize(agg.merge(a, b)) == pytest.approx(4.5)

    def test_count_merge(self, constant_model):
        agg = aggregate_by_name("COUNT")
        a = agg.iterate(agg.initialize(), constant_model, 0, 2, 0, 1.0)
        b = agg.iterate(agg.initialize(), constant_model, 0, 0, 0, 1.0)
        assert agg.finalize(agg.merge(a, b)) == 4
