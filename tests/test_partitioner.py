"""Partitioning primitives, parser and Algorithms 1-2 (Section 4.1)."""

import pytest

from repro.core import Dimension, DimensionSet
from repro.core.errors import ConfigurationError
from repro.partitioner import (
    Clause,
    CorrelationSpec,
    Distance,
    GroupingContext,
    LCALevel,
    MemberEquality,
    TimeSeriesSet,
    group_from_config,
    group_time_series,
    lowest_distance,
    parse_clause,
    parse_correlation,
)
from repro.partitioner.primitives import MemberScaling

from .conftest import make_series


@pytest.fixture
def context(dimensions) -> GroupingContext:
    return GroupingContext(
        dimensions=dimensions,
        names={1: "a.gz", 2: "b.gz", 3: "c.gz"},
    )


class TestPrimitives:
    def test_time_series_set(self, context):
        primitive = TimeSeriesSet(frozenset({"a.gz", "b.gz"}))
        assert primitive.correlated([1], [2], context)
        assert not primitive.correlated([1], [3], context)

    def test_member_equality(self, context):
        primitive = MemberEquality("Measure", 1, "Temperature")
        assert primitive.correlated([1], [2], context)
        assert not primitive.correlated([1], [3], context)

    def test_lca_level_positive(self, context):
        # Location 3 requires sharing a park.
        primitive = LCALevel("Location", 3)
        assert primitive.correlated([2], [3], context)
        assert not primitive.correlated([1], [2], context)

    def test_lca_level_zero_means_all_levels(self, context):
        primitive = LCALevel("Location", 0)
        assert not primitive.correlated([2], [3], context)
        assert primitive.correlated([2], [2], context)

    def test_lca_level_negative(self, context):
        # -1: all but the most detailed level must match -> share a park.
        primitive = LCALevel("Location", -1)
        assert primitive.correlated([2], [3], context)
        assert not primitive.correlated([1], [2], context)

    def test_distance_paper_example(self, context):
        # Fig. 7 / Section 4.1: the Location distance between Tids 2 and
        # 3 is (4 - 3) / 4 = 0.25.
        primitive = Distance(1.0)
        location_only = GroupingContext(
            dimensions=DimensionSet(
                [context.dimensions["Location"]]
            ),
        )
        assert primitive.distance([2], [3], location_only) == pytest.approx(
            0.25
        )

    def test_distance_with_weight(self, context):
        location_only = GroupingContext(
            dimensions=DimensionSet([context.dimensions["Location"]]),
        )
        primitive = Distance(1.0, weights={"Location": 2.0})
        assert primitive.distance([2], [3], location_only) == pytest.approx(
            0.5
        )

    def test_distance_clamped_to_one(self, context):
        location_only = GroupingContext(
            dimensions=DimensionSet([context.dimensions["Location"]]),
        )
        primitive = Distance(1.0, weights={"Location": 10.0})
        assert primitive.distance([1], [2], location_only) == 1.0

    def test_distance_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            Distance(1.5)
        with pytest.raises(ConfigurationError):
            Distance(-0.1)

    def test_lowest_distance_rule_of_thumb(self, dimensions):
        # (1 / max(levels)) / |dimensions| = (1/4) / 2.
        assert lowest_distance(dimensions) == pytest.approx(0.125)

    def test_clause_requires_all_primitives(self, context):
        clause = Clause(
            (
                LCALevel("Location", 3),
                MemberEquality("Measure", 1, "Temperature"),
            )
        )
        # Tids 2 and 3 share a park, but 3 is not a Temperature series.
        assert not clause.correlated([2], [3], context)
        assert clause.correlated([2], [2], context)

    def test_spec_or_combines_clauses(self, context):
        spec = CorrelationSpec(
            [
                Clause((MemberEquality("Measure", 1, "Temperature"),)),
                Clause((LCALevel("Location", 3),)),
            ]
        )
        assert spec.correlated([1], [2], context)  # via Measure clause
        assert spec.correlated([2], [3], context)  # via Location clause
        assert not spec.correlated([1], [3], context)


class TestParser:
    def test_member_triple(self, dimensions):
        clause = parse_clause("Measure 1 Temperature", dimensions)
        assert clause.primitives == (
            MemberEquality("Measure", 1, "Temperature"),
        )

    def test_lca_pair(self, dimensions):
        clause = parse_clause("Location 2", dimensions)
        assert clause.primitives == (LCALevel("Location", 2),)

    def test_and_within_clause(self, dimensions):
        clause = parse_clause(
            "Location 2, Measure 1 Temperature", dimensions
        )
        assert len(clause.primitives) == 2

    def test_distance(self, dimensions):
        clause = parse_clause("0.25", dimensions)
        assert clause.primitives == (Distance(0.25),)

    def test_distance_with_weights(self, dimensions):
        clause = parse_clause("0.25 Location 2.0", dimensions)
        (primitive,) = clause.primitives
        assert primitive.weights == {"Location": 2.0}

    def test_auto_is_lowest_distance(self, dimensions):
        clause = parse_clause("auto", dimensions)
        (primitive,) = clause.primitives
        assert primitive.threshold == pytest.approx(0.125)

    def test_scaling_four_tuple(self, dimensions):
        clause = parse_clause("Measure 1 Temperature 4.75", dimensions)
        assert clause.primitives == ()
        assert clause.scalings == (
            MemberScaling("Measure", 1, "Temperature", 4.75),
        )

    def test_series_set_with_scaling(self, dimensions):
        clause = parse_clause("a.gz*2.0 b.gz", dimensions)
        (primitive,) = clause.primitives
        assert primitive.names == frozenset({"a.gz", "b.gz"})
        assert primitive.scalings == {"a.gz": 2.0}

    def test_empty_clause_rejected(self, dimensions):
        with pytest.raises(ConfigurationError):
            parse_clause("  ,  ", dimensions)

    def test_unknown_weight_dimension_rejected(self, dimensions):
        with pytest.raises(ConfigurationError):
            parse_clause("0.25 Nowhere 1.0", dimensions)

    def test_malformed_dimension_primitive_rejected(self, dimensions):
        with pytest.raises(ConfigurationError):
            parse_clause("Location", dimensions)

    def test_multiple_clauses(self, dimensions):
        spec = parse_correlation(
            ["Location 3", "Measure 1 Temperature"], dimensions
        )
        assert len(spec.clauses) == 2


class TestGrouping:
    def make_context_series(self):
        return [
            make_series(1, [1.0, 2.0], name="a.gz"),
            make_series(2, [1.0, 2.0], name="b.gz"),
            make_series(3, [1.0, 2.0], name="c.gz"),
        ]

    def test_algorithm1_merges_to_fixpoint(self, dimensions):
        series = self.make_context_series()
        groups = group_from_config(series, ["Location 2"], dimensions)
        # All three share Region, so one group.
        assert [g.tids for g in groups] == [(1, 2, 3)]

    def test_park_level_grouping(self, dimensions):
        series = self.make_context_series()
        groups = group_from_config(series, ["Location 3"], dimensions)
        assert [g.tids for g in groups] == [(1,), (2, 3)]

    def test_no_hints_yields_singletons(self, dimensions):
        series = self.make_context_series()
        groups = group_from_config(series, [], dimensions)
        assert [g.tids for g in groups] == [(1,), (2,), (3,)]

    def test_transitive_merging(self):
        # A~B via clause 1 and B~C via clause 2 put all three together
        # once B bridges them (fixpoint iteration of Algorithm 1).
        dimension = Dimension("D", ["Name", "Pair"])
        dimension.assign(1, ("a", "x"))
        dimension.assign(2, ("b", "x"))
        dimension.assign(3, ("c", "y"))
        dimensions = DimensionSet([dimension])
        series = [make_series(tid, [1.0]) for tid in (1, 2, 3)]
        spec = parse_correlation(["D 1"], dimensions)
        groups = group_time_series(series, spec, dimensions)
        assert [g.tids for g in groups] == [(1, 2), (3,)]

    def test_incompatible_si_never_merged(self, dimensions):
        series = [
            make_series(1, [1.0], si=100),
            make_series(2, [1.0], si=100),
            make_series(3, [1.0], si=200),
        ]
        groups = group_from_config(series, ["Location 1"], dimensions)
        tids = sorted(g.tids for g in groups)
        assert (3,) in tids
        assert (1, 2) in tids

    def test_scaling_hint_applied(self, dimensions):
        series = self.make_context_series()
        group_from_config(
            series,
            ["Location 1, Measure 1 Temperature 4.75"],
            dimensions,
        )
        scalings = {ts.tid: ts.scaling for ts in series}
        assert scalings == {1: 4.75, 2: 4.75, 3: 1.0}

    def test_series_set_scaling_applied(self, dimensions):
        series = self.make_context_series()
        group_from_config(series, ["a.gz*2.5 b.gz"], dimensions)
        assert series[0].scaling == 2.5
        assert series[1].scaling == 1.0

    def test_gids_are_dense_from_one(self, dimensions):
        series = self.make_context_series()
        groups = group_from_config(series, ["Location 3"], dimensions)
        assert [g.gid for g in groups] == [1, 2]
