"""The pushdown decision layer: what is segment-answerable, and proof
that a wrong answer would be caught.

``rewriter.decide_pushdown`` classifies every select-list subtree as
``segment`` (fold model parameters, never materialize a point) or
``materialize`` (reconstruct values). The corpus below locks the
classification; the metric tests assert that segment-routed aggregates
really never touch ``_accumulate_point``; and the regression test shows
the equivalence suite is a real safety net — a deliberately wrong
"segment-only" claim for a Value-predicate query produces a *different
answer*, so it cannot slip through the row-vs-columnar bit check.
"""

import numpy as np
import pytest

from repro import Configuration, MemoryStorage, ModelarDB, TimeSeries
from repro.obs import get_registry
from repro.query import engine as engine_module
from repro.query.rewriter import decide_pushdown
from repro.query.sql import parse

START = 1_700_000_000_000
SI = 1000


def routes(sql):
    return [(d.subtree, d.route) for d in decide_pushdown(parse(sql))]


# ----------------------------------------------------------------------
# The decision corpus
# ----------------------------------------------------------------------
class TestDecisionCorpus:
    @pytest.mark.parametrize(
        ("sql", "expected"),
        [
            # Segment view: always answered from model parameters.
            ("SELECT SUM_S(*) FROM Segment", [("SUM_S(*)", "segment")]),
            (
                "SELECT MIN_S(*), MAX_S(*) FROM Segment WHERE Tid = 1",
                [("MIN_S(*)", "segment"), ("MAX_S(*)", "segment")],
            ),
            (
                # Value predicates are ignored on the Segment view (legacy
                # semantics) — still segment-only.
                "SELECT AVG_S(*) FROM Segment WHERE Value > 3.0",
                [("AVG_S(*)", "segment")],
            ),
            ("SELECT * FROM Segment", [("scan", "segment")]),
            # DataPoint aggregates without Value predicates: TS bounds
            # clip the per-segment index range exactly, so fold models.
            ("SELECT SUM(*) FROM DataPoint", [("SUM(*)", "segment")]),
            (
                "SELECT COUNT(*), AVG(*) FROM DataPoint "
                f"WHERE TS >= {START} AND TS < {START + 10 * SI}",
                [("COUNT(*)", "segment"), ("AVG(*)", "segment")],
            ),
            (
                "SELECT Tid, MIN(*) FROM DataPoint "
                "WHERE Tid IN (1, 2) GROUP BY Tid",
                [("MIN(*)", "segment")],
            ),
            # A Value predicate forces materialization of every subtree.
            (
                "SELECT SUM(*) FROM DataPoint WHERE Value > 0.0",
                [("SUM(*)", "materialize")],
            ),
            (
                "SELECT COUNT(*), MAX(*) FROM DataPoint "
                f"WHERE Value <= 5.0 AND TS >= {START}",
                [("COUNT(*)", "materialize"), ("MAX(*)", "materialize")],
            ),
            # Point selections reconstruct values by definition.
            ("SELECT Tid, TS, Value FROM DataPoint", [("scan", "materialize")]),
            (
                "SELECT * FROM DataPoint WHERE Tid = 1",
                [("scan", "materialize")],
            ),
        ],
    )
    def test_route(self, sql, expected):
        assert routes(sql) == expected

    def test_reasons_are_explanatory(self):
        (decision,) = decide_pushdown(
            parse("SELECT SUM(*) FROM DataPoint WHERE Value > 1.0")
        )
        assert not decision.segment_only
        assert "Value" in decision.reason


# ----------------------------------------------------------------------
# Execution: segment-routed aggregates never materialize points
# ----------------------------------------------------------------------
def constant_db(columnar=True):
    """Two constant series (PMC-Mean everywhere): one at +4, one at -6,
    50 ticks each. Every aggregate is exactly predictable."""
    timestamps = np.arange(50, dtype=np.int64) * SI + START
    series = [
        TimeSeries(1, SI, timestamps, np.full(50, 4.0)),
        TimeSeries(2, SI, timestamps, np.full(50, -6.0)),
    ]
    config = Configuration(error_bound=0.0, columnar_read=columnar)
    db = ModelarDB(config, storage=MemoryStorage())
    db.ingest(series)
    return db


def counter_value(name):
    return get_registry().snapshot()["counters"].get(name, 0)


class TestNeverMaterializes:
    @pytest.mark.parametrize("columnar", [True, False])
    def test_pushdown_skips_materialization(self, columnar, monkeypatch):
        db = constant_db(columnar)

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("segment-answerable query materialized")

        monkeypatch.setattr(engine_module.QueryEngine, "_accumulate_point", boom)
        skipped_before = counter_value("query.rows_skipped_materialization_total")
        segment_before = counter_value(
            "query.pushdown_subtrees_total{decision=segment}"
        )
        rows = db.sql("SELECT SUM(*), COUNT(*), AVG(*) FROM DataPoint")
        assert rows == [{"SUM(*)": -100.0, "COUNT(*)": 100, "AVG(*)": -1.0}]
        # 2 series x 50 ticks were answered from model parameters alone.
        assert (
            counter_value("query.rows_skipped_materialization_total")
            - skipped_before
        ) == 100
        assert (
            counter_value("query.pushdown_subtrees_total{decision=segment}")
            - segment_before
        ) == 3

    def test_value_predicate_routes_to_materialize(self):
        db = constant_db()
        materialize_before = counter_value(
            "query.pushdown_subtrees_total{decision=materialize}"
        )
        rows = db.sql("SELECT SUM(*) FROM DataPoint WHERE Value > 0.0")
        assert rows == [{"SUM(*)": 200.0}]
        assert (
            counter_value("query.pushdown_subtrees_total{decision=materialize}")
            - materialize_before
        ) == 1


class TestExplainAnalyze:
    def test_stage_breakdown_reports_pushdown(self):
        db = constant_db()
        report = db.sql("EXPLAIN ANALYZE SELECT SUM(*) FROM DataPoint")
        details = {row["stage"].strip(): row["detail"] for row in report}
        assert "pushdown=SUM(*):segment" in details["plan"]
        assert "rows_skipped_materialization=100" in details["scan"]
        assert "mode=columnar" in details["scan"]

    def test_materialized_subtree_is_visible(self):
        db = constant_db()
        report = db.sql(
            "EXPLAIN ANALYZE SELECT SUM(*) FROM DataPoint WHERE Value > 0.0"
        )
        details = {row["stage"].strip(): row["detail"] for row in report}
        assert "pushdown=SUM(*):materialize" in details["plan"]
        assert "rows_skipped_materialization" not in details.get("scan", "")


# ----------------------------------------------------------------------
# The safety net: a wrong segment-only claim cannot hide
# ----------------------------------------------------------------------
class TestWrongClaimIsCaught:
    def test_false_segment_claim_changes_the_answer(self, monkeypatch):
        """If the rewriter ever wrongly declared a Value-predicate
        aggregate segment-answerable, the pushed-down fold would ignore
        the predicate — and the equivalence suite's row-vs-columnar
        comparison would fail loudly rather than bless the wrong plan.
        """
        sql = "SELECT SUM(*) FROM DataPoint WHERE Value > 0.0"
        correct = constant_db(columnar=False).sql(sql)
        assert correct == [{"SUM(*)": 200.0}]

        real = engine_module.decide_pushdown

        def overconfident(query):
            return tuple(
                type(d)(d.subtree, True, "wrong: claims Value is absorbed")
                for d in real(query)
            )

        monkeypatch.setattr(engine_module, "decide_pushdown", overconfident)
        wrong = constant_db(columnar=True).sql(sql)
        # The fold summed both series over all ticks: predicate ignored.
        assert wrong == [{"SUM(*)": -100.0}]
        assert wrong != correct
