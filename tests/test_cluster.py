"""The master/worker cluster substrate."""

import numpy as np
import pytest

from repro import Configuration, Dimension, DimensionSet, ModelarDB, TimeSeries
from repro.cluster import ModelarCluster
from repro.core.errors import QueryError


def build_series(n_parks=3, per_park=2, n_points=400, seed=4):
    rng = np.random.default_rng(seed)
    location = Dimension("Location", ["Entity", "Park"])
    dimensions = DimensionSet([location])
    series = []
    tid = 1
    for park in range(n_parks):
        base = 50.0 + 20 * park + np.cumsum(rng.normal(0, 0.1, n_points))
        for entity in range(per_park):
            values = np.float32(base + rng.normal(0, 0.05, n_points))
            series.append(
                TimeSeries(tid, 100, np.arange(n_points) * 100, values)
            )
            location.assign(tid, (f"e{tid}", f"park{park}"))
            tid += 1
    return series, dimensions


@pytest.fixture(scope="module")
def cluster_and_reference():
    series, dimensions = build_series()
    config = Configuration(error_bound=1.0, correlation=["Location 1"])
    cluster = ModelarCluster(3, config, dimensions)
    cluster.ingest(series)
    reference = ModelarDB(config, dimensions=dimensions)
    reference.ingest(series)
    return cluster, reference


class TestAssignment:
    def test_groups_are_never_split_across_workers(self, cluster_and_reference):
        cluster, _ = cluster_and_reference
        for worker in cluster.workers:
            for group in worker.groups:
                assert all(
                    cluster._tid_to_worker[ts.tid] is worker for ts in group
                )

    def test_least_loaded_assignment_balances(self):
        series, dimensions = build_series(n_parks=6, per_park=1, n_points=100)
        config = Configuration(correlation=["Location 1"])
        cluster = ModelarCluster(3, config, dimensions)
        cluster.assign(cluster.partition(series))
        loads = [worker.load for worker in cluster.workers]
        assert max(loads) - min(loads) == 0  # six equal groups over three

    def test_single_worker_cluster(self):
        series, dimensions = build_series(n_parks=1)
        cluster = ModelarCluster(1, Configuration(), dimensions)
        report = cluster.ingest(series)
        assert report.data_points > 0
        assert len(report.worker_seconds) == 1

    def test_zero_workers_rejected(self):
        with pytest.raises(QueryError):
            ModelarCluster(0)


class TestDistributedQueries:
    def test_full_aggregate_matches_single_node(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        rows, _ = cluster.sql("SELECT SUM_S(*) FROM Segment")
        expected = reference.sql("SELECT SUM_S(*) FROM Segment")
        assert rows[0]["SUM_S(*)"] == pytest.approx(
            expected[0]["SUM_S(*)"], rel=1e-9
        )

    def test_group_by_tid_matches(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        sql = "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid"
        rows, _ = cluster.sql(sql)
        expected = reference.sql(sql)
        assert sorted(rows, key=lambda r: r["Tid"]) == pytest.approx(
            sorted(expected, key=lambda r: r["Tid"])
        )

    def test_tid_routing_prunes_workers(self, cluster_and_reference):
        cluster, _ = cluster_and_reference
        rows, report = cluster.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE Tid = 1"
        )
        assert rows[0]["COUNT_S(*)"] == 400
        # Only the worker owning Tid 1 participated.
        assert len(report.worker_seconds) == 1

    def test_member_predicate_across_workers(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        sql = "SELECT SUM_S(*) FROM Segment WHERE Park = 'park1'"
        rows, _ = cluster.sql(sql)
        expected = reference.sql(sql)
        assert rows[0]["SUM_S(*)"] == pytest.approx(
            expected[0]["SUM_S(*)"], rel=1e-9
        )

    def test_cube_rollup_merges(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        sql = "SELECT CUBE_SUM_MINUTE(*) FROM Segment WHERE Tid IN (1, 3, 5)"
        rows, _ = cluster.sql(sql)
        expected = reference.sql(sql)
        assert len(rows) == len(expected)
        for mine, ref in zip(rows, expected):
            assert mine["CUBE_SUM_MINUTE(*)"] == pytest.approx(
                ref["CUBE_SUM_MINUTE(*)"], rel=1e-9
            )

    def test_point_selection_concatenates(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        sql = "SELECT TS, Value FROM DataPoint WHERE Tid = 2 AND TS <= 1000"
        rows, _ = cluster.sql(sql)
        expected = reference.sql(sql)
        assert rows == pytest.approx(expected)

    def test_data_point_view_aggregate_matches(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        sql = "SELECT SUM(*) FROM DataPoint WHERE Tid IN (1, 2, 3)"
        rows, _ = cluster.sql(sql)
        expected = reference.sql(sql)
        assert rows[0]["SUM(*)"] == pytest.approx(
            expected[0]["SUM(*)"], rel=1e-9
        )


class TestReports:
    def test_ingest_report_metrics(self, cluster_and_reference):
        cluster, _ = cluster_and_reference
        # Build a fresh cluster to get a fresh report.
        series, dimensions = build_series(n_parks=2, n_points=200)
        fresh = ModelarCluster(
            2, Configuration(correlation=["Location 1"]), dimensions
        )
        report = fresh.ingest(series)
        assert report.makespan > 0
        assert report.total_work >= report.makespan
        assert report.throughput > 0

    def test_query_report_makespan(self, cluster_and_reference):
        cluster, _ = cluster_and_reference
        _, report = cluster.sql("SELECT SUM_S(*) FROM Segment")
        assert report.makespan >= max(report.worker_seconds)
        assert report.total_work >= report.makespan

    def test_cluster_size_accounting(self, cluster_and_reference):
        cluster, reference = cluster_and_reference
        assert cluster.size_bytes() == reference.size_bytes()
        assert cluster.segment_count() == reference.segment_count()
