"""The columnar wire format: round-trips, negotiation, cache identity.

The format is an optimization, never a semantic change: any payload
either encodes to typed column buffers (``RCF1`` body) that decode to
the *same* payload dict, or it refuses (returns ``None``) and the JSON
encoder handles it. Negotiation is per request — old clients never see
columnar bodies, old servers ignore the ``accept`` field — and a result
-cache hit re-serializes to byte-identical frames on both formats.
"""

from __future__ import annotations

import json
import math
import socket
import struct

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.obs import get_registry
from repro.server import EmbeddedDispatcher, QueryServer, ServerClient, ServerThread
from repro.server.protocol import (
    COLUMNAR_MAGIC,
    HEADER,
    WIRE_COLUMNAR,
    WIRE_JSON,
    BadRequestError,
    decode_body,
    encode_columnar_frame,
    encode_columns,
    encode_frame,
    negotiated_wire,
    send_frame,
)
from repro.server.result_cache import CachedResult


def roundtrip(payload):
    frame = encode_columnar_frame(payload)
    assert frame is not None
    assert frame[HEADER.size:].startswith(COLUMNAR_MAGIC)
    return decode_body(frame[HEADER.size:])


def column_encodings(payload):
    """The per-column ``enc`` tags from an encoded frame's header."""
    frame = encode_columnar_frame(payload)
    body = frame[HEADER.size:]
    (header_length,) = HEADER.unpack_from(body, len(COLUMNAR_MAGIC))
    start = len(COLUMNAR_MAGIC) + HEADER.size
    header = json.loads(body[start:start + header_length])
    return {col["name"]: col["enc"] for col in header["columns"]}


class TestRoundTrip:
    def test_empty_result(self):
        payload = {"ok": True, "rows": [], "cached": False}
        assert roundtrip(payload) == payload

    def test_single_row(self):
        payload = {"ok": True, "rows": [{"Tid": 1, "Value": 2.5, "Name": "x"}]}
        assert roundtrip(payload) == payload

    def test_typed_encodings(self):
        payload = {
            "ok": True,
            "rows": [
                {"i": 1, "f": 1.5, "s": "a", "b": True, "n": None},
                {"i": 2, "f": 2.5, "s": "b", "b": False, "n": None},
            ],
        }
        assert roundtrip(payload) == payload
        encodings = column_encodings(payload)
        assert encodings["i"] == "i8"
        assert encodings["f"] == "f8"
        # Strings, bools and nulls ride the per-column JSON fallback.
        assert encodings["s"] == encodings["b"] == encodings["n"] == "json"

    def test_large_result_beyond_64k_rows(self):
        n = 70_000
        rows = [{"Tid": i % 7, "Value": i * 0.5} for i in range(n)]
        decoded = roundtrip({"ok": True, "rows": rows})
        assert len(decoded["rows"]) == n
        assert decoded["rows"][0] == {"Tid": 0, "Value": 0.0}
        assert decoded["rows"][-1] == {"Tid": (n - 1) % 7, "Value": (n - 1) * 0.5}

    def test_nan_and_inf_are_bit_exact(self):
        rows = [
            {"v": math.nan},
            {"v": math.inf},
            {"v": -math.inf},
            {"v": -0.0},
            {"v": 5e-324},  # smallest subnormal
        ]
        decoded = roundtrip({"ok": True, "rows": rows})
        for sent, got in zip(rows, decoded["rows"]):
            assert struct.pack("<d", sent["v"]) == struct.pack("<d", got["v"])

    def test_int64_range_falls_back_to_json_encoding(self):
        rows = [{"v": 2 ** 63}]  # does not fit i8
        payload = {"ok": True, "rows": rows}
        assert roundtrip(payload) == payload
        assert column_encodings(payload)["v"] == "json"

    def test_meta_fields_survive(self):
        payload = {
            "ok": True,
            "rows": [{"v": 1}],
            "cached": True,
            "elapsed": 0.25,
            "id": "c1-7",
        }
        assert roundtrip(payload) == payload


class TestRefusals:
    def test_non_rectangular_rows_refuse(self):
        payload = {
            "ok": True,
            "rows": [{"a": 1}, {"a": 1, "b": 2}],
        }
        assert encode_columnar_frame(payload) is None
        # The JSON encoder remains the correctness fallback.
        assert decode_body(encode_frame(payload)[HEADER.size:]) == payload

    def test_key_order_mismatch_refuses(self):
        payload = {"ok": True, "rows": [{"a": 1, "b": 2}, {"b": 2, "a": 1}]}
        assert encode_columnar_frame(payload) is None

    def test_non_dict_rows_refuse(self):
        assert encode_columnar_frame({"ok": True, "rows": [1, 2]}) is None

    def test_payload_without_rows_refuses(self):
        assert encode_columnar_frame({"ok": True, "pong": True}) is None

    def test_malformed_columnar_body_raises_bad_request(self):
        frame = encode_columnar_frame({"ok": True, "rows": [{"v": 1.0}]})
        body = frame[HEADER.size:]
        with pytest.raises(BadRequestError):
            decode_body(body[: len(body) - 3])  # truncated buffer

    def test_encode_columns_empty(self):
        assert encode_columns([]) == ([], [])


class TestNegotiation:
    def test_negotiated_wire(self):
        assert negotiated_wire({"op": "query"}) == WIRE_JSON
        assert negotiated_wire({"accept": ["json"]}) == WIRE_JSON
        assert negotiated_wire({"accept": ["columnar"]}) == WIRE_COLUMNAR
        assert negotiated_wire({"accept": "columnar"}) == WIRE_COLUMNAR
        assert negotiated_wire({"accept": ["json", "columnar"]}) == WIRE_COLUMNAR


# ----------------------------------------------------------------------
# Against a live server
# ----------------------------------------------------------------------
SQL = "SELECT Tid, SUM_S(*) FROM Segment GROUP BY Tid"


def make_db():
    timestamps = np.arange(200, dtype=np.int64) * 100
    series = [
        TimeSeries(tid, 100, timestamps, np.full(200, float(tid)))
        for tid in (1, 2)
    ]
    db = ModelarDB(Configuration(error_bound=0.0))
    db.ingest(series)
    return db


class _Harness:
    def __init__(self, db):
        self.dispatcher = EmbeddedDispatcher.for_db(db)
        self.server = QueryServer(self.dispatcher)
        self.thread = ServerThread(self.server)

    def __enter__(self):
        return self.thread.start()

    def __exit__(self, exc_type, exc, tb):
        self.thread.stop()


def raw_body(host, port, payload):
    """One request, returning the raw (undecoded) response body."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.settimeout(10)
        send_frame(sock, payload)
        header = b""
        while len(header) < HEADER.size:
            header += sock.recv(HEADER.size - len(header))
        (length,) = HEADER.unpack(header)
        body = b""
        while len(body) < length:
            body += sock.recv(length - len(body))
    return body


def columnar_responses():
    counters = get_registry().snapshot()["counters"]
    return counters.get("server.columnar_responses_total", 0)


class TestLiveNegotiation:
    def test_accept_controls_the_body_format(self):
        db = make_db()
        with _Harness(db) as (host, port):
            json_body = raw_body(host, port, {"op": "query", "sql": SQL})
            columnar_body = raw_body(
                host, port,
                {"op": "query", "sql": SQL, "accept": ["columnar"]},
            )
        assert json_body.startswith(b"{")
        assert columnar_body.startswith(COLUMNAR_MAGIC)
        # Same response either way.
        left, right = decode_body(json_body), decode_body(columnar_body)
        left.pop("elapsed", None), right.pop("elapsed", None)
        right.pop("cached", None), left.pop("cached", None)
        assert left == right

    def test_clients_agree_and_counter_tracks_fast_path(self):
        db = make_db()
        expected = db.sql(SQL)
        before = columnar_responses()
        with _Harness(db) as (host, port):
            with ServerClient(host, port, columnar=True) as fast:
                fast_rows = [fast.query(SQL) for _ in range(3)]
            with ServerClient(host, port, columnar=False) as legacy:
                legacy_rows = legacy.query(SQL)
        assert legacy_rows == expected
        assert all(rows == expected for rows in fast_rows)
        assert columnar_responses() - before == 3

    def test_ping_is_json_even_when_columnar_accepted(self):
        db = make_db()
        with _Harness(db) as (host, port):
            body = raw_body(host, port, {"op": "ping", "accept": ["columnar"]})
        # No list-of-dicts rows to encode: write_frame falls back to JSON.
        assert body.startswith(b"{")
        assert decode_body(body)["pong"] is True


class TestCacheByteIdentity:
    def test_cache_hit_reuses_rows_and_bytes(self):
        db = make_db()
        dispatcher = EmbeddedDispatcher.for_db(db)
        first, cached_first = dispatcher.execute(SQL, token=None)
        second, cached_second = dispatcher.execute(SQL, token=None)
        assert not cached_first and cached_second
        assert second is first  # the cache returns the same object
        assert isinstance(first, CachedResult)

        payload = {"ok": True, "rows": first, "cached": False}
        frame_a = encode_columnar_frame(payload)
        # The encoded columns are memoized on the cached rows...
        assert first.columnar_columns is not None
        frame_b = encode_columnar_frame(payload)
        assert frame_a == frame_b  # ...and re-serialize byte-identically
        # The JSON encoding is also stable across hits.
        assert encode_frame(payload) == encode_frame(payload)
        assert decode_body(frame_a[HEADER.size:]) == {
            "ok": True,
            "rows": list(first),
            "cached": False,
        }
