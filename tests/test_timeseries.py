"""Time series primitives: Definitions 1-3 and 5-6."""

import numpy as np
import pytest

from repro.core import DataPoint, Gap, TimeSeries, from_data_points
from repro.core.errors import TimeSeriesError

from .conftest import make_series


class TestConstruction:
    def test_basic_series(self):
        ts = make_series(1, [188.5, 181.8, 179.15], si=100)
        assert len(ts) == 3
        assert ts.start_time == 0
        assert ts.end_time == 200
        assert ts.sampling_interval == 100

    def test_values_preserved(self):
        ts = make_series(1, [1.0, 2.0, 3.0])
        assert list(ts.values) == [1.0, 2.0, 3.0]

    def test_iteration_yields_data_points(self):
        ts = make_series(7, [1.0, None, 3.0])
        points = list(ts)
        assert points[0] == DataPoint(7, 0, 1.0)
        assert points[1] == DataPoint(7, 100, None)
        assert points[2] == DataPoint(7, 200, 3.0)

    def test_non_positive_si_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 0, [0], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 100, [0, 100], [1.0])

    def test_zero_scaling_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 100, [0], [1.0], scaling=0.0)

    def test_unordered_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 100, [0, 200, 100], [1.0, 2.0, 3.0])

    def test_duplicate_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 100, [0, 0], [1.0, 2.0])

    def test_misaligned_timestamps_rejected(self):
        with pytest.raises(TimeSeriesError):
            TimeSeries(1, 100, [0, 150], [1.0, 2.0])

    def test_empty_series_allowed(self):
        ts = TimeSeries(1, 100, [], [])
        assert len(ts) == 0

    def test_from_data_points(self):
        ts = from_data_points(3, 100, [(0, 1.0), (100, None), (200, 3.0)])
        assert ts.tid == 3
        assert ts.gap_count() == 1


class TestRegularization:
    """The TSg -> TSrg example of Section 2."""

    def test_missing_rows_become_gap_points(self):
        # Gap between 500 and 1100 with SI=100 creates five ⊥ points.
        ts = TimeSeries(
            1,
            100,
            [100, 200, 300, 400, 500, 1100],
            [188.45, 181.8, 179.15, 172.4, 169.7, 141.5],
        )
        assert len(ts) == 11
        assert ts.gap_count() == 5

    def test_gap_boundaries_match_definition_5(self):
        ts = TimeSeries(1, 100, [100, 500], [1.0, 2.0])
        assert ts.gaps() == [Gap(100, 500)]

    def test_multiple_gaps(self):
        ts = TimeSeries(1, 10, [0, 30, 60], [1.0, 2.0, 3.0])
        assert ts.gaps() == [Gap(0, 30), Gap(30, 60)]

    def test_already_regular_is_untouched(self):
        ts = make_series(1, [1.0, 2.0, 3.0])
        assert ts.gap_count() == 0
        assert ts.gaps() == []

    def test_explicit_none_gap_points(self):
        ts = make_series(1, [1.0, None, None, 4.0])
        assert ts.gap_count() == 2
        assert ts.gaps() == [Gap(0, 300)]


class TestAccessors:
    def test_value_at(self):
        ts = make_series(1, [1.0, None, 3.0])
        assert ts.value_at(0) == 1.0
        assert ts.value_at(100) is None
        assert ts.value_at(200) == 3.0

    def test_value_at_off_grid_rejected(self):
        ts = make_series(1, [1.0, 2.0])
        with pytest.raises(TimeSeriesError):
            ts.value_at(50)

    def test_value_at_outside_rejected(self):
        ts = make_series(1, [1.0, 2.0])
        with pytest.raises(TimeSeriesError):
            ts.value_at(300)
        with pytest.raises(TimeSeriesError):
            ts.value_at(-100)

    def test_alignment(self):
        ts = TimeSeries(1, 100, [150, 250], [1.0, 2.0])
        assert ts.alignment == 50

    def test_empty_series_has_no_bounds(self):
        ts = TimeSeries(1, 100, [], [])
        with pytest.raises(TimeSeriesError):
            _ = ts.start_time
        with pytest.raises(TimeSeriesError):
            _ = ts.end_time

    def test_bounded_subset(self):
        ts = make_series(1, [1.0, 2.0, 3.0, 4.0, 5.0])
        bounded = ts.bounded(100, 300)
        assert list(bounded.values) == [2.0, 3.0, 4.0]
        assert bounded.start_time == 100

    def test_scaled_values(self):
        ts = make_series(1, [1.0, 2.0], scaling=4.75)
        assert list(ts.scaled_values()) == [4.75, 9.5]

    def test_values_are_read_only(self):
        ts = make_series(1, [1.0, 2.0])
        with pytest.raises(ValueError):
            ts.values[0] = 9.0
        with pytest.raises(ValueError):
            ts.timestamps[0] = 9
