"""The unified observability layer (tier 1).

Covers the metrics registry (catalog enforcement, thread-safe counters
and histograms, the cross-process snapshot/merge path), trace spans
(nesting, timing, zero-cost-when-inactive), the ``EXPLAIN ANALYZE``
stage breakdown, the ``REPRO_PROFILE`` hook, and the empty-histogram
``min`` bugfix (0.0, never ``inf``).
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.obs import (
    CATALOG,
    Histogram,
    MetricsRegistry,
    SpanRecorder,
    annotate,
    current_span,
    maybe_profile,
    set_registry,
    span,
)
from repro.server.metrics import LatencyHistogram


@pytest.fixture
def registry():
    """A fresh process-wide registry, restored after the test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def make_db(n_series: int = 3, n_points: int = 200) -> ModelarDB:
    rng = np.random.default_rng(5)
    db = ModelarDB(Configuration(error_bound=1.0))
    series = [
        TimeSeries(
            tid,
            100,
            np.arange(n_points) * 100,
            np.float32(10 + np.cumsum(rng.normal(0, 0.1, n_points))),
        )
        for tid in range(1, n_series + 1)
    ]
    db.ingest(series)
    return db


# ----------------------------------------------------------------------
# Registry and catalog
# ----------------------------------------------------------------------
class TestCatalogEnforcement:
    def test_undeclared_name_is_refused(self, registry):
        with pytest.raises(KeyError):
            registry.counter("query.made_up_total")

    def test_kind_mismatch_is_refused(self, registry):
        with pytest.raises(TypeError):
            registry.histogram("ingest.points_total")

    def test_label_mismatch_is_refused(self, registry):
        with pytest.raises(ValueError):
            registry.counter("ingest.points_total", model="PMC")
        with pytest.raises(ValueError):
            registry.counter("ingest.segments_total")  # needs model=

    def test_declare_extends_the_catalog(self, registry):
        registry.declare("custom.events_total", "counter")
        registry.counter("custom.events_total").inc(3)
        assert registry.snapshot()["counters"]["custom.events_total"] == 3

    def test_every_catalog_entry_is_instantiable(self, registry):
        for spec in CATALOG.values():
            labels = {name: "x" for name in spec.labels}
            getattr(registry, spec.kind)(spec.name, **labels)


class TestRegistryThreadSafety:
    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("ingest.points_total")
        histogram = registry.histogram("query.execute_seconds")
        n_threads, n_iterations = 8, 2_000

        def work() -> None:
            for _ in range(n_iterations):
                counter.inc()
                histogram.record(0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * n_iterations
        assert histogram.count == n_threads * n_iterations

    def test_concurrent_instrument_creation_yields_one_instrument(
        self, registry
    ):
        instruments = []
        barrier = threading.Barrier(8)

        def create() -> None:
            barrier.wait()
            instruments.append(registry.counter("query.rows_returned_total"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in instruments}) == 1


class TestSnapshotMerge:
    """The cross-process path: workers snapshot, the master merges."""

    def test_counters_add_and_labels_round_trip(self):
        master, worker = MetricsRegistry(), MetricsRegistry()
        master.counter("ingest.points_total").inc(10)
        worker.counter("ingest.points_total").inc(32)
        worker.counter("ingest.segments_total", model="PMC").inc(4)
        master.merge_snapshot(worker.snapshot())
        counters = master.snapshot()["counters"]
        assert counters["ingest.points_total"] == 42
        assert counters["ingest.segments_total{model=PMC}"] == 4

    def test_histograms_fold_buckets_counts_and_extremes(self):
        master, worker = MetricsRegistry(), MetricsRegistry()
        for seconds in (0.001, 0.002):
            master.histogram("query.execute_seconds").record(seconds)
        for seconds in (0.5, 1.5):
            worker.histogram("query.execute_seconds").record(seconds)
        master.merge_snapshot(worker.snapshot())
        merged = master.snapshot()["histograms"]["query.execute_seconds"]
        assert merged["count"] == 4
        assert merged["min_ms"] == pytest.approx(1.0)
        assert merged["max_ms"] == pytest.approx(1500.0)

    def test_merge_is_associative_across_three_processes(self):
        parts = []
        for count in (3, 5, 7):
            part = MetricsRegistry()
            part.counter("query.statements_total").inc(count)
            parts.append(part.snapshot())
        left, right = MetricsRegistry(), MetricsRegistry()
        for snapshot in parts:
            left.merge_snapshot(snapshot)
        for snapshot in reversed(parts):
            right.merge_snapshot(snapshot)
        assert left.snapshot() == right.snapshot()

    def test_snapshot_is_json_clean(self, registry):
        import json

        registry.counter("ingest.points_total").inc(5)
        registry.histogram("ingest.flush_seconds").record(0.01)
        json.dumps(registry.snapshot())


# ----------------------------------------------------------------------
# The empty-histogram min bugfix and the LatencyHistogram re-export
# ----------------------------------------------------------------------
class TestHistogramMin:
    def test_empty_histogram_reports_zero_not_inf(self):
        histogram = Histogram()
        assert histogram.min == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["min_ms"] == 0.0
        assert not math.isinf(snapshot["min_ms"])

    def test_min_tracks_smallest_observation_once_recorded(self):
        histogram = Histogram()
        histogram.record(0.25)
        histogram.record(0.01)
        assert histogram.min == pytest.approx(0.01)

    def test_latency_histogram_is_the_obs_histogram(self):
        assert LatencyHistogram is Histogram


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_span_without_recorder_is_a_noop(self):
        with span("orphan") as opened:
            assert opened is None
        annotate(ignored=True)  # must not raise
        assert current_span() is None

    def test_nesting_and_timing(self):
        recorder = SpanRecorder("root")
        with recorder:
            with span("outer", flavor="a"):
                with span("inner"):
                    annotate(rows=7)
        tree = list(recorder.root.walk())
        assert [(depth, s.name) for depth, s in tree] == [
            (0, "root"), (1, "outer"), (2, "inner")
        ]
        outer, inner = tree[1][1], tree[2][1]
        assert outer.meta == {"flavor": "a"}
        assert inner.meta == {"rows": 7}
        assert recorder.root.elapsed >= outer.elapsed >= inner.elapsed >= 0
        assert current_span() is None  # recorder closed cleanly

    def test_nested_recorders_shadow_and_restore(self):
        outer = SpanRecorder("outer")
        with outer:
            inner = SpanRecorder("inner")
            with inner:
                with span("stage"):
                    pass
            with span("after"):
                pass
        assert [s.name for _, s in inner.root.walk()] == ["inner", "stage"]
        assert [s.name for _, s in outer.root.walk()] == ["outer", "after"]

    def test_to_dict_shape(self):
        recorder = SpanRecorder("q")
        with recorder:
            with span("stage", rows=1):
                pass
        payload = recorder.root.to_dict()
        assert payload["name"] == "q"
        assert payload["children"][0]["meta"] == {"rows": 1}
        assert payload["children"][0]["elapsed_ms"] >= 0


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_stage_breakdown_shape(self, registry):
        db = make_db()
        report = db.sql("EXPLAIN ANALYZE SELECT COUNT_S(*) FROM Segment")
        stages = [row["stage"].strip() for row in report]
        assert stages == ["parse", "plan", "scan", "finalize", "total"]
        for row in report:
            assert set(row) == {"stage", "ms", "rows", "detail"}
            assert row["ms"] >= 0.0
        total = report[-1]
        assert total["rows"] == 1  # COUNT_S(*) returns one row
        plan_detail = report[stages.index("plan")]["detail"]
        assert "partitions=" in plan_detail

    def test_statement_really_runs_and_total_dominates(self, registry):
        db = make_db()
        report = db.sql(
            "EXPLAIN ANALYZE SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid"
        )
        total = report[-1]
        assert total["rows"] == len(
            db.sql("SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid")
        )
        stage_ms = sum(row["ms"] for row in report[:-1])
        assert total["ms"] >= stage_ms * 0.5  # stages nest under total

    def test_case_insensitive_and_multiline(self, registry):
        db = make_db()
        report = db.sql(
            "explain analyze\nSELECT COUNT(*) FROM DataPoint WHERE Tid = 1"
        )
        assert report[-1]["stage"] == "total"


# ----------------------------------------------------------------------
# Layer instrumentation lands in the registry
# ----------------------------------------------------------------------
class TestEndToEndCounters:
    def test_ingest_query_and_storage_record(self, registry):
        db = make_db()
        db.sql("SELECT COUNT_S(*) FROM Segment")
        counters = registry.snapshot()["counters"]
        assert counters["ingest.points_total"] == 3 * 200
        assert counters["storage.segments_written_total"] > 0
        assert counters["query.statements_total"] >= 1
        assert counters["query.segments_scanned_total"] > 0
        model_segments = sum(
            value
            for name, value in counters.items()
            if name.startswith("ingest.segments_total{")
        )
        assert model_segments == counters["storage.segments_written_total"]
        histograms = registry.snapshot()["histograms"]
        assert histograms["ingest.flush_seconds"]["count"] > 0
        assert histograms["query.execute_seconds"]["count"] >= 1


# ----------------------------------------------------------------------
# Profiling hook
# ----------------------------------------------------------------------
class TestMaybeProfile:
    def test_noop_when_unset(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with maybe_profile():
            pass
        assert capsys.readouterr().err == ""

    def test_profiles_and_dumps_when_set(self, monkeypatch, tmp_path):
        out_path = tmp_path / "profile.pstats"
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_PROFILE_OUT", str(out_path))
        import io

        buffer = io.StringIO()
        with maybe_profile(out=buffer):
            sum(range(1000))
        assert out_path.exists()
        assert "REPRO_PROFILE summary" in buffer.getvalue()
