"""Gorilla: lossless XOR compression with group blocks."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.models.base import to_float32
from repro.models.gorilla import Gorilla


@pytest.fixture
def gorilla():
    return Gorilla()


def round_trip(gorilla, vectors):
    fitter = gorilla.fitter(len(vectors[0]), 0.0, max(len(vectors), 1))
    for vector in vectors:
        assert fitter.append(tuple(float(v) for v in vector))
    model = gorilla.decode(fitter.parameters(), len(vectors[0]), len(vectors))
    return fitter, model.values()


class TestLossless:
    def test_single_series_round_trip(self, gorilla):
        rng = np.random.default_rng(0)
        values = np.float32(rng.normal(100, 10, 100)).reshape(-1, 1)
        _, decoded = round_trip(gorilla, values)
        assert np.array_equal(np.float32(decoded), np.float32(values))

    def test_group_round_trip(self, gorilla):
        rng = np.random.default_rng(1)
        values = np.float32(rng.normal(0, 1, (40, 4)))
        _, decoded = round_trip(gorilla, values)
        assert np.array_equal(np.float32(decoded), values)

    def test_identical_values_compress_to_control_bits(self, gorilla):
        _, decoded = round_trip(gorilla, [[1.5]] * 64)
        # 32 bits + 63 zero bits = 95 bits -> 12 bytes.
        fitter = gorilla.fitter(1, 0.0, 64)
        for _ in range(64):
            fitter.append((1.5,))
        assert fitter.size_bytes() == 12

    def test_special_values(self, gorilla):
        values = [[0.0], [-0.0], [float(np.float32(1e38))], [1e-38], [-5.5]]
        _, decoded = round_trip(gorilla, values)
        expected = [to_float32(v[0]) for v in values]
        assert [decoded[i, 0] for i in range(5)] == expected

    def test_alternating_extremes(self, gorilla):
        values = [[1e30 if i % 2 else -1e-30] for i in range(20)]
        _, decoded = round_trip(gorilla, values)
        for i in range(20):
            assert decoded[i, 0] == to_float32(values[i][0])

    def test_correlated_group_smaller_than_independent(self, gorilla):
        rng = np.random.default_rng(2)
        base = np.float32(100 + np.cumsum(rng.normal(0, 0.01, 50)))
        correlated = np.column_stack([base, base, base])
        fitter = gorilla.fitter(3, 0.0, 50)
        for row in correlated:
            fitter.append(tuple(float(v) for v in row))
        independent = gorilla.fitter(1, 0.0, 50)
        for value in base:
            independent.append((float(value),))
        # One group stream beats three separate streams' worth of bytes.
        assert fitter.size_bytes() < 3 * independent.size_bytes()


class TestBehaviour:
    def test_always_fits_any_values(self, gorilla):
        assert gorilla.always_fits
        fitter = gorilla.fitter(2, 0.0, 50)
        rng = np.random.default_rng(3)
        for _ in range(50):
            assert fitter.append(tuple(rng.normal(0, 1e10, 2)))

    def test_length_limit_is_the_only_rejection(self, gorilla):
        fitter = gorilla.fitter(1, 0.0, 3)
        assert fitter.append((1.0,))
        assert fitter.append((2.0,))
        assert fitter.append((3.0,))
        assert not fitter.append((4.0,))

    def test_minimum_size_bound_holds(self, gorilla):
        rng = np.random.default_rng(4)
        for n in (1, 2, 10, 100):
            fitter = gorilla.fitter(1, 0.0, n)
            for _ in range(n):
                fitter.append((float(rng.normal()),))
            assert fitter.size_bytes() >= gorilla.minimum_size_bytes(n)

    def test_minimum_size_is_tight_for_constants(self, gorilla):
        fitter = gorilla.fitter(1, 0.0, 100)
        for _ in range(100):
            fitter.append((7.25,))
        assert fitter.size_bytes() == gorilla.minimum_size_bytes(100)

    def test_empty_fitter_cannot_encode(self, gorilla):
        with pytest.raises(ModelError):
            gorilla.fitter(1, 0.0, 50).parameters()

    def test_not_constant_time(self, gorilla):
        fitter = gorilla.fitter(1, 0.0, 4)
        for value in (1.0, 2.0, 3.0):
            fitter.append((value,))
        model = gorilla.decode(fitter.parameters(), 1, 3)
        assert not model.constant_time_aggregates

    def test_slice_aggregates_via_reconstruction(self, gorilla):
        fitter = gorilla.fitter(1, 0.0, 10)
        for value in (1.0, 5.0, 3.0, 2.0):
            fitter.append((value,))
        model = gorilla.decode(fitter.parameters(), 1, 4)
        assert model.slice_sum(0, 3, 0) == 11.0
        assert model.slice_min(1, 3, 0) == 2.0
        assert model.slice_max(0, 2, 0) == 5.0

    def test_decode_truncated_stream_raises(self, gorilla):
        fitter = gorilla.fitter(1, 0.0, 10)
        for value in (1.0, 2.0, 3.0):
            fitter.append((value,))
        params = fitter.parameters()
        model = gorilla.decode(params, 1, 30)  # claims 30 values
        with pytest.raises(ModelError):
            model.values()
