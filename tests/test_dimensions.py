"""Dimensions and LCA (Definition 7, Fig. 7)."""

import pytest

from repro.core import TOP, Dimension, DimensionSet, build_dimension
from repro.core.errors import DimensionError


class TestStructure:
    def test_level_numbering_follows_definition_7(self, location_dimension):
        # Level 0 is ⊤, level 1 the coarsest (Country), level 4 the
        # most detailed (Turbine).
        d = location_dimension
        assert d.level_names[0] == TOP
        assert d.level_names[1] == "Country"
        assert d.level_names[4] == "Turbine"
        assert d.depth == 4

    def test_level_lookup_by_name(self, location_dimension):
        assert location_dimension.level_number("Park") == 3

    def test_unknown_level_name_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.level_number("Continent")

    def test_out_of_range_level_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.level_number(5)

    def test_empty_levels_rejected(self):
        with pytest.raises(DimensionError):
            Dimension("X", [])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(DimensionError):
            Dimension("X", ["A", "A"])


class TestMembers:
    def test_member_at_levels(self, location_dimension):
        # member(TS) is the most detailed member; parent() climbs.
        d = location_dimension
        assert d.member(3, 4) == "9634"
        assert d.member(3, "Park") == "Aalborg"
        assert d.member(3, 1) == "Denmark"
        assert d.member(3, 0) == TOP

    def test_parent_climbs_one_level(self, location_dimension):
        d = location_dimension
        assert d.parent(3, 4) == "Aalborg"
        assert d.parent(3, 1) == TOP
        assert d.parent(3, 0) == TOP  # parent(⊤) = ⊤

    def test_wrong_member_count_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.assign(9, ("a", "b"))

    def test_conflicting_reassignment_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.assign(1, ("x", "y", "z", "w"))

    def test_identical_reassignment_allowed(self, location_dimension):
        location_dimension.assign(1, ("9572", "Farsø", "Nordjylland", "Denmark"))

    def test_unassigned_tid_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.member(42, 1)

    def test_tids_with_member(self, location_dimension):
        assert location_dimension.tids_with_member("Park", "Aalborg") == {2, 3}
        assert location_dimension.tids_with_member(1, "Denmark") == {1, 2, 3}

    def test_members_at_level(self, location_dimension):
        assert location_dimension.members_at_level("Park") == {
            "Farsø",
            "Aalborg",
        }

    def test_path_is_coarsest_first(self, location_dimension):
        assert location_dimension.path(1) == (
            "Denmark",
            "Nordjylland",
            "Farsø",
            "9572",
        )


class TestLCA:
    def test_paper_example(self, location_dimension):
        # Fig. 7: the LCA of Tid=2 and Tid=3 is the Park member Aalborg
        # at level 3.
        assert location_dimension.lca_level([2], [3]) == 3

    def test_lca_across_parks(self, location_dimension):
        # Tids 1 and 2 share only Region (level 2).
        assert location_dimension.lca_level([1], [2]) == 2

    def test_lca_of_identical_groups_is_depth(self, location_dimension):
        assert location_dimension.lca_level([2], [2]) == 4

    def test_lca_over_groups_uses_all_members(self, location_dimension):
        # Group {2,3} vs {1}: group members disagree below Region.
        assert location_dimension.lca_level([2, 3], [1]) == 2

    def test_lca_of_empty_groups_rejected(self, location_dimension):
        with pytest.raises(DimensionError):
            location_dimension.lca_level([], [])


class TestDimensionSet:
    def test_column_names_unique_levels(self, dimensions):
        # One column per (dimension, level), coarsest level first.
        assert dimensions.column_names() == [
            "Country",
            "Region",
            "Park",
            "Turbine",
            "Category",
            "Concrete",
        ]

    def test_column_names_qualified_on_collision(self):
        a = Dimension("A", ["Entity", "Type"])
        b = Dimension("B", ["Entity", "Kind"])
        ds = DimensionSet([a, b])
        assert "A.Entity" in ds.column_names()
        assert "B.Entity" in ds.column_names()

    def test_row_denormalises_all_dimensions(self, dimensions):
        row = dimensions.row(2)
        assert row["Park"] == "Aalborg"
        assert row["Category"] == "Temperature"

    def test_resolve_column(self, dimensions):
        dimension, level = dimensions.resolve_column("Park")
        assert dimension.name == "Location"
        assert level == 3

    def test_resolve_qualified_column(self):
        a = Dimension("A", ["Entity", "Type"])
        b = Dimension("B", ["Entity", "Kind"])
        ds = DimensionSet([a, b])
        dimension, level = ds.resolve_column("B.Entity")
        assert dimension.name == "B"

    def test_resolve_unknown_column_rejected(self, dimensions):
        with pytest.raises(DimensionError):
            dimensions.resolve_column("Nope")

    def test_resolve_ambiguous_column_rejected(self):
        a = Dimension("A", ["Entity", "Type"])
        b = Dimension("B", ["Entity", "Kind"])
        ds = DimensionSet([a, b])
        with pytest.raises(DimensionError):
            ds.resolve_column("Entity")

    def test_duplicate_dimension_rejected(self, location_dimension):
        ds = DimensionSet([location_dimension])
        with pytest.raises(DimensionError):
            ds.add(Dimension("Location", ["X"]))

    def test_tids_with_member_via_columns(self, dimensions):
        assert dimensions.tids_with_member("Category", "Temperature") == {1, 2}

    def test_tids_with_any_member(self, dimensions):
        assert dimensions.tids_with_any_member("Aalborg") == {2, 3}

    def test_build_dimension_helper(self):
        d = build_dimension("M", ["Concrete"], {1: ("a",), 2: ("b",)})
        assert d.member(1, 1) == "a"
        assert d.tids() == [1, 2]
