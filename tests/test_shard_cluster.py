"""Sharded serving tier end to end: fleets, crashes, rebalancing (slow).

The acceptance scenarios for the sharded tier, all on real worker
processes (``pytest -m slow``):

* a 4-worker / 2-replica fleet answers exactly like a no-fault sharded
  run *and* like the sequential engine (exact for order-free
  aggregates, ``approx`` for SUM/AVG whose float fold order differs);
* a worker crash mid-scatter is survived without losing a single
  query: the replica answers, the dead worker is retired (generation
  bump), and the merged rows are bit-identical to the no-crash run;
* under skewed load the rebalancer moves the hot shard to the coldest
  worker, bumps the generation, and answers stay correct;
* the same guarantees hold through the full serving stack — a
  :class:`QueryServer` over a :class:`ShardedDispatcher` with
  concurrent clients reports zero errors while a worker dies mid-run.
"""

from __future__ import annotations

import threading

import pytest

from repro import Configuration, ModelarDB
from repro.cluster import FaultPlan
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.server import QueryServer, ServerClient, ServerThread
from repro.shard import ShardedCluster, ShardedDispatcher

STATEMENTS = (
    "SELECT COUNT(*) FROM DataPoint",
    "SELECT MIN(Value), MAX(Value) FROM DataPoint",
    "SELECT SUM(Value), AVG(Value) FROM DataPoint",
    "SELECT Entity, SUM(Value) FROM DataPoint GROUP BY Entity",
)

#: Aggregates whose value is independent of the partial-merge order.
ORDER_FREE = ("COUNT", "MIN", "MAX")


@pytest.fixture(scope="module")
def ep():
    return generate_ep(
        n_entities=6, measures_per_entity=3, n_points=600,
        gap_probability=0.001, seed=11,
    )


@pytest.fixture(scope="module")
def ep_config():
    return Configuration(error_bound=1.0, correlation=list(EP_CORRELATION))


@pytest.fixture(scope="module")
def reference(ep, ep_config):
    db = ModelarDB(ep_config, dimensions=ep.dimensions)
    db.ingest(ep.series)
    return db


@pytest.fixture(scope="module")
def baseline(ep, ep_config):
    """Rows from a no-fault sharded run: the bit-identity reference for
    every same-substrate comparison (identical fold structure)."""
    with ShardedCluster(
        4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
    ) as tier:
        tier.ingest(ep.series)
        return {sql: tier.sql(sql)[0] for sql in STATEMENTS}


def assert_rows_close(rows, expected_rows):
    """Exact for order-independent aggregates, approx for SUM/AVG."""
    assert len(rows) == len(expected_rows)
    for got, expected in zip(rows, expected_rows):
        assert set(got) == set(expected)
        for column, value in expected.items():
            if isinstance(value, float) and not any(
                column.upper().startswith(name) for name in ORDER_FREE
            ):
                assert got[column] == pytest.approx(value, rel=1e-9)
            else:
                assert got[column] == value


@pytest.mark.slow
class TestShardedEndToEnd:
    def test_four_workers_two_replicas_match_references(
        self, ep, ep_config, reference, baseline
    ):
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
        ) as tier:
            tier.ingest(ep.series)
            assert len(tier.live_worker_ids) == 4
            for sql in STATEMENTS:
                rows, report = tier.sql(sql)
                assert rows == baseline[sql]  # same substrate: exact
                assert_rows_close(rows, reference.sql(sql))
                assert report.retries == 0
                assert report.recovered_shards == []
                assert report.subqueries >= 1

    def test_load_storage_fleet_matches_source(
        self, ep, ep_config, reference
    ):
        """Sharding an existing store answers like the store itself."""
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
        ) as tier:
            placement = tier.load_storage(reference.storage)
            assert placement["segments"] == (
                reference.storage.segment_count()
            )
            for sql in STATEMENTS:
                rows, _ = tier.sql(sql)
                assert rows == reference.sql(sql)  # same store: exact

    def test_tid_routed_query_prunes_shards(self, ep, ep_config):
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
        ) as tier:
            tier.ingest(ep.series)
            full_plan = tier.sql(STATEMENTS[0])[1].subqueries
            victim = min(tier.tids)
            shard = next(
                s for s, tids in tier._shard_tids.items()
                if victim in tids
            )
            sql = f"SELECT COUNT(*) FROM DataPoint WHERE Tid = {victim}"
            rows, report = tier.sql(sql)
            assert report.subqueries == 1 < full_plan
            assert report.shard_seconds.keys() == {shard}
            assert rows[0]["COUNT(*)"] > 0


@pytest.mark.slow
class TestCrashFailover:
    def test_crash_mid_scatter_loses_no_queries(
        self, ep, ep_config, reference, baseline
    ):
        """Worker 1 dies on its second execute; every query still
        answers, bit-identical to the no-crash sharded run."""
        plan = FaultPlan.crash_after(1, after=1, method="execute")
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions,
            fault_plan=plan, timeout=3.0,
        ) as tier:
            tier.ingest(ep.series)
            generation = tier.generation
            reports = []
            for sql in STATEMENTS:
                rows, report = tier.sql(sql)
                reports.append(report)
                assert rows == baseline[sql]  # bit-identical
            # COUNT is order-free: exact against the unsharded engine.
            count_rows, _ = tier.sql(STATEMENTS[0])
            assert count_rows == reference.sql(STATEMENTS[0])
            assert tier.lost_workers == 1
            assert 1 not in tier.live_worker_ids
            assert tier.generation > generation
            assert sum(r.retries for r in reports) >= 1
            # Later queries ride on the survivors without further drama.
            rows, report = tier.sql(STATEMENTS[2])
            assert rows == baseline[STATEMENTS[2]]
            assert report.retries == 0

    def test_single_replica_shard_is_recovered_by_reshipping(
        self, ep, ep_config, baseline
    ):
        """With n_replicas=1 a crash orphans whole shards; the tier
        re-ships their retained payloads to survivors and answers."""
        plan = FaultPlan.crash_after(1, after=0, method="execute")
        with ShardedCluster(
            4, n_replicas=1, config=ep_config, dimensions=ep.dimensions,
            fault_plan=plan, timeout=3.0,
        ) as tier:
            tier.ingest(ep.series)
            orphans = [
                shard for shard in tier._shard_tids
                if tier.map.owners_of(shard) == (1,)
            ]
            rows, report = tier.sql(STATEMENTS[0])
            assert rows == baseline[STATEMENTS[0]]
            assert tier.lost_workers == 1
            if orphans:  # worker 1 owned a populated shard
                assert report.recovered_shards
                assert tier.map.orphaned_shards() == []
            for sql in STATEMENTS[1:]:
                assert tier.sql(sql)[0] == baseline[sql]


@pytest.mark.slow
class TestRebalance:
    def test_hot_shard_moves_to_coldest_worker(
        self, ep, ep_config, baseline
    ):
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
        ) as tier:
            tier.ingest(ep.series)
            shards = sorted(tier._shard_tids)
            hot, cold = shards[0], shards[1]
            hot_tids = sorted(tier._shard_tids[hot])
            cold_tids = sorted(tier._shard_tids[cold])
            hot_sql = (
                "SELECT SUM(Value) FROM DataPoint WHERE Tid IN "
                f"({', '.join(map(str, hot_tids))})"
            )
            cold_sql = (
                "SELECT SUM(Value) FROM DataPoint WHERE Tid IN "
                f"({', '.join(map(str, cold_tids))})"
            )
            tier.sql(cold_sql)
            for _ in range(8):
                tier.sql(hot_sql)
            # Wall-clock noise (first-touch cache warmup dwarfs these
            # sub-millisecond scans) must not decide the assertion: top
            # the measured window up with a decisive synthetic spike on
            # the hot shard's primary.
            tier._note_busy(hot, tier.map.owners_of(hot)[0], 5.0)
            generation = tier.generation
            old_owners = tier.map.owners_of(hot)
            moves = tier.rebalance(threshold=1.2)
            assert moves and moves[0][0] == hot
            new_owners = tier.map.owners_of(hot)
            assert new_owners != old_owners
            assert new_owners[0] == moves[0][2]
            assert new_owners[0] not in old_owners
            assert tier.generation > generation
            assert tier.rebalances == len(moves)
            # The moved shard answers identically from its new primary.
            for sql in STATEMENTS:
                assert tier.sql(sql)[0] == baseline[sql]

    def test_balanced_load_does_not_move(self, ep, ep_config):
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions
        ) as tier:
            tier.ingest(ep.series)
            for _ in range(3):
                tier.sql(STATEMENTS[0])  # every shard works equally
            assert tier.rebalance(threshold=3.0) == []
            assert tier.generation == 0

    def test_auto_rebalance_hook_runs_on_interval(
        self, ep, ep_config, baseline
    ):
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions,
            auto_rebalance_interval=2,
        ) as tier:
            tier.ingest(ep.series)
            tier.sql(STATEMENTS[0])
            assert tier.queries == 1
            # Off the interval: always a no-op, regardless of skew.
            assert tier.maybe_rebalance() == []
            assert tier.generation == 0
            tier.sql(STATEMENTS[1])
            # On the interval the window is *evaluated*; whether two
            # warmup-noisy samples cross the hot threshold is not
            # deterministic, so assert the bookkeeping, not the verdict.
            moves = tier.maybe_rebalance()
            assert tier.rebalances == len(moves)
            assert tier.generation == len(moves)
            # Either way every statement still answers bit-identically.
            for sql in STATEMENTS:
                assert tier.sql(sql)[0] == baseline[sql]


@pytest.mark.slow
class TestServedSharded:
    def test_concurrent_clients_survive_worker_crash(
        self, ep, ep_config, reference, baseline
    ):
        """The full stack: 8 concurrent clients over a served sharded
        tier, worker 2 dying mid-run — zero client-visible errors."""
        plan = FaultPlan.crash_after(2, after=2, method="execute")
        n_clients, turns = 8, 6
        with ShardedCluster(
            4, n_replicas=2, config=ep_config, dimensions=ep.dimensions,
            fault_plan=plan, timeout=3.0,
        ) as tier:
            tier.ingest(ep.series)
            dispatcher = ShardedDispatcher(
                tier, result_cache_capacity=0
            )
            thread = ServerThread(QueryServer(dispatcher))
            host, port = thread.start()
            failures: list[str] = []

            def client_run(client_id: int) -> None:
                try:
                    with ServerClient(host, port) as client:
                        for turn in range(turns):
                            sql = STATEMENTS[
                                (client_id + turn) % len(STATEMENTS)
                            ]
                            rows = client.query(sql, timeout=30.0)
                            if rows != baseline[sql]:
                                failures.append(
                                    f"client {client_id}: {sql!r} diverged"
                                )
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(f"client {client_id}: {error!r}")

            try:
                threads = [
                    threading.Thread(
                        target=client_run, args=(i,), daemon=True
                    )
                    for i in range(n_clients)
                ]
                for worker in threads:
                    worker.start()
                for worker in threads:
                    worker.join(timeout=120)
            finally:
                thread.stop()
            assert failures == []
            assert tier.lost_workers == 1
            assert 2 not in tier.live_worker_ids
