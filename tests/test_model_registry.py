"""The model registry and user-defined model extension API."""

import struct

import pytest

from repro.core.errors import UnknownModelError
from repro.models import (
    FittedModel,
    ModelFitter,
    ModelRegistry,
    ModelType,
    select_best,
)
from repro.models.pmc_mean import PMCMean


class _MeanFitter(ModelFitter):
    """A toy user-defined model: stores the running mean, unbounded error."""

    def __init__(self, n_columns, error_bound, length_limit):
        super().__init__(n_columns, error_bound, length_limit)
        self._sum = 0.0
        self._count = 0

    def _try_append(self, values):
        self._sum += sum(values)
        self._count += len(values)
        return True

    def parameters(self):
        return struct.pack("<f", self._sum / self._count)


class _FittedMean(FittedModel):
    def __init__(self, value, n_columns, length):
        super().__init__(n_columns, length)
        self._value = value

    def values(self):
        import numpy as np

        return np.full((self.length, self.n_columns), self._value)


class UserMean(ModelType):
    """Registered under a classpath-style name, like the paper's API."""

    name = "com.example.UserMean"

    def fitter(self, n_columns, error_bound, length_limit):
        return _MeanFitter(n_columns, error_bound, length_limit)

    def decode(self, parameters, n_columns, length):
        (value,) = struct.unpack("<f", parameters)
        return _FittedMean(value, n_columns, length)


class TestRegistry:
    def test_default_models_registered(self, registry):
        assert registry.model_table() == {1: "PMC", 2: "Swing", 3: "Gorilla"}

    def test_mids_are_stable(self, registry):
        assert registry.mid_of("PMC") == 1
        assert registry.mid_of("Swing") == 2
        assert registry.mid_of("Gorilla") == 3

    def test_lookup_by_mid_and_name(self, registry):
        assert registry.by_mid(1).name == "PMC"
        assert registry.by_name("Gorilla").name == "Gorilla"

    def test_unknown_name_rejected(self, registry):
        with pytest.raises(UnknownModelError):
            registry.mid_of("NoSuchModel")

    def test_unknown_mid_rejected(self, registry):
        with pytest.raises(UnknownModelError):
            registry.by_mid(99)

    def test_user_defined_model_registration(self):
        registry = ModelRegistry([UserMean()])
        mid = registry.mid_of("com.example.UserMean")
        assert mid == 4
        assert registry.model_table()[4] == "com.example.UserMean"

    def test_duplicate_registration_is_idempotent(self, registry):
        first = registry.register(PMCMean())
        assert first == 1
        assert len(registry.model_table()) == 3

    def test_nameless_model_rejected(self, registry):
        class Nameless(UserMean):
            name = ""

        with pytest.raises(UnknownModelError):
            registry.register(Nameless())

    def test_user_model_in_cascade_round_trip(self):
        registry = ModelRegistry([UserMean()])
        fitters = registry.fitters(
            ("com.example.UserMean",), n_columns=2, error_bound=0.0,
            length_limit=10,
        )
        (mid, fitter), = fitters
        for value in (1.0, 2.0, 3.0):
            fitter.append((value, value))
        model = registry.decode(mid, fitter.parameters(), 2, 3)
        assert model.values()[0, 0] == pytest.approx(2.0)

    def test_fitters_preserve_cascade_order(self, registry):
        fitters = registry.fitters(("Swing", "PMC"), 1, 0.0, 10)
        assert [mid for mid, _ in fitters] == [2, 1]


class TestSelection:
    def test_best_ratio_wins(self, registry):
        pmc = registry.by_name("PMC").fitter(1, 10.0, 50)
        swing = registry.by_name("Swing").fitter(1, 10.0, 50)
        for value in (10.0, 10.0, 10.0):
            pmc.append((value,))
            swing.append((value,))
        # Same coverage; PMC's 4 bytes beat Swing's 8.
        mid, best = select_best([(2, swing), (1, pmc)])
        assert mid == 1

    def test_longer_coverage_beats_smaller_model(self, registry):
        pmc = registry.by_name("PMC").fitter(1, 1.0, 50)
        swing = registry.by_name("Swing").fitter(1, 1.0, 50)
        pmc.append((0.0,))
        for i in range(40):
            swing.append((float(i),))
        mid, best = select_best([(1, pmc), (2, swing)])
        assert mid == 2

    def test_empty_candidates_rejected(self, registry):
        from repro.core.errors import ModelError

        pmc = registry.by_name("PMC").fitter(1, 1.0, 50)
        with pytest.raises(ModelError):
            select_best([(1, pmc)])  # zero-length candidate only
