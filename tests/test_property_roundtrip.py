"""Property-based round-trips for the Gorilla codec and bit I/O.

Gorilla is the lossless fallback model: whatever float32 stream
ingestion throws at it must decode to bit-identical values, including
NaNs, infinities, denormals, constant runs (the 0-bit XOR path) and
adversarial sign flips whose XOR touches all 32 bits. Equality is
checked on the packed float32 bytes, not ``==``, so NaNs and signed
zeros are compared bit-for-bit.

Uses hypothesis when installed; otherwise the same properties run over
seeded pseudo-random streams so the suite stays meaningful without the
dependency.
"""

import random
import struct

import pytest

from repro.core.errors import ModelError
from repro.models.bits import BitReader, BitWriter
from repro.models.gorilla import (
    FittedGorilla,
    GorillaFitter,
    _bits_to_float,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

_F32 = struct.Struct("<f")


def pack32(value: float) -> bytes:
    return _F32.pack(value)


def roundtrip(values, n_columns=1):
    """Encode ``values`` (flattened column-order) and decode; compare
    every value on its float32 bit pattern."""
    assert len(values) % n_columns == 0
    fitter = GorillaFitter(n_columns, 0.0, max(1, len(values)))
    for start in range(0, len(values), n_columns):
        assert fitter.append(values[start:start + n_columns])
    fitted = FittedGorilla(
        fitter.parameters(), n_columns, fitter.length
    )
    decoded = fitted.values().reshape(-1)
    assert len(decoded) == len(values)
    for got, expected in zip(decoded, values):
        assert pack32(got) == pack32(expected)


def random_floats(rng: random.Random, size: int) -> list[float]:
    """Arbitrary float32 values drawn from raw bit patterns: covers
    NaNs, infinities, denormals and both zeros by construction."""
    return [
        _bits_to_float(rng.getrandbits(32)) for _ in range(size)
    ]


# -- hand-picked adversarial streams (always run) ----------------------

ADVERSARIAL_STREAMS = {
    "constant": [1.5] * 50,
    "constant-nan": [float("nan")] * 20,
    "zero-and-negative-zero": [0.0, -0.0] * 25,
    "sign-flips": [1.0, -1.0, 2.0, -2.0] * 10,
    # XOR of these two patterns is 0xFFFFFFFF: all 32 bits meaningful.
    "all-bits-differ": [
        _bits_to_float(0x00000000), _bits_to_float(0xFFFFFFFF)
    ] * 8,
    "nan-bearing": [1.0, float("nan"), 2.0, float("inf"),
                    float("-inf"), -0.0, 3.5] * 5,
    "denormals": [_bits_to_float(1), _bits_to_float(0x007FFFFF)] * 10,
    "single-value": [3.14159],
    "window-shrink": [
        _bits_to_float(p)
        for p in (0x40490FDB, 0x40490FDC, 0x40490FDB, 0x7FC00000,
                  0x40490FDB, 0x00000001)
    ],
}


@pytest.mark.parametrize(
    "values", ADVERSARIAL_STREAMS.values(), ids=ADVERSARIAL_STREAMS.keys()
)
def test_gorilla_adversarial_streams(values):
    roundtrip(list(values))


@pytest.mark.parametrize("n_columns", [2, 3])
def test_gorilla_group_columns(n_columns):
    rng = random.Random(1234 + n_columns)
    base = [20.0 + i * 0.25 for i in range(60)]
    flat = []
    for value in base:
        for column in range(n_columns):
            flat.append(
                float(struct.unpack(
                    "<f", pack32(value + rng.random() * 1e-3)
                )[0])
            )
    roundtrip(flat, n_columns=n_columns)


# -- the round-trip property -------------------------------------------

if HAVE_HYPOTHESIS:

    @given(
        st.lists(
            st.floats(width=32, allow_nan=True, allow_infinity=True),
            min_size=1,
            max_size=128,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_gorilla_roundtrip_property(values):
        roundtrip(values)

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=128)
    )
    @settings(max_examples=120, deadline=None)
    def test_gorilla_roundtrip_raw_patterns(patterns):
        roundtrip([_bits_to_float(p) for p in patterns])

    @given(
        st.lists(
            st.tuples(st.integers(0, 64), st.integers(0, 2**64 - 1)),
            max_size=64,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_bit_writer_reader_property(fields):
        writer = BitWriter()
        expected = []
        for bits, raw in fields:
            value = raw & ((1 << bits) - 1) if bits else 0
            writer.write(value, bits)
            expected.append((bits, value))
        reader = BitReader(writer.to_bytes())
        for bits, value in expected:
            assert reader.read(bits) == value

else:  # pragma: no cover - hypothesis is available in CI

    @pytest.mark.parametrize("seed", range(40))
    def test_gorilla_roundtrip_property(seed):
        rng = random.Random(9000 + seed)
        roundtrip(random_floats(rng, rng.randrange(1, 129)))

    @pytest.mark.parametrize("seed", range(40))
    def test_gorilla_roundtrip_raw_patterns(seed):
        rng = random.Random(7000 + seed)
        roundtrip(random_floats(rng, rng.randrange(1, 129)))

    @pytest.mark.parametrize("seed", range(40))
    def test_bit_writer_reader_property(seed):
        rng = random.Random(5000 + seed)
        writer = BitWriter()
        expected = []
        for _ in range(rng.randrange(0, 65)):
            bits = rng.randrange(0, 65)
            value = rng.getrandbits(bits) if bits else 0
            writer.write(value, bits)
            expected.append((bits, value))
        reader = BitReader(writer.to_bytes())
        for bits, value in expected:
            assert reader.read(bits) == value


# -- bit codec edge cases (always run) ---------------------------------

class TestBitEdgeCases:
    def test_zero_bit_write_is_a_noop(self):
        writer = BitWriter()
        writer.write(0, 0)
        assert writer.bit_length == 0
        assert writer.to_bytes() == b""
        assert BitReader(b"").read(0) == 0

    def test_full_64_bit_write(self):
        value = 0xFEDCBA9876543210
        writer = BitWriter()
        writer.write(value, 64)
        assert writer.bit_length == 64
        assert BitReader(writer.to_bytes()).read(64) == value

    def test_64_bits_across_byte_boundaries(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write(2**64 - 1, 64)
        writer.write_bit(0)
        reader = BitReader(writer.to_bytes())
        assert reader.read_bit() == 1
        assert reader.read(64) == 2**64 - 1
        assert reader.read_bit() == 0

    def test_write_rejects_out_of_range(self):
        writer = BitWriter()
        with pytest.raises(ModelError):
            writer.write(0, 65)
        with pytest.raises(ModelError):
            writer.write(0, -1)
        with pytest.raises(ModelError):
            writer.write(2, 1)
        with pytest.raises(ModelError):
            writer.write(-1, 8)

    def test_reader_raises_when_exhausted(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        reader = BitReader(writer.to_bytes())
        reader.read(3)
        # The zero padding added by to_bytes is readable bits, so only
        # reading beyond the padded byte fails.
        reader.read(5)
        with pytest.raises(ModelError):
            reader.read(1)

    def test_zero_xor_uses_one_bit(self):
        """A constant stream costs 32 bits + one control bit per repeat."""
        fitter = GorillaFitter(1, 0.0, 100)
        for _ in range(33):
            assert fitter.append([42.0])
        assert fitter._writer.bit_length == 32 + 32
