"""Cross-process serialization and partial-merge algebra.

The process-parallel cluster ships three object families over its RPC
queues: rewritten :class:`Query` objects (master -> worker),
:class:`PartialResult`s (worker -> master) and :class:`IngestStats`
(worker -> master). These tests pin down that all three survive a
pickle round-trip unchanged and that the merge operations the master
applies to gathered partials are associative, so any grouping of
workers yields the same totals.
"""

import pickle

import pytest

from repro import Configuration, ModelarDB
from repro.ingest.stats import IngestStats, ModelUsage
from repro.query.engine import PartialResult, merge_partial_results
from repro.query.sql import parse

from .conftest import make_series


def stats_with_usage(points, segments, mix) -> IngestStats:
    stats = IngestStats(
        data_points=points, segments=segments,
        storage_bytes=24 * segments, splits=points % 3, joins=points % 2,
    )
    for name, (segs, pts, size) in mix.items():
        stats.usage[name] = ModelUsage(segs, pts, size)
    return stats


class TestIngestStatsPickle:
    def test_round_trip_with_nested_usage(self):
        stats = stats_with_usage(
            1000, 10, {"pmc": (4, 700, 96), "gorilla": (6, 300, 1440)}
        )
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        assert clone.usage["pmc"] == ModelUsage(4, 700, 96)
        # The clone is independent state, not a shared reference.
        clone.record_segment("pmc", 5, 8)
        assert clone != stats

    def test_merge_after_unpickle(self):
        a = stats_with_usage(10, 1, {"pmc": (1, 10, 16)})
        b = pickle.loads(pickle.dumps(stats_with_usage(
            20, 2, {"swing": (2, 20, 48)}
        )))
        a.merge(b)
        assert a.data_points == 30
        assert set(a.usage) == {"pmc", "swing"}


class TestMergeAlgebra:
    def parts(self):
        return [
            stats_with_usage(100, 3, {"pmc": (1, 40, 16), "swing": (2, 60, 48)}),
            stats_with_usage(50, 1, {"pmc": (1, 50, 16)}),
            stats_with_usage(75, 2, {"gorilla": (2, 75, 320)}),
        ]

    def test_merge_is_associative(self):
        a, b, c = self.parts()
        left = IngestStats.merged([IngestStats.merged([a, b]), c])
        right = IngestStats.merged([a, IngestStats.merged([b, c])])
        assert left == right
        assert left.data_points == 225
        assert left.usage["pmc"] == ModelUsage(2, 90, 32)

    def test_merge_is_commutative(self):
        a, b, c = self.parts()
        assert IngestStats.merged([a, b, c]) == IngestStats.merged([c, b, a])

    def test_merged_does_not_mutate_inputs(self):
        a, b, _ = self.parts()
        before = pickle.dumps(a)
        IngestStats.merged([a, b])
        assert pickle.dumps(a) == before

    def test_merged_of_nothing_is_zero(self):
        assert IngestStats.merged([]) == IngestStats()


@pytest.fixture()
def engines():
    """Two engines each holding half the series, plus the full engine."""
    config = Configuration(error_bound=1.0)
    halves = []
    values_a = [float(20 + (i % 7)) for i in range(300)]
    values_b = [float(40 + (i % 11)) for i in range(300)]
    for tid, values in ((1, values_a), (2, values_b)):
        db = ModelarDB(config)
        db.ingest([make_series(tid, values)])
        halves.append(db)
    full = ModelarDB(config)
    full.ingest([
        make_series(1, values_a), make_series(2, values_b)
    ])
    return halves, full


class TestPartialResultPickle:
    SQL = "SELECT Tid, COUNT(*), SUM(Value), MIN(Value) " \
          "FROM DataPoint GROUP BY Tid"

    def partials(self, halves):
        query = parse(self.SQL)
        parts = [db.engine.execute_partial(query) for db in halves]
        assert all(isinstance(p, PartialResult) for p in parts)
        return parts

    def test_round_trip_preserves_merge_result(self, engines):
        halves, full = engines
        parts = self.partials(halves)
        shipped = [pickle.loads(pickle.dumps(p)) for p in parts]
        assert merge_partial_results(shipped) == full.sql(self.SQL)

    def test_callspec_reresolves_aggregate(self, engines):
        halves, _ = engines
        part = pickle.loads(pickle.dumps(self.partials(halves)[0]))
        for spec in part.specs:
            # The aggregate is re-resolved by name, not pickled by value:
            # it must be a live object with the merge/finalize protocol.
            assert spec.aggregate.name
            assert callable(spec.aggregate.merge)

    def test_merge_order_of_two_partials_counts(self, engines):
        halves, full = engines
        a, b = (pickle.loads(pickle.dumps(p)) for p in self.partials(halves))
        a.merge(b)
        assert a.finalize() == full.sql(self.SQL)


class TestQueryPickle:
    def test_routed_query_round_trip(self):
        query = parse(
            "SELECT COUNT(*) FROM DataPoint "
            "WHERE Tid IN (1, 2) AND Timestamp >= 1000"
        )
        clone = pickle.loads(pickle.dumps(query))
        db = ModelarDB(Configuration(error_bound=1.0))
        db.ingest([
            make_series(1, [float(i) for i in range(100)]),
            make_series(2, [float(i % 9) for i in range(100)]),
        ])
        assert db.engine.execute(clone) == db.engine.execute(query)
