"""FileStorage and MemoryStorage must answer push-downs identically.

The cluster workers pick their backend by configuration (in-memory by
default, one FileStorage directory per worker under ``storage_root``),
so the two backends have to be interchangeable: the same ingest must
yield the same segment sets under every (Gid, time window) predicate
push-down, including windows that straddle partition/segment boundaries,
and a FileStorage must still agree after a close/re-open — including a
re-open after a simulated crash left a torn row at the end of a
partition file.
"""

import itertools

import pytest

from repro import Configuration, ModelarDB
from repro.core.group import TimeSeriesGroup
from repro.storage import FileStorage, MemoryStorage, SegmentScan

from .conftest import correlated_group, make_series


def segment_key(segment):
    return (
        segment.gid,
        segment.start_time,
        segment.end_time,
        segment.sampling_interval,
        segment.mid,
        bytes(segment.parameters),
        frozenset(segment.gaps),
    )


def snapshot(storage, **push_down):
    if push_down.get("gids") is not None:
        push_down["gids"] = tuple(push_down["gids"])
    return sorted(
        segment_key(s) for s in storage.scan(SegmentScan(**push_down))
    )


def ingest_workload(storage):
    """Three groups with different shapes: a correlated group, a gappy
    singleton and a longer singleton — many segments per partition."""
    config = Configuration(
        error_bound=1.0, model_length_limit=50, bulk_write_size=4
    )
    db = ModelarDB(config, storage=storage)
    gappy = [float(i % 13) for i in range(240)]
    steady = [float(20 + (i % 7)) for i in range(240)]
    for hole in (range(40, 55), range(150, 170)):
        for i in hole:
            gappy[i] = None
    db.ingest([
        correlated_group(gid=1, n_series=3, n_points=260, seed=8),
        correlated_group(gid=2, n_series=1, n_points=400, seed=9),
    ])
    # A two-series group where one member drops out twice: its segments
    # carry non-empty gap sets while the other series keeps going.
    db.ingest([
        TimeSeriesGroup(3, [make_series(9, gappy), make_series(10, steady)])
    ])
    return db


@pytest.fixture()
def backends(tmp_path):
    memory = MemoryStorage()
    files = FileStorage(tmp_path / "store")
    ingest_workload(memory)
    ingest_workload(files)
    return memory, files


def push_down_cases(storage):
    """Predicate combinations, including partition-straddling windows."""
    segments = sorted(
        storage.scan(SegmentScan()), key=lambda s: (s.gid, s.end_time)
    )
    end_times = sorted({s.end_time for s in segments})
    # Boundaries inside a segment's span, exactly on one, and outside.
    straddle = (segments[len(segments) // 2].start_time
                + segments[len(segments) // 2].end_time) // 2
    times = [
        None, 0, end_times[0], end_times[0] + 1, straddle,
        end_times[-1], end_times[-1] + 10_000,
    ]
    gid_sets = [None, [1], [2], [3], [1, 3], [1, 2, 3], [99], []]
    for gids, start, end in itertools.product(gid_sets, times, times):
        yield dict(gids=gids, start_time=start, end_time=end)


class TestPushDownEquivalence:
    def test_full_scan_matches(self, backends):
        memory, files = backends
        assert snapshot(files) == snapshot(memory)
        assert len(snapshot(memory)) > 10  # the workload is non-trivial

    def test_every_push_down_matches(self, backends):
        memory, files = backends
        for case in push_down_cases(memory):
            assert snapshot(files, **case) == snapshot(memory, **case), case

    def test_counts_and_metadata_match(self, backends):
        memory, files = backends
        assert files.segment_count() == memory.segment_count()
        assert [r for r in files.time_series()] == [
            r for r in memory.time_series()
        ]
        assert files.model_table() == memory.model_table()

    def test_gap_sets_survive_both_backends(self, backends):
        memory, files = backends
        gappy = [s for s in memory.scan(SegmentScan(gids=(3,))) if s.gaps]
        assert gappy  # the third group was built with holes
        assert snapshot(files, gids=[3]) == snapshot(memory, gids=[3])


class TestReopen:
    def test_reopen_preserves_every_push_down(self, backends, tmp_path):
        memory, files = backends
        files.close()
        reopened = FileStorage(tmp_path / "store")
        for case in push_down_cases(memory):
            assert snapshot(reopened, **case) == snapshot(memory, **case)
        assert reopened.segment_count() == memory.segment_count()

    def test_torn_tail_is_truncated_on_reopen(self, backends, tmp_path):
        """A crash mid-append leaves a partial row; re-open must drop
        exactly the torn tail and keep every complete segment."""
        memory, files = backends
        files.close()
        partition = next(
            (tmp_path / "store").glob("segments_gid_*.bin")
        )
        whole = snapshot(memory)
        with open(partition, "ab") as handle:
            handle.write(b"\x01\x02\x03")  # shorter than a header
        recovered = FileStorage(tmp_path / "store")
        assert snapshot(recovered) == whole
        recovered.close()

    def test_torn_parameters_are_truncated_on_reopen(self, backends, tmp_path):
        memory, files = backends
        files.close()
        partition = next(
            (tmp_path / "store").glob("segments_gid_*.bin")
        )
        gid = int(partition.stem.rsplit("_", 1)[1])
        complete = snapshot(memory, gids=[gid])
        # A full header promising more parameter bytes than follow.
        import struct

        torn = struct.pack("<IqIBBHI", gid, 10**9, 5, 1, 0, 500, 0)
        with open(partition, "ab") as handle:
            handle.write(torn + b"\x00" * 10)
        recovered = FileStorage(tmp_path / "store")
        assert snapshot(recovered, gids=[gid]) == complete
        # The other partitions are untouched.
        assert snapshot(recovered) == snapshot(memory)
        recovered.close()
