"""Serving end-to-end observability (tier 1).

The acceptance loop for the unified metrics layer: run the closed-loop
load generator against an in-process server, then assert that the
``metrics`` wire op (and the ``python -m repro metrics`` subcommand on
top of it) reports exactly what the load generator measured from the
client side — completions, busy rejections, cache hits — alongside
non-zero ingestion, query and storage counters from the layers below.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.server import ServerClient
from repro.server.loadgen import run_load

from tests.test_server import STATEMENTS, _Harness, make_db


@pytest.fixture
def fresh_registry():
    """Swap in an empty process registry *before* the db and server are
    built — instruments bind to the active registry at construction."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def snapshot_counters(client: ServerClient) -> dict:
    return client.metrics()["counters"]


class TestMetricsOpMatchesLoadgen:
    def test_server_totals_equal_load_report(self, fresh_registry):
        db = make_db(n_series=3, n_points=200)
        with _Harness(db, max_inflight=4, max_waiting=64) as (host, port):
            with ServerClient(host, port) as client:
                before = snapshot_counters(client)
            report = run_load(
                host,
                port,
                list(STATEMENTS),
                clients=4,
                duration=1.0,
                request_timeout=30.0,
            )
            with ServerClient(host, port) as client:
                after = snapshot_counters(client)

        assert report.completed > 0

        def delta(name: str) -> float:
            return after.get(name, 0) - before.get(name, 0)

        assert delta("server.completed_total") == report.completed
        assert delta("server.rejected_busy_total") == report.rejected_busy
        assert delta("server.result_cache_hits_total") == report.cache_hits
        assert report.errors == 0

    def test_snapshot_spans_every_layer(self, fresh_registry):
        db = make_db(n_series=2, n_points=150)
        with _Harness(db, max_inflight=4, max_waiting=64) as (host, port):
            with ServerClient(host, port) as client:
                client.query("SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid")
                snapshot = client.metrics()

        counters = snapshot["counters"]
        assert counters["ingest.points_total"] == 2 * 150
        assert counters["storage.segments_written_total"] > 0
        assert counters["query.statements_total"] >= 1
        assert counters["server.completed_total"] >= 1
        histograms = snapshot["histograms"]
        assert histograms["server.query_seconds"]["count"] >= 1
        assert histograms["query.execute_seconds"]["count"] >= 1

    def test_metrics_op_and_stats_op_coexist(self, fresh_registry):
        """`stats` stays the cheap server-local view; `metrics` is the
        process-wide registry. Both answer on one connection."""
        db = make_db(n_series=2, n_points=100)
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                client.query("SELECT COUNT_S(*) FROM Segment")
                stats = client.stats()
                counters = snapshot_counters(client)
        assert stats["counters"]["completed"] == 1
        assert counters["server.completed_total"] == 1


class TestMetricsSubcommand:
    def test_cli_prints_and_writes_json(self, fresh_registry, tmp_path):
        from repro.__main__ import run_metrics

        json_path = tmp_path / "metrics.json"
        db = make_db(n_series=2, n_points=100)
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                client.query("SELECT COUNT_S(*) FROM Segment")
            out = io.StringIO()
            code = run_metrics(
                ["--host", host, "--port", str(port),
                 "--json", str(json_path)],
                out,
            )
        assert code == 0
        text = out.getvalue()
        assert "server.completed_total 1" in text
        assert "ingest.points_total 200" in text
        payload = json.loads(json_path.read_text())
        assert payload["counters"]["server.completed_total"] == 1

    def test_cli_reports_unreachable_server(self):
        from repro.__main__ import run_metrics

        out = io.StringIO()
        code = run_metrics(["--port", "1"], out)
        assert code == 1
        assert "cannot reach server" in out.getvalue()
