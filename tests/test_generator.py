"""The segment generator: the multi-model ingestion loop (Section 3.2)."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.ingest.generator import SegmentGenerator
from repro.models import ModelRegistry


def make_generator(
    tids=(1, 2),
    subset=None,
    error_bound=5.0,
    length_limit=50,
    models=("PMC", "Swing", "Gorilla"),
    scalings=None,
):
    config = Configuration(
        error_bound=error_bound,
        model_length_limit=length_limit,
        models=models,
    )
    registry = ModelRegistry()
    out = []
    generator = SegmentGenerator(
        gid=1,
        group_tids=tids,
        subset_tids=subset if subset is not None else tids,
        sampling_interval=100,
        config=config,
        registry=registry,
        sink=out.append,
        scalings=scalings,
    )
    return generator, out, registry


class TestBasicFlow:
    def test_constant_run_emits_one_pmc_segment(self):
        generator, out, registry = make_generator(tids=(1,))
        for i in range(10):
            generator.tick(i * 100, {1: 42.0})
        generator.close()
        assert len(out) == 1
        segment = out[0]
        assert segment.start_time == 0
        assert segment.end_time == 900
        assert registry.by_mid(segment.mid).name == "PMC"

    def test_segment_metadata(self):
        generator, out, _ = make_generator()
        for i in range(5):
            generator.tick(i * 100, {1: 1.0, 2: 1.0})
        generator.close()
        segment = out[0]
        assert segment.gid == 1
        assert segment.sampling_interval == 100
        assert segment.group_tids == (1, 2)
        assert segment.gaps == frozenset()
        assert segment.length == 5

    def test_length_limit_bounds_segments(self):
        generator, out, _ = make_generator(tids=(1,), length_limit=10)
        for i in range(25):
            generator.tick(i * 100, {1: 7.0})
        generator.close()
        assert [segment.length for segment in out] == [10, 10, 5]

    def test_regime_change_starts_new_segment(self):
        # Two noisy-but-boundable regimes far apart: no single model can
        # bridge the jump cheaply, so a new segment starts at the change.
        rng = np.random.default_rng(5)
        generator, out, registry = make_generator(tids=(1,), error_bound=1.0)
        for i in range(10):
            generator.tick(i * 100, {1: float(rng.normal(10.0, 0.03))})
        for i in range(10, 20):
            generator.tick(i * 100, {1: float(rng.normal(500.0, 1.5))})
        generator.close()
        assert len(out) == 2
        assert out[0].end_time == 900
        assert out[1].start_time == 1000

    def test_linear_run_uses_swing(self):
        generator, out, registry = make_generator(tids=(1,), error_bound=1.0)
        for i in range(30):
            generator.tick(i * 100, {1: float(np.float32(10.0 + 2.5 * i))})
        generator.close()
        names = {registry.by_mid(s.mid).name for s in out}
        assert "Swing" in names

    def test_noise_uses_gorilla(self):
        rng = np.random.default_rng(0)
        generator, out, registry = make_generator(
            tids=(1,), error_bound=0.0
        )
        for i in range(30):
            generator.tick(i * 100, {1: float(rng.normal(0, 100))})
        generator.close()
        names = {registry.by_mid(s.mid).name for s in out}
        assert names == {"Gorilla"}

    def test_best_compression_wins_over_cascade_order(self):
        # A constant run followed by one outlier: PMC covers the prefix
        # with 4 bytes and must win over Gorilla covering everything.
        generator, out, registry = make_generator(tids=(1,), error_bound=1.0)
        for i in range(20):
            generator.tick(i * 100, {1: 5.0})
        generator.tick(2000, {1: 900.0})
        generator.close()
        assert registry.by_mid(out[0].mid).name == "PMC"
        assert out[0].length == 20


class TestGaps:
    def test_gap_closes_segment_and_records_tids(self):
        generator, out, _ = make_generator()
        for i in range(5):
            generator.tick(i * 100, {1: 1.0, 2: 1.0})
        for i in range(5, 10):
            generator.tick(i * 100, {1: 1.0, 2: None})
        for i in range(10, 15):
            generator.tick(i * 100, {1: 1.0, 2: 1.0})
        generator.close()
        assert len(out) == 3
        assert out[0].gaps == frozenset()
        assert out[1].gaps == frozenset({2})
        assert out[2].gaps == frozenset()

    def test_all_absent_emits_nothing(self):
        generator, out, _ = make_generator()
        for i in range(5):
            generator.tick(i * 100, {1: None, 2: None})
        generator.close()
        assert out == []

    def test_subset_generator_marks_outsiders_as_gaps(self):
        # A dynamic-split sub-generator records the other sub-group's
        # tids as gaps so segments share the Gid without key collisions.
        generator, out, _ = make_generator(tids=(1, 2, 3), subset=(1, 3))
        for i in range(5):
            generator.tick(i * 100, {1: 1.0, 2: 99.0, 3: 1.0})
        generator.close()
        assert out[0].gaps == frozenset({2})
        assert out[0].member_tids == (1, 3)

    def test_missing_key_treated_as_gap(self):
        generator, out, _ = make_generator()
        for i in range(3):
            generator.tick(i * 100, {1: 1.0})  # tid 2 absent entirely
        generator.close()
        assert out[0].gaps == frozenset({2})


class TestScalingAndQuantization:
    def test_scaling_applied_during_ingestion(self, registry):
        generator, out, reg = make_generator(
            tids=(1, 2), scalings={1: 2.0, 2: 1.0}, error_bound=1.0
        )
        # Series 1 at 50 scaled by 2 matches series 2 at 100.
        for i in range(10):
            generator.tick(i * 100, {1: 50.0, 2: 100.0})
        generator.close()
        assert len(out) == 1
        model = reg.decode(out[0].mid, out[0].parameters, 2, out[0].length)
        assert model.values()[0, 0] == pytest.approx(100.0, rel=1e-3)

    def test_values_quantized_to_float32(self):
        generator, out, reg = make_generator(tids=(1,), error_bound=0.0)
        value = 0.1  # not float32-representable
        generator.tick(0, {1: value})
        generator.close()
        model = reg.decode(out[0].mid, out[0].parameters, 1, 1)
        assert model.values()[0, 0] == float(np.float32(value))


class TestAbandonAndStats:
    def test_abandon_discards_buffer(self):
        generator, out, _ = make_generator(tids=(1,))
        for i in range(5):
            generator.tick(i * 100, {1: 1.0})
        generator.abandon()
        generator.close()
        assert out == []
        assert generator.buffered_length == 0

    def test_buffer_accessors(self):
        generator, out, _ = make_generator(tids=(1,))
        assert generator.buffer_start_time is None
        generator.tick(500, {1: 1.0})
        assert generator.buffer_start_time == 500
        assert generator.buffered_length == 1

    def test_stats_recorded(self):
        generator, out, _ = make_generator(tids=(1, 2))
        for i in range(10):
            generator.tick(i * 100, {1: 1.0, 2: 1.0})
        generator.close()
        assert generator.stats.data_points == 20
        assert generator.stats.segments == len(out)
        assert generator.stats.storage_bytes == sum(
            s.storage_bytes() for s in out
        )
        assert generator.stats.model_mix()["PMC"] == 100.0

    def test_lazy_gorilla_matches_eager_encoding(self):
        # The lazy fallback must produce byte-identical segments to an
        # eager cascade (selection decisions unchanged).
        rng = np.random.default_rng(7)
        values = [float(rng.normal(0, 50)) for _ in range(120)]

        generator, out_lazy, _ = make_generator(tids=(1,), error_bound=0.0)
        for i, value in enumerate(values):
            generator.tick(i * 100, {1: value})
        generator.close()

        generator2, out_eager, _ = make_generator(
            tids=(1,), error_bound=0.0, models=("PMC", "Swing", "Gorilla")
        )
        # Disable laziness by monkey-patching always_fits off.
        from repro.models.gorilla import Gorilla

        original = Gorilla.always_fits
        Gorilla.always_fits = False
        try:
            for i, value in enumerate(values):
                generator2.tick(i * 100, {1: value})
            generator2.close()
        finally:
            Gorilla.always_fits = original

        assert [(s.start_time, s.end_time, s.mid, s.parameters) for s in out_lazy] == [
            (s.start_time, s.end_time, s.mid, s.parameters) for s in out_eager
        ]
