"""Query engine edge cases: mixed select lists, predicates, errors."""

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.core.errors import QueryError
from repro.query.engine import parse_timestamp


@pytest.fixture(scope="module")
def db():
    rng = np.random.default_rng(12)
    values = np.float32(10 + np.cumsum(rng.normal(0, 0.1, 200)))
    series = [TimeSeries(1, 100, np.arange(200) * 100, values)]
    instance = ModelarDB(Configuration(error_bound=0.0))
    instance.ingest(series)
    return instance, values.astype(np.float64)


class TestSelectLists:
    def test_multiple_aggregates_one_query(self, db):
        instance, values = db
        rows = instance.sql(
            "SELECT SUM_S(*), COUNT_S(*), AVG_S(*) FROM Segment"
        )
        assert rows[0]["SUM_S(*)"] == pytest.approx(values.sum(), rel=1e-9)
        assert rows[0]["COUNT_S(*)"] == 200
        assert rows[0]["AVG_S(*)"] == pytest.approx(values.mean(), rel=1e-9)

    def test_mixed_simple_and_cube(self, db):
        instance, values = db
        rows = instance.sql(
            "SELECT COUNT_S(*), CUBE_SUM_MINUTE(*) FROM Segment"
        )
        # Each row carries the bucket sum plus the overall count.
        assert all(row["COUNT_S(*)"] == 200 for row in rows)
        total = sum(row["CUBE_SUM_MINUTE(*)"] for row in rows)
        assert total == pytest.approx(values.sum(), rel=1e-9)

    def test_cannot_mix_aggregates_and_bare_value_column(self, db):
        instance, _ = db
        with pytest.raises(QueryError):
            instance.sql("SELECT Value, SUM(*) FROM DataPoint")[0]

    def test_empty_scan_single_row_for_plain_aggregate(self, db):
        instance, _ = db
        rows = instance.sql(
            "SELECT COUNT_S(*), MIN_S(*) FROM Segment WHERE TS > 10000000"
        )
        assert rows == [{"COUNT_S(*)": 0, "MIN_S(*)": None}]


class TestPredicates:
    def test_strict_inequalities(self, db):
        instance, values = db
        rows = instance.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE TS > 0 AND TS < 1000"
        )
        # Timestamps 100..900.
        assert rows[0]["COUNT_S(*)"] == 9

    def test_equality_timestamp(self, db):
        instance, values = db
        rows = instance.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE TS = 500"
        )
        assert rows[0]["COUNT_S(*)"] == 1

    def test_contradictory_interval(self, db):
        instance, _ = db
        rows = instance.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE TS >= 1000 AND TS <= 500"
        )
        assert rows[0]["COUNT_S(*)"] == 0

    def test_tid_equals_and_in_intersect(self, db):
        instance, _ = db
        rows = instance.sql(
            "SELECT COUNT_S(*) FROM Segment WHERE Tid = 1 AND Tid IN (2, 3)"
        )
        assert rows[0]["COUNT_S(*)"] == 0

    def test_unsupported_tid_operator(self, db):
        instance, _ = db
        with pytest.raises(QueryError):
            instance.sql("SELECT COUNT_S(*) FROM Segment WHERE Tid > 0")

    def test_value_predicate_on_segment_view_rejected(self, db):
        # Value predicates require point reconstruction; the Segment
        # View's planner routes them to point conditions, which the
        # segment path ignores — the parser/planner accepts them only on
        # the Data Point View.
        instance, values = db
        threshold = float(np.median(values))
        rows = instance.sql(
            f"SELECT COUNT(*) FROM DataPoint WHERE Value <= {threshold}"
        )
        assert rows[0]["COUNT(*)"] == int((values <= threshold).sum())


class TestParseTimestamp:
    def test_integers_pass_through(self):
        assert parse_timestamp(12345) == 12345
        assert parse_timestamp(12345.9) == 12345

    def test_date_formats(self):
        assert parse_timestamp("1970-01-01") == 0
        assert parse_timestamp("1970-01-01 00:01") == 60_000
        assert parse_timestamp("1970-01-01 00:00:01") == 1_000

    def test_invalid_rejected(self):
        with pytest.raises(QueryError):
            parse_timestamp("yesterday")
        with pytest.raises(QueryError):
            parse_timestamp(None)
