"""The concurrent query-serving layer (tier 1).

Covers the serving contract end to end against an in-process server:
bit-identical results under 32 concurrent clients, fast-fail admission
control, deadline-driven cancellation, explicit cancel, result-cache
hits and ingestion-flush invalidation, and structured error frames that
leave the connection (and server) up.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.server import (
    BusyError,
    CancelledError,
    DeadlineError,
    EmbeddedDispatcher,
    QueryServer,
    RemoteQueryError,
    ServerClient,
    ServerThread,
)

N_CLIENTS = 32

#: The statement mix the concurrency test replays on every client.
STATEMENTS = (
    "SELECT COUNT_S(*) FROM Segment",
    "SELECT SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment",
    "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid",
    "SELECT SUM_S(*) FROM Segment WHERE Tid IN (1, 3)",
    "SELECT COUNT(*) FROM DataPoint WHERE Tid = 2",
    "SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS <= 900",
)


def make_db(n_series: int = 4, n_points: int = 300) -> ModelarDB:
    rng = np.random.default_rng(11)
    db = ModelarDB(Configuration(error_bound=0.0))
    series = []
    for tid in range(1, n_series + 1):
        values = np.float32(
            50 + tid + np.cumsum(rng.normal(0, 0.3, n_points))
        )
        series.append(
            TimeSeries(tid, 100, np.arange(n_points) * 100, values)
        )
    db.ingest(series)
    return db


class _Harness:
    """One in-process server over one embedded db, torn down on exit."""

    def __init__(self, db: ModelarDB, hook=None, **server_kwargs) -> None:
        self.db = db
        self.dispatcher = EmbeddedDispatcher.for_db(db, execute_hook=hook)
        self.server = QueryServer(self.dispatcher, **server_kwargs)
        self.thread = ServerThread(self.server)

    def __enter__(self) -> tuple[str, int]:
        return self.thread.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.thread.stop()


# ----------------------------------------------------------------------
# The acceptance scenario
# ----------------------------------------------------------------------
class TestConcurrentClients:
    def test_32_clients_bit_identical_to_embedded_engine(self):
        db = make_db()
        expected = {sql: db.sql(sql) for sql in STATEMENTS}
        failures: list[str] = []
        with _Harness(db, max_inflight=8, max_waiting=2 * N_CLIENTS) as (
            host, port,
        ):
            def client_run(client_id: int) -> None:
                try:
                    with ServerClient(host, port) as client:
                        # Different starting offsets so the server sees
                        # a mixed, not lockstep, statement stream.
                        for turn in range(len(STATEMENTS)):
                            sql = STATEMENTS[
                                (client_id + turn) % len(STATEMENTS)
                            ]
                            rows = client.query(sql, timeout=30.0)
                            if rows != expected[sql]:
                                failures.append(
                                    f"client {client_id}: {sql!r} diverged"
                                )
                except Exception as error:  # noqa: BLE001 - collected
                    failures.append(f"client {client_id}: {error!r}")

            threads = [
                threading.Thread(target=client_run, args=(i,), daemon=True)
                for i in range(N_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        assert failures == []

    def test_server_stats_counts_all_accepted(self):
        db = make_db(n_series=2, n_points=100)
        with _Harness(db, max_inflight=4, max_waiting=64) as (host, port):
            with ServerClient(host, port) as client:
                for _ in range(5):
                    client.query("SELECT COUNT_S(*) FROM Segment")
                stats = client.stats()
        counters = stats["counters"]
        assert counters["accepted"] == 5
        assert counters["completed"] == 5
        assert counters["rejected_busy"] == 0
        assert stats["latency"]["count"] == 5
        assert stats["admission"]["max_inflight"] == 4


class TestAdmissionControl:
    def test_over_admission_rejected_never_hung(self):
        gate = threading.Event()
        started = threading.Semaphore(0)

        def hook(sql: str, token) -> None:
            if "WHERE Tid = 1" in sql:
                started.release()
                gate.wait(timeout=30)

        db = make_db(n_series=2, n_points=60)
        outcomes: list[str] = []
        lock = threading.Lock()
        try:
            with _Harness(
                db, hook=hook, max_inflight=2, max_waiting=2,
            ) as (host, port):
                def blocked_client(index: int) -> None:
                    with ServerClient(host, port) as client:
                        try:
                            client.query(
                                "SELECT COUNT_S(*) FROM Segment "
                                "WHERE Tid = 1",
                                timeout=30.0,
                            )
                            result = "ok"
                        except BusyError:
                            result = "busy"
                    with lock:
                        outcomes.append(result)

                threads = [
                    threading.Thread(
                        target=blocked_client, args=(i,), daemon=True
                    )
                    for i in range(5)
                ]
                for thread in threads:
                    thread.start()
                # Wait until both executor slots are actually held, so
                # the remaining three requests face a full server.
                assert started.acquire(timeout=10)
                assert started.acquire(timeout=10)
                deadline = time.time() + 10
                while len(outcomes) < 1 and time.time() < deadline:
                    time.sleep(0.01)
                # The 5th request (2 running + 2 queued) fast-fails.
                assert outcomes == ["busy"]
                gate.set()
                for thread in threads:
                    thread.join(timeout=30)
                assert sorted(outcomes) == ["busy", "ok", "ok", "ok", "ok"]
                # The admission controller recovered: new queries run.
                with ServerClient(host, port) as client:
                    rows = client.query("SELECT COUNT_S(*) FROM Segment")
                    assert rows == db.sql("SELECT COUNT_S(*) FROM Segment")
                    counters = client.stats()["counters"]
                assert counters["rejected_busy"] == 1
                assert counters["queued"] >= 2
        finally:
            gate.set()


class TestDeadlinesAndCancel:
    def test_slow_query_cancelled_by_deadline(self):
        def hook(sql: str, token) -> None:
            if "WHERE Tid = 999" in sql and token is not None:
                # A cooperative slow query: aborts the moment the
                # deadline fires the token instead of sleeping blindly.
                token.wait(30)

        db = make_db(n_series=2, n_points=60)
        with _Harness(db, hook=hook, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                started = time.perf_counter()
                with pytest.raises(DeadlineError):
                    client.query(
                        "SELECT COUNT_S(*) FROM Segment WHERE Tid = 999",
                        timeout=0.4,
                    )
                elapsed = time.perf_counter() - started
                assert elapsed < 10.0  # answered at the deadline, not 30 s
                # The server survives and still executes new statements.
                assert client.ping()
                rows = client.query("SELECT COUNT_S(*) FROM Segment")
                assert rows == db.sql("SELECT COUNT_S(*) FROM Segment")
                assert client.stats()["counters"]["timed_out"] == 1

    def test_explicit_cancel_from_second_connection(self):
        def hook(sql: str, token) -> None:
            if "WHERE Tid = 999" in sql and token is not None:
                token.wait(30)

        db = make_db(n_series=2, n_points=60)
        with _Harness(db, hook=hook, max_inflight=2) as (host, port):
            errors: list[Exception] = []

            def victim() -> None:
                with ServerClient(host, port) as client:
                    try:
                        client.query(
                            "SELECT COUNT_S(*) FROM Segment "
                            "WHERE Tid = 999",
                            timeout=30.0,
                            query_id="victim-1",
                        )
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)

            thread = threading.Thread(target=victim, daemon=True)
            thread.start()
            with ServerClient(host, port) as controller:
                deadline = time.time() + 10
                cancelled = False
                while time.time() < deadline and not cancelled:
                    cancelled = controller.cancel("victim-1")
                    if not cancelled:
                        time.sleep(0.01)
                assert cancelled
            thread.join(timeout=30)
            assert len(errors) == 1
            assert isinstance(errors[0], CancelledError)


class TestResultCache:
    def test_hits_on_repeat_miss_after_ingestion_flush(self):
        db = make_db(n_series=2, n_points=200)
        sql = "SELECT COUNT_S(*) FROM Segment"
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                first = client.query_response(sql)
                second = client.query_response("select  count_s(*) "
                                               "FROM   segment")
                assert first["ok"] and second["ok"]
                assert first["cached"] is False
                # Normalized SQL: same statement modulo case/whitespace.
                assert second["cached"] is True
                assert second["rows"] == first["rows"]

                # New segments land -> the flush hook invalidates.
                extra = TimeSeries(
                    9, 100, np.arange(120) * 100,
                    np.float32(np.linspace(0, 5, 120)),
                )
                db.ingest([extra])
                third = client.query_response(sql)
                assert third["ok"]
                assert third["cached"] is False
                assert (
                    third["rows"][0]["COUNT_S(*)"]
                    > first["rows"][0]["COUNT_S(*)"]
                )
                stats = client.stats()
        cache = stats["dispatcher"]["result_cache"]
        assert cache["hits"] >= 1
        assert cache["invalidations"] >= 1
        # The satellite fix: segment-cache hit/miss counters surface in
        # the stats frame, and the flush bumped its generation.
        segment_cache = stats["dispatcher"]["segment_cache"]
        assert segment_cache["misses"] > 0
        assert segment_cache["generation"] >= 1


class TestErrorFrames:
    def test_query_errors_are_structured_and_connection_survives(self):
        db = make_db(n_series=2, n_points=60)
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                for bad_sql in (
                    "SELEC COUNT_S(*) FROM Segment",       # malformed
                    "SELECT COUNT_S(*) FROM Nowhere",      # unknown table
                    "SELECT Bogus FROM DataPoint",         # unknown column
                    "SELECT SUM_S(*) FROM Segment GROUP BY Nope",
                    "SELECT CUBE_SUM_EON(*) FROM Segment",  # bad level
                ):
                    response = client.query_response(bad_sql)
                    assert response["ok"] is False
                    error = response["error"]
                    assert error["code"] == "query_error"
                    assert error["status"] == 400
                    assert error["message"]
                    # Same connection keeps serving after every error.
                    assert client.ping()
                with pytest.raises(RemoteQueryError):
                    client.query("SELECT COUNT_S(*) FROM Nowhere")
                rows = client.query("SELECT COUNT_S(*) FROM Segment")
                assert rows == db.sql("SELECT COUNT_S(*) FROM Segment")
                counters = client.stats()["counters"]
        assert counters["failed"] == 6
        assert counters["completed"] >= 1

    def test_unknown_op_and_missing_sql_are_bad_requests(self):
        db = make_db(n_series=2, n_points=60)
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                response = client.request({"op": "mystery"})
                assert response["error"]["code"] == "bad_request"
                response = client.request({"op": "query"})
                assert response["error"]["code"] == "bad_request"
                response = client.request(
                    {"op": "query", "sql": "SELECT 1", "timeout": -1}
                )
                assert response["error"]["code"] == "bad_request"
                assert client.ping()

    def test_cancel_unknown_id_is_harmless(self):
        db = make_db(n_series=2, n_points=60)
        with _Harness(db, max_inflight=2) as (host, port):
            with ServerClient(host, port) as client:
                assert client.cancel("never-started") is False
                assert client.ping()


class TestServerShutdown:
    def test_stop_closes_owned_storage(self, tmp_path):
        directory = tmp_path / "db"
        db = ModelarDB.open(directory, config=Configuration(error_bound=0.0))
        db.ingest([
            TimeSeries(
                1, 100, np.arange(50) * 100,
                np.float32(np.linspace(0, 1, 50)),
            )
        ])
        db.storage.flush()

        dispatcher = EmbeddedDispatcher.open_directory(directory)
        server = QueryServer(dispatcher, max_inflight=2)
        harness = ServerThread(server)
        host, port = harness.start()
        with ServerClient(host, port) as client:
            assert client.query("SELECT COUNT_S(*) FROM Segment")
        harness.stop()
        # The shutdown path released the store deterministically...
        assert dispatcher._owned_storage.closed
        # ...so a restart can immediately reopen the same directory.
        dispatcher2 = EmbeddedDispatcher.open_directory(directory)
        harness2 = ServerThread(QueryServer(dispatcher2, max_inflight=2))
        host2, port2 = harness2.start()
        try:
            with ServerClient(host2, port2) as client:
                rows = client.query("SELECT COUNT_S(*) FROM Segment")
                assert rows[0]["COUNT_S(*)"] == 50
        finally:
            harness2.stop()
