"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Configuration, Dimension, DimensionSet, TimeSeries
from repro.core.group import TimeSeriesGroup
from repro.models import ModelRegistry


@pytest.fixture
def registry() -> ModelRegistry:
    return ModelRegistry()


@pytest.fixture
def config() -> Configuration:
    return Configuration(error_bound=5.0)


@pytest.fixture
def lossless_config() -> Configuration:
    return Configuration(error_bound=0.0)


def make_series(
    tid: int,
    values,
    si: int = 100,
    start: int = 0,
    scaling: float = 1.0,
    name: str = "",
) -> TimeSeries:
    """A regular series over ``values`` (None marks gaps)."""
    timestamps = [start + index * si for index in range(len(values))]
    return TimeSeries(tid, si, timestamps, values, scaling=scaling, name=name)


def correlated_group(
    gid: int = 1,
    n_series: int = 3,
    n_points: int = 200,
    seed: int = 0,
    si: int = 100,
    noise: float = 0.1,
) -> TimeSeriesGroup:
    """A group of strongly correlated float32 series."""
    rng = np.random.default_rng(seed)
    base = 100 + np.cumsum(rng.normal(0, 0.5, n_points))
    series = []
    for tid in range(1, n_series + 1):
        values = np.float32(base + rng.normal(0, noise, n_points))
        series.append(make_series(tid, [float(v) for v in values], si=si))
    return TimeSeriesGroup(gid, series)


@pytest.fixture
def location_dimension() -> Dimension:
    """The paper's Fig. 7 Location dimension for wind turbines."""
    location = Dimension("Location", ["Turbine", "Park", "Region", "Country"])
    location.assign(1, ("9572", "Farsø", "Nordjylland", "Denmark"))
    location.assign(2, ("9632", "Aalborg", "Nordjylland", "Denmark"))
    location.assign(3, ("9634", "Aalborg", "Nordjylland", "Denmark"))
    return location


@pytest.fixture
def dimensions(location_dimension) -> DimensionSet:
    measure = Dimension("Measure", ["Concrete", "Category"])
    measure.assign(1, ("temp1", "Temperature"))
    measure.assign(2, ("temp2", "Temperature"))
    measure.assign(3, ("power3", "Power"))
    return DimensionSet([location_dimension, measure])
