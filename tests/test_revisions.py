"""Segment revisions, the correction path, and AS OF reads (tier 1).

The revision contract, end to end:

* corrections append superseding revisions — latest-known reads see
  them, ``AS OF`` a pre-correction knowledge time reproduces the
  original answer *bit for bit* (row and columnar modes alike);
* a brute-force replay oracle: every knowledge time ever observed
  re-answers exactly as the store answered at that moment;
* latest-known reads equal a fresh store ingested in order;
* FileStorage round-trips revision state (stamps, counter, AS OF
  answers) across close/reopen;
* the sharded tier and the TCP server answer ``AS OF`` identically to
  the embedded engine;
* the typed ``SegmentScan`` request and the deprecated
  ``Storage.segments()`` shim agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Configuration,
    ModelarDB,
    SegmentScan,
    TimeSeries,
)
from repro.core.errors import IngestionError, QueryError
from repro.query.sql import apply_as_of, parse
from repro.server import (
    BadRequestError,
    EmbeddedDispatcher,
    QueryServer,
    ServerClient,
    ServerThread,
)
from repro.shard import ShardedCluster
from repro.storage import FileStorage

SI = 100
N_POINTS = 240

#: Query shapes the oracle replays at every knowledge time: point
#: reconstruction, segment aggregates, grouping, and predicates.
STATEMENTS = (
    "SELECT TS, Value FROM DataPoint WHERE Tid = 1",
    "SELECT TS, Value FROM DataPoint WHERE Tid = 2 AND TS >= 2000 AND TS <= 9000",
    "SELECT COUNT(*) FROM DataPoint",
    "SELECT SUM_S(*), MIN_S(*), MAX_S(*) FROM Segment",
    "SELECT Tid, AVG_S(*) FROM Segment GROUP BY Tid",
    "SELECT SUM_S(*) FROM Segment WHERE Tid IN (1, 3)",
)


def series_values(n_series: int = 3, seed: int = 3) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    base = 50 + np.cumsum(rng.normal(0, 0.4, N_POINTS))
    return [
        np.float32(base + rng.normal(0, 0.1, N_POINTS))
        for _ in range(n_series)
    ]


def make_db(storage=None, n_series: int = 3, seed: int = 3) -> ModelarDB:
    db = ModelarDB(Configuration(error_bound=0.0), storage=storage)
    db.ingest(
        [
            TimeSeries(
                tid, SI, np.arange(N_POINTS) * SI, values
            )
            for tid, values in enumerate(series_values(n_series, seed), 1)
        ]
    )
    return db


def snapshot(db: ModelarDB) -> dict[str, list[dict]]:
    return {sql: db.query(sql) for sql in STATEMENTS}


# ----------------------------------------------------------------------
# The correction path
# ----------------------------------------------------------------------
class TestCorrections:
    def test_latest_reads_see_the_correction(self):
        db = make_db()
        db.correct([(1, 700, 999.0)])
        rows = db.query("SELECT TS, Value FROM DataPoint WHERE Tid = 1")
        by_ts = {row["TS"]: row["Value"] for row in rows}
        assert by_ts[700] == 999.0
        # Neighbouring points are reconstructed unchanged.
        original = {
            ts: float(v)
            for ts, v in zip(
                np.arange(N_POINTS) * SI, series_values()[0]
            )
        }
        assert by_ts[600] == pytest.approx(original[600])
        assert by_ts[800] == pytest.approx(original[800])

    def test_as_of_reproduces_original_bit_for_bit(self):
        db = make_db()
        mark = db.knowledge_time()
        before = snapshot(db)
        db.correct([(1, 700, 999.0), (2, 1200, -5.0)])
        for sql in STATEMENTS:
            assert db.query(sql, as_of=mark) == before[sql]
            # Same bound spelled inside the statement.
            head, _, tail = sql.partition(" FROM ")
            view, _, rest = tail.partition(" ")
            inline = f"{head} FROM {view} AS OF {mark}"
            if rest:
                inline += f" {rest}"
            assert db.query(inline) == before[sql]
            # And in both execution modes.
            assert db.query(sql, as_of=mark, columnar=True) == before[sql]
            assert db.query(sql, as_of=mark, columnar=False) == before[sql]

    def test_correction_stats_and_metrics(self):
        db = make_db()
        stats = db.correct([(1, 700, 999.0), (1, 800, 998.0)])
        assert stats.revisions >= 1
        assert stats.out_of_order_points == 2
        assert db.stats.revisions == stats.revisions

    def test_erasure_creates_a_gap(self):
        db = make_db()
        db.correct([(1, 700, None)])
        rows = db.query("SELECT TS, Value FROM DataPoint WHERE Tid = 1")
        timestamps = {row["TS"] for row in rows}
        assert 700 not in timestamps
        assert 600 in timestamps and 800 in timestamps

    def test_late_data_extends_the_series(self):
        db = make_db()
        last = (N_POINTS - 1) * SI
        db.correct([(1, last + SI, 77.0)])
        rows = db.query("SELECT TS, Value FROM DataPoint WHERE Tid = 1")
        by_ts = {row["TS"]: row["Value"] for row in rows}
        assert by_ts[last + SI] == 77.0

    def test_unknown_tid_rejected(self):
        db = make_db()
        with pytest.raises(IngestionError):
            db.correct([(99, 700, 1.0)])

    def test_off_grid_timestamp_rejected(self):
        db = make_db()
        with pytest.raises(IngestionError):
            db.correct([(1, 733, 1.0)])

    def test_knowledge_time_advances_per_correction(self):
        db = make_db()
        first = db.knowledge_time()
        db.correct([(1, 700, 1.0)])
        second = db.knowledge_time()
        db.correct([(1, 700, 2.0)])
        assert first < second < db.knowledge_time()


# ----------------------------------------------------------------------
# The replay oracle
# ----------------------------------------------------------------------
class TestReplayOracle:
    BATCHES = (
        [(1, 700, 999.0)],
        [(2, 1200, -5.0), (2, 1300, -6.0)],
        [(1, 700, 123.0)],  # correct the correction
        [(3, 0, 0.0), (3, 100, None)],  # head rewrite + erasure
        [(1, (N_POINTS - 1) * SI + SI, 55.0)],  # late arrival
    )

    def test_every_knowledge_time_replays_exactly(self):
        """AS OF k answers exactly as the store answered at k — for
        every k ever observed, across all query shapes."""
        db = make_db()
        history = {db.knowledge_time(): snapshot(db)}
        for batch in self.BATCHES:
            db.correct(batch)
            history[db.knowledge_time()] = snapshot(db)
        for mark, answers in history.items():
            for sql, rows in answers.items():
                assert db.query(sql, as_of=mark) == rows, (mark, sql)
        # The newest knowledge time is the default read.
        assert snapshot(db) == history[db.knowledge_time()]

    def test_latest_equals_a_fresh_store_ingested_in_order(self):
        db = make_db()
        values = series_values()
        corrected = [vals.astype(np.float64).copy() for vals in values]
        for batch in self.BATCHES[:3]:
            db.correct(batch)
            for tid, timestamp, value in batch:
                corrected[tid - 1][timestamp // SI] = value
        fresh = ModelarDB(Configuration(error_bound=0.0))
        fresh.ingest(
            [
                TimeSeries(
                    tid,
                    SI,
                    np.arange(N_POINTS) * SI,
                    np.float32(vals),
                )
                for tid, vals in enumerate(corrected, 1)
            ]
        )
        point_sql = "SELECT Tid, TS, Value FROM DataPoint"
        key = lambda row: (row["Tid"], row["TS"])  # noqa: E731
        revised = sorted(db.query(point_sql), key=key)
        replayed = sorted(fresh.query(point_sql), key=key)
        assert [key(r) for r in revised] == [key(r) for r in replayed]
        for left, right in zip(revised, replayed):
            assert left["Value"] == pytest.approx(right["Value"])
        total = "SELECT SUM_S(*) FROM Segment"
        assert db.query(total)[0]["SUM_S(*)"] == pytest.approx(
            fresh.query(total)[0]["SUM_S(*)"]
        )


# ----------------------------------------------------------------------
# Durability
# ----------------------------------------------------------------------
class TestFileStorePersistence:
    def test_revision_state_round_trips_across_reopen(self, tmp_path):
        path = tmp_path / "db"
        db = make_db(storage=FileStorage(path))
        mark = db.knowledge_time()
        before = snapshot(db)
        db.correct([(1, 700, 999.0)])
        counter = db.knowledge_time()
        after = snapshot(db)
        db.close()

        with ModelarDB.open(path) as reopened:
            assert reopened.knowledge_time() == counter
            assert snapshot(reopened) == after
            for sql in STATEMENTS:
                assert reopened.query(sql, as_of=mark) == before[sql]
            # The recovered counter keeps advancing monotonically.
            reopened.correct([(1, 800, 1.0)])
            assert reopened.knowledge_time() > counter

    def test_reopen_preserves_revision_history_scan(self, tmp_path):
        path = tmp_path / "db"
        db = make_db(storage=FileStorage(path))
        db.correct([(1, 700, 999.0)])
        history = sorted(
            (s.gid, s.end_time, s.revision, s.knowledge_time)
            for s in db.storage.scan(SegmentScan(all_revisions=True))
        )
        db.close()
        reopened = FileStorage(path)
        assert sorted(
            (s.gid, s.end_time, s.revision, s.knowledge_time)
            for s in reopened.scan(SegmentScan(all_revisions=True))
        ) == history
        assert any(revision for _, _, revision, _ in history)


# ----------------------------------------------------------------------
# The typed read request and the deprecated shim
# ----------------------------------------------------------------------
class TestSegmentScanAPI:
    def test_all_revisions_bypasses_resolution(self):
        db = make_db()
        db.correct([(1, 700, 999.0)])
        resolved = list(db.storage.scan(SegmentScan()))
        history = list(db.storage.scan(SegmentScan(all_revisions=True)))
        assert len(history) > len(resolved)
        assert all(s.revision == 0 or s.knowledge_time for s in history)

    def test_segments_shim_warns_and_delegates(self):
        db = make_db()
        with pytest.warns(DeprecationWarning, match="SegmentScan"):
            shimmed = list(db.storage.segments(gids=[1]))
        assert shimmed == list(db.storage.scan(SegmentScan(gids=(1,))))

    def test_apply_as_of_agreement_and_conflict(self):
        query = parse("SELECT SUM_S(*) FROM Segment AS OF 3")
        assert apply_as_of(query, None).as_of == 3
        assert apply_as_of(query, 3).as_of == 3
        with pytest.raises(QueryError, match="conflicting"):
            apply_as_of(query, 4)
        with pytest.raises(QueryError, match="non-negative"):
            apply_as_of(parse("SELECT SUM_S(*) FROM Segment"), -1)

    def test_as_of_parse_errors(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(*) FROM Segment AS OF banana")
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(*) FROM Segment AS OF -1")
        with pytest.raises(QueryError):
            # The clause binds to the view, not the WHERE tail.
            parse("SELECT SUM_S(*) FROM Segment WHERE Tid = 1 AS OF 1")


# ----------------------------------------------------------------------
# Distribution: the sharded tier and the TCP server
# ----------------------------------------------------------------------
class TestShardedAsOf:
    def test_sharded_as_of_matches_embedded(self):
        db = make_db()
        mark = db.knowledge_time()
        db.correct([(1, 700, 999.0), (2, 1200, -5.0)])
        with ShardedCluster(2, config=db.config) as tier:
            tier.load_storage(db.storage)
            for sql in STATEMENTS:
                latest, _ = tier.sql(sql)
                assert latest == db.query(sql), sql
                bounded, _ = tier.sql(sql, as_of=mark)
                assert bounded == db.query(sql, as_of=mark), sql


class TestServerAsOf:
    def test_server_answers_as_of_and_validates_the_field(self):
        db = make_db()
        mark = db.knowledge_time()
        db.correct([(1, 700, 999.0)])
        sql = "SELECT TS, Value FROM DataPoint WHERE Tid = 1"
        dispatcher = EmbeddedDispatcher.for_db(db)
        thread = ServerThread(QueryServer(dispatcher))
        host, port = thread.start()
        try:
            with ServerClient(host, port) as client:
                assert client.query(sql) == db.query(sql)
                assert client.query(sql, as_of=mark) == db.query(
                    sql, as_of=mark
                )
                # Distinct bounds must not alias in the result cache.
                assert client.query(sql, as_of=mark) != client.query(sql)
                with pytest.raises(BadRequestError):
                    client.query(sql, as_of=-1)
                response = client.request(
                    {"op": "query", "sql": sql, "as_of": "soon"}
                )
                assert response["error"]["code"] == "bad_request"
        finally:
            thread.stop()
