"""The sharded serving tier (tier 1).

Fast coverage of the pieces that do not need a full fleet: the shard
map's placement/ownership/generation contract, the idempotent
``SegmentBatch`` payload, mid-run (``after``) fault arming, the
client's transport retry surface, and one small 2-process smoke of the
scatter-gather path (ingest and load paths, dispatcher caching, cache
invalidation on a real worker loss). The end-to-end crash/rebalance
scenarios live in ``tests/test_shard_cluster.py`` (``pytest -m slow``).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import Configuration, ModelarDB, TimeSeries
from repro.cluster.faults import Fault, FaultPlan, FaultPlanError
from repro.core.errors import ClusterError
from repro.server import ConnectionLostError, ServerClient
from repro.server.protocol import ERROR_STATUS, ErrorCode
from repro.shard import SegmentBatch, ShardedCluster, ShardedDispatcher, ShardMap
from repro.storage import SegmentScan


def make_series(n_series: int = 4, n_points: int = 200) -> list[TimeSeries]:
    rng = np.random.default_rng(7)
    series = []
    for tid in range(1, n_series + 1):
        values = np.float32(
            20 + tid + np.cumsum(rng.normal(0, 0.25, n_points))
        )
        series.append(
            TimeSeries(tid, 100, np.arange(n_points) * 100, values)
        )
    return series


# ----------------------------------------------------------------------
# The shard map
# ----------------------------------------------------------------------
class TestShardMap:
    def test_placement_is_deterministic_across_instances(self):
        a = ShardMap(n_shards=8, n_workers=4)
        b = ShardMap(n_shards=8, n_workers=4)
        for gid in range(1, 200):
            assert a.shard_of(gid) == b.shard_of(gid)

    def test_placement_is_independent_of_membership(self):
        """The ring hashes shards, not workers: Gid->shard never moves
        when the worker count changes."""
        few = ShardMap(n_shards=8, n_workers=2)
        many = ShardMap(n_shards=8, n_workers=16)
        for gid in range(1, 200):
            assert few.shard_of(gid) == many.shard_of(gid)

    def test_placement_is_roughly_balanced(self):
        shard_map = ShardMap(n_shards=4, n_workers=4)
        counts = {shard: 0 for shard in range(4)}
        for gid in range(1, 401):
            counts[shard_map.shard_of(gid)] += 1
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < 4 * min(counts.values())

    def test_initial_owners_stagger_replicas(self):
        shard_map = ShardMap(n_shards=4, n_workers=4, n_replicas=2)
        assert shard_map.owners_of(0) == (0, 1)
        assert shard_map.owners_of(3) == (3, 0)
        primaries = [shard_map.owners_of(s)[0] for s in range(4)]
        assert sorted(primaries) == [0, 1, 2, 3]

    def test_replicas_capped_at_worker_count(self):
        shard_map = ShardMap(n_shards=2, n_workers=2, n_replicas=5)
        assert shard_map.n_replicas == 2

    def test_set_owners_bumps_generation_and_validates(self):
        shard_map = ShardMap(n_shards=2, n_workers=3, n_replicas=1)
        assert shard_map.generation == 0
        shard_map.set_owners(0, (2,))
        assert shard_map.generation == 1
        assert shard_map.owners_of(0) == (2,)
        with pytest.raises(ClusterError):
            shard_map.set_owners(0, ())
        with pytest.raises(ClusterError):
            shard_map.set_owners(0, (1, 1))
        with pytest.raises(ClusterError):
            shard_map.set_owners(9, (1,))
        with pytest.raises(ClusterError):
            shard_map.owners_of(9)
        assert shard_map.generation == 1  # rejected mutations don't bump

    def test_retire_worker_single_bump_and_orphans(self):
        shard_map = ShardMap(n_shards=4, n_workers=2, n_replicas=1)
        affected = shard_map.retire_worker(0)
        assert affected == [s for s in range(4) if s % 2 == 0]
        assert shard_map.generation == 1  # one bump for the whole sweep
        assert shard_map.orphaned_shards() == affected
        assert shard_map.retire_worker(0) == []  # already gone: no bump
        assert shard_map.generation == 1

    def test_invalid_construction(self):
        with pytest.raises(ClusterError):
            ShardMap(n_shards=0, n_workers=1)
        with pytest.raises(ClusterError):
            ShardMap(n_shards=1, n_workers=0)
        with pytest.raises(ClusterError):
            ShardMap(n_shards=1, n_workers=1, n_replicas=0)

    def test_pickle_round_trip(self):
        shard_map = ShardMap(n_shards=4, n_workers=3, n_replicas=2)
        shard_map.set_owners(1, (2, 0))
        clone = pickle.loads(pickle.dumps(shard_map))
        assert clone.generation == shard_map.generation
        assert clone.owners_of(1) == (2, 0)
        for gid in range(1, 100):
            assert clone.shard_of(gid) == shard_map.shard_of(gid)


class TestSegmentBatch:
    def test_pickle_and_tids(self):
        db = ModelarDB(Configuration(error_bound=0.0))
        db.ingest(make_series(n_series=2, n_points=100))
        storage = db.storage
        gid = next(iter(storage.group_metadata()))
        batch = SegmentBatch(
            batch_id=f"gid-{gid}",
            gid=gid,
            time_series=[
                record for record in storage.time_series()
                if record.gid == gid
            ],
            model_table=storage.model_table(),
            segments=list(storage.scan(SegmentScan(gids=(gid,)))),
        )
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.batch_id == batch.batch_id
        assert clone.tids == batch.tids
        assert len(clone.segments) == len(batch.segments)


# ----------------------------------------------------------------------
# Mid-run fault arming
# ----------------------------------------------------------------------
class TestFaultAfter:
    def test_after_lets_requests_through_then_fires(self):
        plan = FaultPlan.crash_after(1, after=2, method="execute")
        assert plan.take(0, "execute") is None  # other worker: untouched
        assert plan.take(1, "ingest") is None   # other method: untouched
        assert plan.take(1, "execute") is None  # pass 1 of 2
        assert plan.take(1, "execute") is None  # pass 2 of 2
        fault = plan.take(1, "execute")
        assert fault is not None and fault.kind == "crash"
        assert plan.take(1, "execute") is None  # spent

    def test_after_zero_is_immediate(self):
        plan = FaultPlan.crash_after(0, after=0)
        assert plan.take(0, "execute") is not None

    def test_negative_after_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault(0, "execute", "crash", after=-1)


# ----------------------------------------------------------------------
# Client transport retry
# ----------------------------------------------------------------------
class TestClientRetry:
    def _serve(self, db):
        from repro.server import EmbeddedDispatcher, QueryServer, ServerThread

        dispatcher = EmbeddedDispatcher.for_db(db)
        thread = ServerThread(QueryServer(dispatcher))
        return thread, thread.start()

    def test_client_redials_after_connection_drop(self):
        db = ModelarDB(Configuration(error_bound=0.0))
        db.ingest(make_series(n_series=2, n_points=100))
        thread, (host, port) = self._serve(db)
        try:
            with ServerClient(host, port) as client:
                first = client.query("SELECT COUNT_S(*) FROM Segment")
                # Sever the transport under the client; the next request
                # must re-dial transparently and answer identically.
                client._drop_connection()
                assert client.query(
                    "SELECT COUNT_S(*) FROM Segment"
                ) == first
        finally:
            thread.stop()

    def test_exhausted_retries_raise_typed_connection_error(self):
        db = ModelarDB(Configuration(error_bound=0.0))
        db.ingest(make_series(n_series=2, n_points=100))
        thread, (host, port) = self._serve(db)
        client = ServerClient(host, port, retries=1, backoff=0.01)
        assert client.ping()
        thread.stop()
        with pytest.raises(ConnectionLostError) as excinfo:
            client.query("SELECT COUNT_S(*) FROM Segment")
        assert excinfo.value.code == ErrorCode.CONNECTION
        assert excinfo.value.status == ERROR_STATUS[ErrorCode.CONNECTION]
        client.close()


# ----------------------------------------------------------------------
# 2-process scatter-gather smoke
# ----------------------------------------------------------------------
class TestShardedSmoke:
    CONFIG = Configuration(error_bound=0.0)
    STATEMENTS = (
        "SELECT COUNT(*) FROM DataPoint",
        "SELECT MIN(Value), MAX(Value) FROM DataPoint",
    )

    def test_ingest_path_matches_embedded_engine(self):
        series = make_series()
        reference = ModelarDB(self.CONFIG)
        reference.ingest(series)
        with ShardedCluster(2, config=self.CONFIG) as tier:
            placement = tier.ingest(series)
            assert placement["data_points"] == sum(len(s) for s in series)
            assert tier.tids == {ts.tid for ts in series}
            for sql in self.STATEMENTS:
                rows, report = tier.sql(sql)
                assert rows == reference.sql(sql)  # order-free: exact
                assert report.subqueries >= 1
                assert report.retries == 0

    def test_load_storage_path_matches_source_store(self):
        series = make_series()
        source = ModelarDB(self.CONFIG)
        source.ingest(series)
        with ShardedCluster(2, config=self.CONFIG) as tier:
            placement = tier.load_storage(source.storage)
            assert placement["segments"] == source.storage.segment_count()
            for sql in self.STATEMENTS:
                rows, _ = tier.sql(sql)
                assert rows == source.sql(sql)

    def test_dispatcher_caches_and_invalidates_on_worker_loss(self):
        series = make_series()
        reference = ModelarDB(self.CONFIG)
        reference.ingest(series)
        with ShardedCluster(2, n_replicas=2, config=self.CONFIG) as tier:
            tier.ingest(series)
            dispatcher = ShardedDispatcher(tier)
            sql = self.STATEMENTS[0]
            rows, cached = dispatcher.execute(sql)
            assert list(rows) == reference.sql(sql) and not cached
            rows, cached = dispatcher.execute(sql)
            assert cached
            # A real loss: fence worker 1 out from under the tier. A
            # cached statement would be served without scattering, so
            # run an uncached one — its scatter detects the dead
            # process, retires it (one generation bump), the replica
            # still answers, and the generation listener empties the
            # result cache, evicting the first statement's entry.
            tier._handles[1].process.terminate()
            tier._handles[1].process.join(timeout=5.0)
            other = self.STATEMENTS[1]
            rows, cached = dispatcher.execute(other)
            assert list(rows) == reference.sql(other) and not cached
            rows, cached = dispatcher.execute(sql)
            assert list(rows) == reference.sql(sql)
            assert not cached  # invalidated by the placement change
            assert tier.lost_workers == 1
            assert tier.live_worker_ids == [0]
            assert tier.generation >= 1
            stats = dispatcher.stats()
            assert stats["mode"] == "sharded"
            assert stats["shard_tier"]["lost_workers"] == 1
            catalog = dispatcher.catalog()
            assert catalog["replicas"] == 2
            assert catalog["generation"] == tier.generation

    def test_analytics_scatter_gather_matches_single_node(self):
        """FORECAST and SIMILAR TO under scatter-gather: per-shard
        analytics rows merged master-side (`merge_analytics_rows`) must
        equal the single-node engine's answer exactly — forecasts
        re-sorted into (Tid, TS) order across disjoint shard Tids, and
        the per-shard top-k lists re-cut to the global top-k under the
        (Distance, Tid, StartTime) total order."""
        series = make_series()
        pattern = ", ".join(
            repr(round(float(value), 3)) for value in series[2].values[60:65]
        )
        statements = (
            "SELECT FORECAST(TS, 8) FROM DataPoint",
            f"SELECT * FROM DataPoint SIMILAR TO ({pattern}) LIMIT 5",
        )
        reference = ModelarDB(self.CONFIG)
        reference.ingest(series)
        with ShardedCluster(2, config=self.CONFIG) as tier:
            tier.ingest(series)
            for sql in statements:
                rows, report = tier.sql(sql)
                assert rows == reference.sql(sql), sql
                assert report.subqueries >= 1
            # Segment selections merge by pass-through, so shard order
            # differs from Tid order; anomaly flags must still agree.
            flags = "SELECT Tid, StartTime FROM Segment WHERE Anomaly = 1"
            rows, _ = tier.sql(flags)
            key = lambda row: (row["Tid"], row["StartTime"])
            assert sorted(rows, key=key) == sorted(
                reference.sql(flags), key=key
            )
