"""Engine and parser error paths all surface as :class:`ModelarError`.

The serving layer reports engine failures in-band (a structured error
frame) and stays up — but that only works if every malformed statement
raises from the ``ModelarError`` hierarchy. Anything else (a raw
``ValueError`` from a literal coercion, say) would be reported as an
``internal`` error and deserves a test that pins it down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Configuration, ModelarDB, ModelarError, TimeSeries
from repro.core.errors import QueryError

#: Statements that must each raise ModelarError — and nothing else.
MALFORMED_CORPUS = (
    "",
    "   ",
    "SELECT",
    "SELECT FROM Segment",
    "SELECT COUNT_S(*)",
    "SELECT COUNT_S(*) FROM",
    "SELECT COUNT_S(*) FROM Nowhere",
    "SELECT COUNT_S(*) FROM Segment WHERE",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid =",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid = 'x'",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid IN ()",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid IN (1,",
    "SELECT COUNT_S(*) FROM Segment WHERE Tid IN (1, 'x')",
    "SELECT COUNT_S(*) FROM Segment GROUP BY",
    "SELECT SUM_S(*) FROM Segment GROUP BY Nope",
    "SELECT NOPE_S(*) FROM Segment",
    "SELECT Bogus FROM DataPoint",
    "SELECT Value FROM Segment",
    "SELECT MEDIAN(Value) FROM DataPoint",
    "SELECT CUBE_SUM_EON(*) FROM Segment",
    "SELECT TS, Value FROM DataPoint WHERE TS = 'abc'",
    "INSERT INTO Segment VALUES (1)",
    "DROP TABLE Segment",
    ")(",
    "\N{DUCK}",
)


@pytest.fixture(scope="module")
def db() -> ModelarDB:
    instance = ModelarDB(Configuration(error_bound=0.0))
    instance.ingest([
        TimeSeries(
            1, 100, np.arange(60) * 100,
            np.float32(np.linspace(0.0, 1.0, 60)),
        )
    ])
    return instance


@pytest.mark.parametrize("sql", MALFORMED_CORPUS, ids=repr)
def test_malformed_sql_raises_modelar_error(db, sql):
    with pytest.raises(ModelarError):
        db.sql(sql)


def test_non_integer_tid_literal_is_a_query_error(db):
    # Regression: this used to escape as a raw ValueError from int().
    with pytest.raises(QueryError, match="integer"):
        db.sql("SELECT COUNT_S(*) FROM Segment WHERE Tid = 'x'")
    with pytest.raises(QueryError, match="integer"):
        db.sql("SELECT COUNT_S(*) FROM Segment WHERE Tid IN (1, 'x')")


def test_tid_range_operator_rejected(db):
    with pytest.raises(QueryError, match="'=' and 'IN'"):
        db.sql("SELECT COUNT_S(*) FROM Segment WHERE Tid > 0")


def test_unknown_dimension_member_column(db):
    # No dimensions configured: any member predicate is unknown.
    with pytest.raises(QueryError):
        db.sql("SELECT COUNT_S(*) FROM Segment WHERE Park = 'Aalborg'")


def test_error_messages_are_actionable(db):
    with pytest.raises(QueryError, match="(?i)unknown view"):
        db.sql("SELECT COUNT_S(*) FROM Nowhere")
    with pytest.raises(QueryError, match="Bogus"):
        db.sql("SELECT Bogus FROM DataPoint")
    with pytest.raises(QueryError, match="(?i)supported"):
        db.sql("SELECT CUBE_SUM_EON(*) FROM Segment")


def test_engine_state_survives_every_error(db):
    """A failing statement must not corrupt the engine for the next one."""
    baseline = db.sql("SELECT COUNT_S(*) FROM Segment")
    for sql in MALFORMED_CORPUS:
        with pytest.raises(ModelarError):
            db.sql(sql)
        assert db.sql("SELECT COUNT_S(*) FROM Segment") == baseline
