"""Property-based tests of the partitioner (Algorithm 1 invariants)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Dimension, DimensionSet, TimeSeries
from repro.partitioner import (
    Clause,
    CorrelationSpec,
    Distance,
    LCALevel,
    group_time_series,
)

_PARKS = ("p0", "p1", "p2")
_COUNTRIES = ("dk", "de")


@st.composite
def assignments(draw):
    """Random dimension assignments for 2-8 series."""
    count = draw(st.integers(min_value=2, max_value=8))
    rows = []
    for tid in range(1, count + 1):
        park = draw(st.sampled_from(_PARKS))
        country = draw(st.sampled_from(_COUNTRIES))
        rows.append((tid, park, country))
    return rows


def build(rows):
    location = Dimension("Location", ["Entity", "Park", "Country"])
    series = []
    for tid, park, country in rows:
        location.assign(tid, (f"e{tid}", park, country))
        series.append(TimeSeries(tid, 100, [0, 100], [1.0, 2.0]))
    return series, DimensionSet([location])


@given(rows=assignments(), level=st.integers(min_value=-2, max_value=3))
@settings(max_examples=150, deadline=None)
def test_grouping_is_a_partition(rows, level):
    """Every series lands in exactly one group; gids are dense."""
    series, dimensions = build(rows)
    spec = CorrelationSpec([Clause((LCALevel("Location", level),))])
    groups = group_time_series(series, spec, dimensions)
    tids = [tid for group in groups for tid in group.tids]
    assert sorted(tids) == [row[0] for row in rows]
    assert [group.gid for group in groups] == list(range(1, len(groups) + 1))


@given(rows=assignments())
@settings(max_examples=100, deadline=None)
def test_park_grouping_matches_members(rows):
    """LCA-level-2 grouping groups exactly the series sharing a park
    (park names are globally unique across countries here)."""
    series, dimensions = build(rows)
    # Make parks unique per country so transitive merging is exact.
    spec = CorrelationSpec([Clause((LCALevel("Location", 2),))])
    groups = group_time_series(series, spec, dimensions)
    by_key = {}
    for tid, park, country in rows:
        by_key.setdefault((country, park), set()).add(tid)
    expected = sorted(tuple(sorted(v)) for v in by_key.values())
    assert sorted(group.tids for group in groups) == expected


@given(rows=assignments(), threshold=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_distance_one_merges_everything(rows, threshold):
    """Threshold 1.0 merges all compatible series; 0.0 merges only
    identical-member sets."""
    series, dimensions = build(rows)
    spec = CorrelationSpec([Clause((Distance(1.0),))])
    groups = group_time_series(series, spec, dimensions)
    assert len(groups) == 1

    spec_zero = CorrelationSpec([Clause((Distance(0.0),))])
    groups_zero = group_time_series(series, spec_zero, dimensions)
    # Entities are unique, so distance 0 can never merge two series.
    assert all(len(group) == 1 for group in groups_zero)


@given(rows=assignments(), threshold=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_grouping_is_deterministic(rows, threshold):
    series_a, dimensions_a = build(rows)
    series_b, dimensions_b = build(rows)
    spec = CorrelationSpec([Clause((Distance(threshold),))])
    groups_a = group_time_series(series_a, spec, dimensions_a)
    groups_b = group_time_series(series_b, spec, dimensions_b)
    assert [g.tids for g in groups_a] == [g.tids for g in groups_b]


@given(rows=assignments())
@settings(max_examples=60, deadline=None)
def test_merging_is_monotone_in_threshold(rows):
    """A larger distance threshold never yields more groups."""
    series, dimensions = build(rows)
    counts = []
    for threshold in (0.0, 0.2, 0.5, 1.0):
        fresh, dims = build(rows)
        spec = CorrelationSpec([Clause((Distance(threshold),))])
        counts.append(len(group_time_series(fresh, spec, dims)))
    assert counts == sorted(counts, reverse=True)
