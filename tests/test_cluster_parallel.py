"""The process-parallel cluster: real workers, faults, and failover.

Tier 1 keeps one small multi-process smoke test so the RPC substrate is
always exercised; the end-to-end and fault-injection scenarios live in
the ``slow`` tier (``pytest -m slow``).

Equality expectations: the process cluster replicates the simulated
cluster's deterministic assignment and merges partials in the same
order, so their rows must be bit-identical (``==``). Against the
*sequential* single-engine reference, order-independent aggregates
(COUNT/MIN/MAX) must be exact while SUM/AVG may differ by float
addition order, hence ``pytest.approx``.
"""

import pytest

from repro import Configuration, ModelarDB
from repro.cluster import FaultPlan, ModelarCluster, ProcessCluster
from repro.core.errors import ClusterError
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION

STATEMENTS = (
    "SELECT COUNT(*) FROM DataPoint",
    "SELECT MIN(Value), MAX(Value) FROM DataPoint",
    "SELECT SUM(Value), AVG(Value) FROM DataPoint",
    "SELECT Entity, SUM(Value) FROM DataPoint GROUP BY Entity",
)

#: Aggregates whose value is independent of the partial-merge order.
ORDER_FREE = ("COUNT", "MIN", "MAX")


@pytest.fixture(scope="module")
def ep():
    return generate_ep(
        n_entities=6, measures_per_entity=3, n_points=800,
        gap_probability=0.001, seed=11,
    )


@pytest.fixture(scope="module")
def ep_config():
    return Configuration(error_bound=1.0, correlation=list(EP_CORRELATION))


def make_cluster(n_workers, ep, ep_config, **kwargs):
    return ProcessCluster(n_workers, ep_config, ep.dimensions, **kwargs)


def assert_rows_close(rows, expected_rows):
    """Exact for order-independent aggregates, approx for SUM/AVG."""
    assert len(rows) == len(expected_rows)
    for got, expected in zip(rows, expected_rows):
        assert set(got) == set(expected)
        for column, value in expected.items():
            if isinstance(value, float) and not any(
                column.upper().startswith(name) for name in ORDER_FREE
            ):
                assert got[column] == pytest.approx(value, rel=1e-9)
            else:
                assert got[column] == value


def test_smoke_two_processes_match_simulated(ep_config):
    """Tier-1: a 2-process cluster is bit-identical to the simulation."""
    ep = generate_ep(
        n_entities=2, measures_per_entity=2, n_points=200,
        gap_probability=0.0, seed=3,
    )
    simulated = ModelarCluster(2, ep_config, ep.dimensions)
    simulated_report = simulated.ingest(ep.series)
    with ProcessCluster(2, ep_config, ep.dimensions) as cluster:
        report = cluster.ingest(ep.series)
        assert report.data_points == simulated_report.data_points
        assert report.wall_seconds > 0.0
        for sql in STATEMENTS[:2]:
            rows, _ = cluster.sql(sql)
            expected, _ = simulated.sql(sql)
            assert rows == expected


@pytest.mark.slow
class TestEndToEnd:
    def test_three_processes_bit_identical_to_simulated(self, ep, ep_config):
        """Satellite 1: 3-process EP run == single-process cluster."""
        simulated = ModelarCluster(3, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        with make_cluster(3, ep, ep_config) as cluster:
            assert cluster.ingest(ep.series).data_points > 0
            # Same deterministic assignment on both substrates.
            assert cluster.assignment() == {
                worker.node_id: sorted(g.gid for g in worker.groups)
                for worker in simulated.workers
            }
            for sql in STATEMENTS:
                rows, report = cluster.sql(sql)
                expected, _ = simulated.sql(sql)
                assert rows == expected  # bit-identical
                assert report.wall_seconds > 0.0
                assert report.failovers == []
            assert cluster.segment_count() == simulated.segment_count()
            assert cluster.size_bytes() == simulated.size_bytes()

    def test_four_processes_match_sequential_engine(self, ep, ep_config):
        """Acceptance: 4-worker pool vs the sequential engine."""
        reference = ModelarDB(ep_config, dimensions=ep.dimensions)
        reference.ingest(ep.series)
        with make_cluster(4, ep, ep_config) as cluster:
            cluster.ingest(ep.series)
            assert len(cluster.live_worker_ids) == 4
            for sql in STATEMENTS:
                rows, _ = cluster.sql(sql)
                assert_rows_close(rows, reference.sql(sql))

    def test_stats_merged_across_processes(self, ep, ep_config):
        reference = ModelarDB(ep_config, dimensions=ep.dimensions)
        reference.ingest(ep.series)
        with make_cluster(3, ep, ep_config) as cluster:
            cluster.ingest(ep.series)
            assert cluster.stats.data_points == reference.stats.data_points
            assert cluster.stats.segments == reference.stats.segments

    def test_per_worker_storage_directories(self, ep, ep_config, tmp_path):
        with make_cluster(
            3, ep, ep_config, storage_root=tmp_path
        ) as cluster:
            cluster.ingest(ep.series)
            segments = cluster.segment_count()
            assert segments > 0
        # Every worker persisted its own FileStorage directory.
        reopened = 0
        for worker_id in range(3):
            directory = tmp_path / f"worker_{worker_id}"
            assert directory.is_dir()
            from repro.storage import FileStorage

            with_store = FileStorage(directory)
            reopened += with_store.segment_count()
        assert reopened == segments


@pytest.mark.slow
class TestFaultInjection:
    def test_crash_mid_query_fails_over(self, ep, ep_config):
        """Satellite 1b: kill a worker mid-query; the master re-assigns
        its groups to survivors and still answers correctly."""
        simulated = ModelarCluster(3, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        plan = FaultPlan.crash(1, method="execute")
        with make_cluster(
            3, ep, ep_config, fault_plan=plan, timeout=2.0
        ) as cluster:
            cluster.ingest(ep.series)
            rows, report = cluster.sql(STATEMENTS[3])
            expected, _ = simulated.sql(STATEMENTS[3])
            # The master detected the crash and moved worker 1's groups.
            assert report.failovers
            assert all(dead == 1 for dead, _ in report.failovers)
            assert 1 not in cluster.live_worker_ids
            assert sorted(cluster.live_worker_ids) == [0, 2]
            assert_rows_close(rows, expected)
            # COUNT is order-free: must be exact despite the failover.
            count_rows, _ = cluster.sql(STATEMENTS[0])
            count_expected, _ = simulated.sql(STATEMENTS[0])
            assert count_rows == count_expected
            # The survivors answer later queries without further drama.
            rows2, report2 = cluster.sql(STATEMENTS[1])
            expected2, _ = simulated.sql(STATEMENTS[1])
            assert rows2 == expected2
            assert report2.failovers == []

    def test_crash_mid_ingest_fails_over(self, ep, ep_config):
        simulated = ModelarCluster(3, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        plan = FaultPlan.crash(1, method="ingest")
        with make_cluster(
            3, ep, ep_config, fault_plan=plan, timeout=2.0
        ) as cluster:
            report = cluster.ingest(ep.series)
            assert cluster.failovers
            assert 1 not in cluster.live_worker_ids
            assert report.data_points == cluster.stats.data_points
            for sql in STATEMENTS[:2]:
                rows, _ = cluster.sql(sql)
                expected, _ = simulated.sql(sql)
                assert rows == expected

    def test_slow_worker_is_retried_not_failed_over(self, ep, ep_config):
        """A late reply is ridden out by resends; no failover happens
        and the (idempotent) re-executed call yields exact results."""
        simulated = ModelarCluster(2, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        plan = FaultPlan.slow(0, delay=0.6, method="execute")
        with make_cluster(
            2, ep, ep_config, fault_plan=plan,
            timeout=0.2, max_retries=3,
        ) as cluster:
            cluster.ingest(ep.series)
            rows, report = cluster.sql(STATEMENTS[0])
            expected, _ = simulated.sql(STATEMENTS[0])
            assert rows == expected
            assert report.failovers == []
            assert sorted(cluster.live_worker_ids) == [0, 1]

    def test_dropped_reply_is_resent(self, ep, ep_config):
        simulated = ModelarCluster(2, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        plan = FaultPlan.drop(0, method="execute")
        with make_cluster(
            2, ep, ep_config, fault_plan=plan,
            timeout=0.3, max_retries=3,
        ) as cluster:
            cluster.ingest(ep.series)
            rows, report = cluster.sql(STATEMENTS[2])
            expected, _ = simulated.sql(STATEMENTS[2])
            assert rows == expected
            assert report.failovers == []
            assert sorted(cluster.live_worker_ids) == [0, 1]

    def test_no_survivors_raises_cluster_error(self, ep_config):
        ep = generate_ep(
            n_entities=2, measures_per_entity=2, n_points=100,
            gap_probability=0.0, seed=5,
        )
        plan = FaultPlan.crash(0, method="execute")
        with ProcessCluster(
            1, ep_config, ep.dimensions, fault_plan=plan, timeout=1.0
        ) as cluster:
            cluster.ingest(ep.series)
            with pytest.raises(ClusterError):
                cluster.sql(STATEMENTS[0])

    def test_tid_predicate_routed_query_survives_crash(self, ep, ep_config):
        """A Tid-restricted query whose owner dies is re-asked from the
        group's new home (the ``force`` path of the routing rewrite)."""
        simulated = ModelarCluster(3, ep_config, ep.dimensions)
        simulated.ingest(ep.series)
        plan = FaultPlan.crash(1, method="execute")
        with make_cluster(
            3, ep, ep_config, fault_plan=plan, timeout=2.0
        ) as cluster:
            cluster.ingest(ep.series)
            victim_tid = next(
                tid for tid in sorted(cluster._tid_to_worker)
                if cluster.worker_of(tid) == 1
            )
            sql = (
                "SELECT COUNT(*), SUM(Value) FROM DataPoint "
                f"WHERE Tid = {victim_tid}"
            )
            rows, report = cluster.sql(sql)
            expected, _ = simulated.sql(sql)
            assert report.failovers
            assert rows == expected
            assert cluster.worker_of(victim_tid) in cluster.live_worker_ids
