"""Unit tests for the serving wire protocol and its support pieces."""

from __future__ import annotations

import io
import struct

import numpy as np
import pytest

from repro.server import normalize_sql
from repro.server.metrics import LatencyHistogram, ServerCounters
from repro.server.protocol import (
    BadRequestError,
    BusyError,
    CancelledError,
    DeadlineError,
    ErrorCode,
    RemoteQueryError,
    decode_body,
    encode_frame,
    error_response,
    raise_for_error,
    recv_frame,
    send_frame,
)
from repro.server.result_cache import QueryResultCache


class _SocketStub:
    """Duck-typed socket over BytesIO for the blocking frame codecs.

    ``recv`` mimics a stream socket (short reads allowed, b'' on EOF);
    ``write``/``flush`` satisfy ``send_frame``'s binary-file branch.
    """

    def __init__(self, incoming: bytes = b"") -> None:
        self._reader = io.BytesIO(incoming)
        self.sent = io.BytesIO()

    def write(self, data: bytes) -> int:
        return self.sent.write(data)

    def flush(self) -> None:
        pass

    def recv(self, size: int) -> bytes:
        return self._reader.read(min(size, 3))  # force short reads


class TestFraming:
    def test_round_trip(self):
        payload = {"op": "query", "sql": "SELECT 1", "n": 7, "ok": True}
        frame = encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert decode_body(frame[4:]) == payload

    def test_numpy_scalars_serialise(self):
        payload = {
            "f32": np.float32(1.5),
            "i64": np.int64(9),
            "rows": [{"v": np.float64(0.25)}],
        }
        decoded = decode_body(encode_frame(payload)[4:])
        assert decoded == {"f32": 1.5, "i64": 9, "rows": [{"v": 0.25}]}
        assert isinstance(decoded["f32"], float)
        assert isinstance(decoded["i64"], int)

    def test_sync_send_recv_round_trip(self):
        out = _SocketStub()
        send_frame(out, {"op": "ping"})
        back = _SocketStub(out.sent.getvalue())
        assert recv_frame(back) == {"op": "ping"}

    def test_recv_on_closed_socket_returns_none(self):
        assert recv_frame(_SocketStub(b"")) is None

    def test_truncated_body_reads_as_eof(self):
        frame = encode_frame({"op": "ping"})
        assert recv_frame(_SocketStub(frame[:-2])) is None

    def test_oversized_frame_rejected(self):
        header = struct.pack(">I", 1 << 31)
        with pytest.raises(BadRequestError):
            recv_frame(_SocketStub(header))

    def test_non_json_body_rejected(self):
        body = b"\xff\xfenot json"
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(BadRequestError):
            recv_frame(_SocketStub(frame))


class TestErrorModel:
    def test_error_response_shape(self):
        payload = error_response(ErrorCode.BUSY, "try later")
        assert payload == {
            "ok": False,
            "error": {"code": "busy", "status": 503, "message": "try later"},
        }

    @pytest.mark.parametrize(
        "code,expected",
        [
            (ErrorCode.BUSY, BusyError),
            (ErrorCode.TIMEOUT, DeadlineError),
            (ErrorCode.CANCELLED, CancelledError),
            (ErrorCode.QUERY, RemoteQueryError),
            (ErrorCode.BAD_REQUEST, BadRequestError),
        ],
    )
    def test_raise_for_error_maps_codes(self, code, expected):
        with pytest.raises(expected):
            raise_for_error(error_response(code, "boom"))

    def test_raise_for_error_passes_success(self):
        assert raise_for_error({"ok": True, "rows": []}) is None


class TestNormalizeSql:
    def test_collapses_whitespace_and_case(self):
        assert (
            normalize_sql("select  count_s(*)\n FROM   segment ")
            == "SELECT COUNT_S(*) FROM SEGMENT"
        )

    def test_string_literals_stay_verbatim(self):
        a = normalize_sql("SELECT SUM_S(*) FROM Segment WHERE Park = 'aal'")
        b = normalize_sql("SELECT SUM_S(*) FROM Segment WHERE Park = 'AAL'")
        assert a != b
        assert "'aal'" in a and "'AAL'" in b

    def test_whitespace_inside_literal_preserved(self):
        key = normalize_sql("SELECT x FROM t WHERE n = 'a  b'")
        assert "'a  b'" in key

    def test_distinct_statements_stay_distinct(self):
        assert normalize_sql("SELECT MIN_S(*) FROM Segment") != normalize_sql(
            "SELECT MAX_S(*) FROM Segment"
        )


class TestResultCacheUnit:
    def test_lru_eviction(self):
        cache = QueryResultCache(capacity=2)
        for n, sql in enumerate(("A", "B", "C")):
            cache.put(sql, [{"n": n}], cache.generation)
        assert cache.get("A") is None  # evicted, oldest
        assert cache.get("C") == [{"n": 2}]
        assert len(cache) == 2

    def test_stale_generation_not_cached(self):
        cache = QueryResultCache()
        generation = cache.generation
        cache.invalidate()  # a flush raced with the query
        cache.put("SELECT 1", [{"v": 1}], generation)
        assert cache.get("SELECT 1") is None

    def test_invalidate_clears_and_counts(self):
        cache = QueryResultCache()
        cache.put("SELECT 1", [{"v": 1}], cache.generation)
        cache.invalidate()
        assert cache.get("SELECT 1") is None
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["invalidations"] == 1
        assert stats["generation"] == 1

    def test_zero_capacity_never_stores(self):
        cache = QueryResultCache(capacity=0)
        cache.put("SELECT 1", [{"v": 1}], cache.generation)
        assert cache.get("SELECT 1") is None


class TestMetrics:
    def test_histogram_quantiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for ms in (1, 2, 3, 4, 5, 6, 7, 8, 9, 100):
            histogram.record(ms / 1000.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 10
        assert snapshot["min_ms"] <= 1.0 + 1e-6
        assert snapshot["max_ms"] >= 100.0 - 1e-6
        # Geometric buckets: quantiles are approximate but must be
        # ordered and in the right decade.
        assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
        assert 2.0 < snapshot["p50_ms"] < 20.0
        assert snapshot["p99_ms"] > 50.0

    def test_empty_histogram_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_ms"] == 0.0

    def test_counters_bump_and_snapshot(self):
        counters = ServerCounters()
        counters.bump("requests")
        counters.bump("requests")
        counters.bump("accepted")
        snapshot = counters.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["accepted"] == 1
        assert snapshot["rejected_busy"] == 0
