"""Swing: the group-extended linear model."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.models.base import to_float32
from repro.models.swing import Swing


@pytest.fixture
def swing():
    return Swing()


def fit(swing, vectors, error_bound=10.0, limit=50):
    fitter = swing.fitter(len(vectors[0]), error_bound, limit)
    accepted = 0
    for vector in vectors:
        if not fitter.append(tuple(vector)):
            break
        accepted += 1
    return fitter, accepted


def linear(start, slope, n):
    return [(to_float32(start + slope * i),) for i in range(n)]


class TestFitting:
    def test_exact_line_fits_losslessly(self, swing):
        fitter, accepted = fit(swing, linear(5.0, 0.5, 30), error_bound=0.0)
        assert accepted == 30

    def test_noisy_line_fits_within_bound(self, swing):
        rng = np.random.default_rng(0)
        vectors = [
            (100.0 + 2.0 * i + rng.uniform(-1, 1),) for i in range(30)
        ]
        fitter, accepted = fit(swing, vectors, error_bound=5.0)
        assert accepted == 30

    def test_direction_change_rejected(self, swing):
        vectors = linear(100.0, 1.0, 10) + [(10.0,)]
        fitter, accepted = fit(swing, vectors, error_bound=1.0)
        assert accepted == 10

    def test_rejection_keeps_state(self, swing):
        fitter = swing.fitter(1, 1.0, 50)
        for (value,) in linear(100.0, 1.0, 5):
            assert fitter.append((value,))
        assert not fitter.append((500.0,))
        assert fitter.append((105.0,))  # the line continues
        assert fitter.length == 6

    def test_group_reduction(self, swing):
        # Three series on parallel lines within the bound.
        vectors = [
            (100.0 + i, 101.0 + i, 99.0 + i) for i in range(20)
        ]
        fitter, accepted = fit(swing, vectors, error_bound=5.0)
        assert accepted == 20

    def test_group_outside_bound_rejected(self, swing):
        vectors = [(100.0, 150.0)]
        fitter, accepted = fit(swing, vectors, error_bound=1.0)
        assert accepted == 0

    def test_single_point_has_zero_slope(self, swing):
        fitter, _ = fit(swing, [(42.0,)])
        model = swing.decode(fitter.parameters(), 1, 1)
        assert model.slope == 0.0
        assert model.intercept == pytest.approx(42.0, rel=1e-6)

    def test_length_limit(self, swing):
        fitter, accepted = fit(swing, linear(0.0, 1.0, 60), limit=50)
        assert accepted == 50


class TestEncoding:
    def test_parameters_are_eight_bytes(self, swing):
        fitter, _ = fit(swing, linear(1.0, 1.0, 5))
        assert len(fitter.parameters()) == 8
        assert fitter.size_bytes() == 8

    def test_empty_fitter_cannot_encode(self, swing):
        with pytest.raises(ModelError):
            swing.fitter(1, 1.0, 50).parameters()

    def test_decode_rejects_wrong_size(self, swing):
        with pytest.raises(ModelError):
            swing.decode(b"\x00" * 4, 1, 5)

    def test_round_trip_exact_line(self, swing):
        vectors = linear(5.0, 0.5, 20)
        fitter, _ = fit(swing, vectors, error_bound=0.0)
        model = swing.decode(fitter.parameters(), 1, 20)
        for index, (value,) in enumerate(vectors):
            assert model.value_at(index, 0) == pytest.approx(value, abs=1e-9)

    def test_round_trip_within_bound(self, swing):
        rng = np.random.default_rng(3)
        vectors = [
            (200.0 - 1.5 * i + rng.uniform(-2, 2),) for i in range(30)
        ]
        fitter, accepted = fit(swing, vectors, error_bound=5.0)
        model = swing.decode(fitter.parameters(), 1, accepted)
        for index in range(accepted):
            value = vectors[index][0]
            error = abs(model.value_at(index, 0) - value)
            assert error <= 0.05 * abs(value) + 1e-6


class TestAggregates:
    def test_slice_sum_is_arithmetic_series(self, swing):
        fitter, _ = fit(swing, linear(0.0, 1.0, 10), error_bound=0.0)
        model = swing.decode(fitter.parameters(), 1, 10)
        # 0 + 1 + ... + 9 = 45
        assert model.slice_sum(0, 9, 0) == pytest.approx(45.0)
        # 2 + 3 + 4 = 9
        assert model.slice_sum(2, 4, 0) == pytest.approx(9.0)

    def test_min_max_at_endpoints(self, swing):
        fitter, _ = fit(swing, linear(10.0, -1.0, 5), error_bound=0.0)
        model = swing.decode(fitter.parameters(), 1, 5)
        assert model.slice_min(0, 4, 0) == pytest.approx(6.0)
        assert model.slice_max(0, 4, 0) == pytest.approx(10.0)

    def test_constant_time_flag(self, swing):
        fitter, _ = fit(swing, linear(0.0, 1.0, 3))
        model = swing.decode(fitter.parameters(), 1, 3)
        assert model.constant_time_aggregates

    def test_values_shape_broadcasts_columns(self, swing):
        fitter, _ = fit(
            swing, [(i * 1.0, i * 1.0) for i in range(5)], error_bound=1.0
        )
        model = swing.decode(fitter.parameters(), 2, 5)
        assert model.values().shape == (5, 2)

    def test_paper_example_sum(self, swing):
        # Fig. 11: SUM over -0.0465t + 186.1 for t = 100..2300 step 100
        # equals ((181.45 + 79.15) / 2) * 23 = 2996.9.
        from repro.models.swing import FittedSwing

        model = FittedSwing(
            intercept=-0.0465 * 100 + 186.1, slope=-0.0465 * 100,
            n_columns=3, length=23,
        )
        assert model.slice_sum(0, 22, 0) == pytest.approx(2996.9, abs=0.01)
