"""Property-based tests of query-layer equivalences.

For arbitrary data, bounds and intervals the three ways of answering an
aggregate must agree: the Segment View (on models), the Data Point View
(reconstruction) and numpy over the reconstructed points. For lossless
ingestion all three must equal ground truth over the *original* values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Configuration, ModelarDB, TimeSeries

f32_values = st.floats(
    min_value=-1e5, max_value=1e5,
    allow_nan=False, allow_infinity=False, width=32,
)


def build_db(values, bound):
    series = TimeSeries(1, 100, [i * 100 for i in range(len(values))], values)
    db = ModelarDB(Configuration(error_bound=bound))
    db.ingest([series])
    return db


@given(
    values=st.lists(f32_values, min_size=3, max_size=90),
    bound=st.sampled_from([0.0, 1.0, 10.0]),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_views_agree_on_clipped_aggregates(values, bound, data):
    """SV == DPV for every aggregate over a random sub-interval."""
    db = build_db(values, bound)
    n = len(values)
    first = data.draw(st.integers(min_value=0, max_value=n - 1))
    last = data.draw(st.integers(min_value=first, max_value=n - 1))
    start, end = first * 100, last * 100
    for function in ("SUM", "MIN", "MAX", "AVG", "COUNT"):
        sv = db.sql(
            f"SELECT {function}_S(*) FROM Segment WHERE TS >= {start} "
            f"AND TS <= {end}"
        )[0][f"{function}_S(*)"]
        dpv = db.sql(
            f"SELECT {function}(*) FROM DataPoint WHERE TS >= {start} "
            f"AND TS <= {end}"
        )[0][f"{function}(*)"]
        assert sv == pytest.approx(dpv, rel=1e-9, abs=1e-9), function


@given(values=st.lists(f32_values, min_size=1, max_size=90))
@settings(max_examples=60, deadline=None)
def test_lossless_aggregates_equal_ground_truth(values):
    db = build_db(values, 0.0)
    quantized = np.float32(values).astype(np.float64)
    row = db.sql(
        "SELECT SUM_S(*), MIN_S(*), MAX_S(*), COUNT_S(*) FROM Segment"
    )[0]
    assert row["COUNT_S(*)"] == len(values)
    assert row["SUM_S(*)"] == pytest.approx(quantized.sum(), rel=1e-9, abs=1e-9)
    assert row["MIN_S(*)"] == pytest.approx(quantized.min())
    assert row["MAX_S(*)"] == pytest.approx(quantized.max())


@given(
    values=st.lists(f32_values, min_size=1, max_size=90),
    bound=st.sampled_from([0.0, 5.0]),
)
@settings(max_examples=40, deadline=None)
def test_rollup_partitions_the_simple_aggregate(values, bound):
    """Minute-bucket sums must add up to the overall sum (Algorithm 6
    covers every point exactly once)."""
    db = build_db(values, bound)
    total = db.sql("SELECT SUM_S(*) FROM Segment")[0]["SUM_S(*)"]
    buckets = db.sql("SELECT CUBE_SUM_MINUTE(*) FROM Segment")
    bucket_total = sum(row["CUBE_SUM_MINUTE(*)"] for row in buckets)
    assert bucket_total == pytest.approx(total, rel=1e-9, abs=1e-9)
    counts = db.sql("SELECT CUBE_COUNT_MINUTE(*) FROM Segment")
    assert sum(row["CUBE_COUNT_MINUTE(*)"] for row in counts) == len(values)


@given(
    values=st.lists(f32_values, min_size=2, max_size=60),
    scaling=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_scaling_round_trips_through_queries(values, scaling):
    """Ingesting with a scaling constant must not change query results
    beyond the error bound (ingest multiplies, queries divide)."""
    quantized = [float(np.float32(v)) for v in values]
    series = TimeSeries(
        1, 100, [i * 100 for i in range(len(values))], quantized,
        scaling=scaling,
    )
    db = ModelarDB(Configuration(error_bound=0.0))
    db.ingest([series])
    points = {p.timestamp: p.value for p in db.points(tids=[1])}
    for index, value in enumerate(quantized):
        # The scaled value is quantised to float32 during ingestion, so
        # the round trip may lose the low bits of value * scaling.
        scaled = float(np.float32(value * scaling))
        assert points[index * 100] == pytest.approx(
            scaled / scaling, rel=1e-6, abs=1e-30
        )


@given(
    values=st.lists(f32_values, min_size=1, max_size=60),
    bound=st.sampled_from([0.0, 1.0, 10.0]),
)
@settings(max_examples=40, deadline=None)
def test_count_never_depends_on_bound(values, bound):
    db = build_db(values, bound)
    assert db.sql("SELECT COUNT_S(*) FROM Segment")[0]["COUNT_S(*)"] == len(
        values
    )
