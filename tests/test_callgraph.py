"""Tests for the whole-program symbol table and call graph
(:mod:`repro.analysis.callgraph`).

The builder is what makes RPR007–RPR010 trustworthy, so it gets its
own corpus: module naming, call-site classification, resolution
through every supported indirection (plain imports, aliased imports,
``from`` imports, ``self.`` methods, locally-constructed receivers,
factory constructors, unique basenames, inheritance), cycle handling
in the taint walk, and — critically — a drift test proving the
interprocedural findings do not depend on file visit order.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.callgraph import (
    MODULE_BODY,
    ModuleFacts,
    Program,
    extract_module_facts,
    in_scope,
    module_name,
)
from repro.analysis.engine import Config, FileContext
from repro.analysis.rules import DeterminismTaintRule


def facts_for(tmp_path: Path, rel: str, source: str) -> ModuleFacts:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    text = textwrap.dedent(source)
    target.write_text(text, encoding="utf-8")
    return extract_module_facts(FileContext(tmp_path, target, text))


def build_program(
    tmp_path: Path,
    files: dict[str, str],
    order: list[str] | None = None,
) -> Program:
    modules = {rel: facts_for(tmp_path, rel, src) for rel, src in files.items()}
    if order is not None:
        modules = {rel: modules[rel] for rel in order}
    return Program(tmp_path, Config(), modules, {})


class TestModuleNaming:
    def test_src_prefix_is_stripped(self):
        assert module_name("src/repro/obs/catalog.py") == "repro.obs.catalog"

    def test_package_init_maps_to_package(self):
        assert module_name("src/repro/models/__init__.py") == "repro.models"

    def test_non_src_path(self):
        assert module_name("benchmarks/bench_x.py") == "benchmarks.bench_x"

    def test_in_scope_prefixes(self):
        assert in_scope("src/repro/models/swing.py", ("src/repro/models",))
        assert in_scope("src/repro/models/swing.py", ("src/repro/models/",))
        assert not in_scope(
            "src/repro/modelsx/y.py", ("src/repro/models",)
        )


class TestExtraction:
    def test_functions_methods_and_module_body(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "src/pkg/mod.py",
            """
            import time

            time.time()

            def top():
                pass

            class C:
                def method(self):
                    self.helper()

                def helper(self):
                    pass
            """,
        )
        names = {(f.cls, f.name) for f in facts.functions}
        assert (None, MODULE_BODY) in names
        assert (None, "top") in names
        assert ("C", "method") in names
        assert facts.classes[0].name == "C"
        assert set(facts.classes[0].methods) == {"method", "helper"}

    def test_call_kinds(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "src/pkg/mod.py",
            """
            import time
            import numpy as np
            from json import dumps

            def f(arg):
                time.time()
                np.random.default_rng()
                dumps({})
                local()
                arg.mystery()
                self_free = 1

            def local():
                pass
            """,
        )
        (f,) = [fn for fn in facts.functions if fn.name == "f"]
        kinds = {(c.kind, c.target) for c in f.calls}
        assert ("dotted", "time.time") in kinds
        assert ("dotted", "numpy.random.default_rng") in kinds
        assert ("dotted", "json.dumps") in kinds
        assert ("name", "local") in kinds
        assert ("method", "mystery") in kinds

    def test_bare_flag_marks_argless_calls(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "src/pkg/mod.py",
            """
            import numpy as np

            def f():
                np.random.default_rng()
                np.random.default_rng(7)
            """,
        )
        (f,) = [fn for fn in facts.functions if fn.name == "f"]
        bares = [c.bare for c in f.calls]
        assert bares == [True, False]

    def test_round_trip_through_json_dicts(self, tmp_path):
        facts = facts_for(
            tmp_path,
            "src/pkg/mod.py",
            """
            class C:
                def m(self):
                    self.n()

                def n(self):
                    pass
            """,
        )
        assert ModuleFacts.from_dict(facts.to_dict()) == facts


class TestResolution:
    def test_aliased_import_resolves(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/util.py": """
                    def helper():
                        pass
                """,
                "src/a/caller.py": """
                    import a.util as u

                    def go():
                        u.helper()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        (call,) = caller.calls
        assert program.resolve_call(caller, call) == ["a.util.helper"]

    def test_from_import_resolves(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/util.py": "def helper():\n    pass\n",
                "src/a/caller.py": """
                    from a.util import helper

                    def go():
                        helper()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        (call,) = caller.calls
        assert program.resolve_call(caller, call) == ["a.util.helper"]

    def test_self_method_resolves_through_bases(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/base.py": """
                    class Base:
                        def shared(self):
                            pass
                """,
                "src/a/child.py": """
                    from a.base import Base

                    class Child(Base):
                        def go(self):
                            self.shared()
                """,
            },
        )
        caller = program.functions["a.child.Child.go"]
        (call,) = caller.calls
        assert program.resolve_call(caller, call) == ["a.base.Base.shared"]

    def test_typed_local_receiver_resolves(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/store.py": """
                    class Store:
                        def scan(self):
                            pass
                """,
                "src/a/caller.py": """
                    from a.store import Store

                    def go():
                        store = Store()
                        store.scan()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        scan = [c for c in caller.calls if c.target.endswith("scan")][0]
        assert program.resolve_call(caller, scan) == ["a.store.Store.scan"]

    def test_factory_constructor_types_the_local(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/store.py": """
                    class Store:
                        @classmethod
                        def open(cls):
                            return cls()

                        def scan(self):
                            pass
                """,
                "src/a/caller.py": """
                    from a.store import Store

                    def go():
                        store = Store.open()
                        store.scan()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        scan = [c for c in caller.calls if c.target.endswith("scan")][0]
        assert program.resolve_call(caller, scan) == ["a.store.Store.scan"]

    def test_unique_basename_fallback(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/impl.py": "def unique_helper():\n    pass\n",
                "src/a/caller.py": """
                    from a.facade import unique_helper

                    def go():
                        unique_helper()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        (call,) = caller.calls
        assert program.resolve_call(caller, call) == ["a.impl.unique_helper"]

    def test_ambiguous_basename_does_not_resolve(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/one.py": "def dup():\n    pass\n",
                "src/a/two.py": "def dup():\n    pass\n",
                "src/a/caller.py": """
                    from a.elsewhere import dup

                    def go():
                        dup()
                """,
            },
        )
        caller = program.functions["a.caller.go"]
        (call,) = caller.calls
        assert program.resolve_call(caller, call) == []


class TestTaint:
    FILES = {
        "src/repro/util/clock.py": """
            import time

            def stamp():
                return time.time()

            def relay():
                return stamp()
        """,
        "src/repro/models/kernel.py": """
            from repro.util.clock import relay

            def fit(values):
                return relay()
        """,
    }

    @staticmethod
    def classify(call):
        from repro.analysis.rules import _source_of

        if call.kind != "dotted":
            return None
        return _source_of(call.target, call.bare)

    def test_taint_propagates_with_chain(self, tmp_path):
        program = build_program(tmp_path, self.FILES)
        tainted = program.taint(self.classify)
        assert tainted["repro.util.clock.stamp"].source == "time.time"
        assert tainted["repro.util.clock.stamp"].chain == (
            "repro.util.clock.stamp",
        )
        assert tainted["repro.util.clock.relay"].chain == (
            "repro.util.clock.relay",
            "repro.util.clock.stamp",
        )
        assert "repro.models.kernel.fit" in tainted

    def test_recursive_cycle_terminates(self, tmp_path):
        program = build_program(
            tmp_path,
            {
                "src/a/loop.py": """
                    import time

                    def ping():
                        return pong()

                    def pong():
                        return ping() + time.time()
                """,
            },
        )
        tainted = program.taint(self.classify)
        assert "a.loop.ping" in tainted
        assert "a.loop.pong" in tainted

    def test_rpr007_findings_stable_under_file_order(self, tmp_path):
        rule = DeterminismTaintRule(Config())
        orders = (
            sorted(self.FILES),
            sorted(self.FILES, reverse=True),
        )
        results = []
        for index, order in enumerate(orders):
            base = tmp_path / f"run{index}"
            base.mkdir()
            program = build_program(base, dict(self.FILES), list(order))
            results.append(
                [
                    (f.rule, f.path, f.line, f.col, f.message)
                    for f in rule.check_program(program)
                ]
            )
        assert results[0] == results[1]
        assert results[0], "expected at least one RPR007 finding"

    def test_callers_of_is_reverse_adjacency(self, tmp_path):
        program = build_program(tmp_path, self.FILES)
        callers = program.callers_of()
        assert "repro.util.clock.relay" in callers["repro.util.clock.stamp"]
        assert (
            "repro.models.kernel.fit"
            in callers["repro.util.clock.relay"]
        )
