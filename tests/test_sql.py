"""The SQL dialect parser (Section 7.2's query classes)."""

import pytest

from repro.core.errors import QueryError
from repro.query.sql import (
    Call,
    Column,
    Condition,
    Forecast,
    Query,
    Star,
    parse,
)


class TestSelect:
    def test_paper_example_query(self):
        # Fig. 11's query.
        query = parse(
            "SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) "
            "GROUP BY Tid"
        )
        assert query.view == "segment"
        assert query.select == (Column("Tid"), Call("SUM_S", "*"))
        assert query.where == (Condition("Tid", "IN", (1, 2, 3)),)
        assert query.group_by == ("Tid",)
        assert query.is_aggregate

    def test_cube_function(self):
        # Fig. 12's query.
        query = parse(
            "SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid IN (1, 2, 3) "
            "GROUP BY Tid"
        )
        assert Call("CUBE_SUM_HOUR", "*") in query.select

    def test_star_selection(self):
        query = parse("SELECT * FROM DataPoint")
        assert query.select == (Star(),)
        assert not query.is_aggregate

    def test_plain_columns(self):
        query = parse("SELECT TS, Value FROM DataPoint WHERE Tid = 2")
        assert query.select == (Column("TS"), Column("Value"))

    def test_aggregate_with_column_argument(self):
        query = parse("SELECT COUNT(Value) FROM DataPoint")
        assert query.select == (Call("COUNT", "Value"),)

    def test_view_names_case_insensitive(self):
        assert parse("select sum_s(*) from SEGMENT").view == "segment"
        assert parse("SELECT COUNT(*) FROM datapoint").view == "datapoint"

    def test_function_name_uppercased(self):
        query = parse("SELECT sum_s(*) FROM Segment")
        assert query.select == (Call("SUM_S", "*"),)


class TestWhere:
    def test_comparison_operators(self):
        query = parse(
            "SELECT Value FROM DataPoint WHERE TS >= 100 AND TS <= 200 "
            "AND Value > 1.5"
        )
        assert query.where == (
            Condition("TS", ">=", 100),
            Condition("TS", "<=", 200),
            Condition("Value", ">", 1.5),
        )

    def test_string_literals(self):
        query = parse(
            "SELECT SUM_S(*) FROM Segment WHERE Category = 'Production'"
        )
        assert query.where == (Condition("Category", "=", "Production"),)

    def test_double_quoted_strings(self):
        query = parse('SELECT SUM_S(*) FROM Segment WHERE Park = "Aalborg"')
        assert query.where == (Condition("Park", "=", "Aalborg"),)

    def test_qualified_column(self):
        query = parse(
            "SELECT SUM_S(*) FROM Segment WHERE Location.Park = 'Aalborg'"
        )
        assert query.where[0].column == "Location.Park"

    def test_in_list(self):
        query = parse("SELECT COUNT_S(*) FROM Segment WHERE Tid IN (4)")
        assert query.where == (Condition("Tid", "IN", (4,)),)

    def test_negative_numbers(self):
        query = parse("SELECT Value FROM DataPoint WHERE Value >= -3.5")
        assert query.where == (Condition("Value", ">=", -3.5),)


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(*) Segment")

    def test_unknown_view(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(*) FROM Points")

    def test_unsupported_operator(self):
        with pytest.raises(QueryError):
            parse("SELECT Value FROM DataPoint WHERE Tid <> 1")

    def test_unclosed_in_list(self):
        with pytest.raises(QueryError):
            parse("SELECT COUNT_S(*) FROM Segment WHERE Tid IN (1, 2")

    def test_trailing_tokens(self):
        # LIMIT itself is grammar now (similarity's k); anything after
        # the LIMIT clause is still trailing garbage.
        with pytest.raises(QueryError):
            parse("SELECT COUNT_S(*) FROM Segment LIMIT 5 extra")

    def test_unclosed_call(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(* FROM Segment")

    def test_empty_query(self):
        with pytest.raises(QueryError):
            parse("")

    def test_garbage_token(self):
        with pytest.raises(QueryError):
            parse("SELECT SUM_S(*) FROM Segment WHERE Tid = ;")


class TestAnalytics:
    def test_forecast(self):
        query = parse("SELECT FORECAST(TS, 10) FROM DataPoint WHERE Tid = 1")
        assert query.select == (Forecast(10),)
        assert query.has_forecast
        assert not query.is_aggregate
        assert query.where == (Condition("Tid", "=", 1),)

    def test_forecast_keyword_case_insensitive(self):
        query = parse("select forecast(ts, 3) from datapoint")
        assert query.select == (Forecast(3),)

    def test_similar_to_pattern_and_limit(self):
        query = parse(
            "SELECT * FROM DataPoint SIMILAR TO (1.0, -2.5, 3) LIMIT 5"
        )
        assert query.similar_to == (1.0, -2.5, 3.0)
        assert query.limit == 5
        assert query.select == (Star(),)

    def test_similar_to_without_limit(self):
        query = parse("SELECT * FROM Segment SIMILAR TO (4.5)")
        assert query.similar_to == (4.5,)
        assert query.limit is None

    @pytest.mark.parametrize(
        "sql",
        [
            # FORECAST extrapolates the TS axis only, with an integer
            # horizon of at least 1.
            "SELECT FORECAST(Value, 5) FROM DataPoint",
            "SELECT FORECAST(TS, 0) FROM DataPoint",
            "SELECT FORECAST(TS, -3) FROM DataPoint",
            "SELECT FORECAST(TS, 2.5) FROM DataPoint",
            "SELECT FORECAST(TS, x) FROM DataPoint",
            "SELECT FORECAST(TS 5) FROM DataPoint",
            "SELECT FORECAST(TS, 5 FROM DataPoint",
            # SIMILAR TO takes a parenthesized numeric pattern.
            "SELECT * FROM DataPoint SIMILAR TO 1.0",
            "SELECT * FROM DataPoint SIMILAR TO ()",
            "SELECT * FROM DataPoint SIMILAR TO (1.0, x)",
            "SELECT * FROM DataPoint SIMILAR TO (1.0, 2.0",
            # LIMIT takes an integer of at least 1.
            "SELECT * FROM DataPoint SIMILAR TO (1.0) LIMIT 0",
            "SELECT * FROM DataPoint SIMILAR TO (1.0) LIMIT -1",
            "SELECT * FROM DataPoint SIMILAR TO (1.0) LIMIT many",
        ],
    )
    def test_malformed_analytics(self, sql):
        with pytest.raises(QueryError):
            parse(sql)
