"""Multiple models per segment (Section 5.1)."""

import numpy as np
import pytest

from repro.core.errors import ModelError
from repro.models.gorilla import Gorilla
from repro.models.multi import MultiModel
from repro.models.pmc_mean import PMCMean
from repro.models.swing import Swing


class TestFitting:
    def test_independent_columns_fit_separately(self):
        # Column 0 rises, column 1 falls: a single group Swing would
        # fail, but per-column sub-models fit both.
        multi = MultiModel(Swing())
        fitter = multi.fitter(2, 1.0, 50)
        for i in range(20):
            assert fitter.append((float(i), float(100 - i)))
        assert fitter.length == 20

    def test_lock_step_rejection(self):
        # Fig. 9 case III: when one column rejects, the timestamp is not
        # covered for any column.
        multi = MultiModel(PMCMean())
        fitter = multi.fitter(2, 1.0, 50)
        assert fitter.append((100.0, 200.0))
        assert not fitter.append((100.0, 900.0))  # column 1 rejects
        assert fitter.length == 1

    def test_rollback_preserves_prefix(self):
        multi = MultiModel(PMCMean())
        fitter = multi.fitter(2, 1.0, 50)
        assert fitter.append((100.0, 200.0))
        assert not fitter.append((100.0, 900.0))
        # The prefix is still extendable after the rollback.
        assert fitter.append((100.5, 200.5))
        assert fitter.length == 2

    def test_gorilla_rollback_discards_leftover_parameters(self):
        # A variable-size sub-model must not keep bits for the rejected
        # timestamp (the "leftover parameters" of Section 5.1).
        multi = MultiModel(Gorilla())
        fitter = multi.fitter(2, 0.0, 3)
        for i in range(3):
            fitter.append((float(i), float(i)))
        size_before = fitter.size_bytes()
        assert not fitter.append((3.0, 3.0))  # length limit
        assert fitter.size_bytes() == size_before


class TestEncoding:
    def test_round_trip(self):
        multi = MultiModel(Swing())
        fitter = multi.fitter(3, 0.0, 50)
        rows = [
            (float(i), float(2 * i), float(100 - i)) for i in range(10)
        ]
        for row in rows:
            assert fitter.append(row)
        model = multi.decode(fitter.parameters(), 3, 10)
        decoded = model.values()
        assert decoded.shape == (10, 3)
        assert np.allclose(decoded, np.array(rows), atol=1e-5)

    def test_empty_fitter_cannot_encode(self):
        multi = MultiModel(PMCMean())
        with pytest.raises(ModelError):
            multi.fitter(2, 1.0, 50).parameters()

    def test_decode_truncated_rejected(self):
        multi = MultiModel(PMCMean())
        fitter = multi.fitter(2, 1.0, 50)
        fitter.append((1.0, 2.0))
        params = fitter.parameters()
        with pytest.raises(ModelError):
            multi.decode(params[:-2], 2, 1)

    def test_size_larger_than_single_group_model(self):
        # The Section 5.1 baseline shares metadata but not values: for
        # correlated series one group PMC beats N sub-models.
        multi = MultiModel(PMCMean())
        multi_fitter = multi.fitter(3, 1.0, 50)
        group = PMCMean().fitter(3, 1.0, 50)
        for _ in range(20):
            multi_fitter.append((100.0, 100.1, 99.9))
            group.append((100.0, 100.1, 99.9))
        assert multi_fitter.size_bytes() > group.size_bytes()


class TestAggregates:
    def test_per_column_aggregates(self):
        multi = MultiModel(Swing())
        fitter = multi.fitter(2, 0.0, 50)
        for i in range(5):
            fitter.append((float(i), float(10 - i)))
        model = multi.decode(fitter.parameters(), 2, 5)
        assert model.slice_sum(0, 4, 0) == pytest.approx(10.0)
        assert model.slice_sum(0, 4, 1) == pytest.approx(40.0)
        assert model.slice_min(0, 4, 1) == pytest.approx(6.0)
        assert model.slice_max(0, 4, 0) == pytest.approx(4.0)
        assert model.value_at(2, 0) == pytest.approx(2.0)

    def test_constant_time_follows_base(self):
        pmc_multi = MultiModel(PMCMean())
        fitter = pmc_multi.fitter(1, 1.0, 50)
        fitter.append((1.0,))
        assert pmc_multi.decode(
            fitter.parameters(), 1, 1
        ).constant_time_aggregates

        gorilla_multi = MultiModel(Gorilla())
        fitter = gorilla_multi.fitter(1, 0.0, 50)
        fitter.append((1.0,))
        assert not gorilla_multi.decode(
            fitter.parameters(), 1, 1
        ).constant_time_aggregates

    def test_name_and_always_fits(self):
        assert MultiModel(Swing()).name == "Multi(Swing)"
        assert MultiModel(Gorilla()).always_fits
        assert not MultiModel(Swing()).always_fits
