"""Ingestion statistics and the Time Series table construction."""

import pytest

from repro.core import Dimension, DimensionSet, TimeSeriesGroup
from repro.ingest.stats import IngestStats, ModelUsage
from repro.storage import records_for_groups

from .conftest import make_series


class TestIngestStats:
    def test_record_segment_accumulates(self):
        stats = IngestStats()
        stats.record_segment("PMC", data_points=100, storage_bytes=28)
        stats.record_segment("PMC", data_points=50, storage_bytes=28)
        stats.record_segment("Gorilla", data_points=50, storage_bytes=200)
        assert stats.segments == 3
        assert stats.storage_bytes == 256
        assert stats.usage["PMC"] == ModelUsage(2, 150, 56)

    def test_model_mix_percentages(self):
        stats = IngestStats()
        stats.record_segment("PMC", 75, 28)
        stats.record_segment("Swing", 25, 32)
        mix = stats.model_mix()
        assert mix == {"PMC": 75.0, "Swing": 25.0}

    def test_model_mix_empty(self):
        assert IngestStats().model_mix() == {}

    def test_merge(self):
        a = IngestStats(data_points=10, splits=1)
        a.record_segment("PMC", 10, 28)
        b = IngestStats(data_points=20, joins=2)
        b.record_segment("PMC", 20, 28)
        b.record_segment("Swing", 5, 32)
        a.merge(b)
        assert a.data_points == 30
        assert a.splits == 1
        assert a.joins == 2
        assert a.segments == 3
        assert a.usage["PMC"].data_points == 30
        assert a.usage["Swing"].segments == 1


class TestRecordsForGroups:
    def test_records_carry_group_and_scaling(self):
        groups = [
            TimeSeriesGroup(1, [make_series(2, [1.0], scaling=4.75)]),
            TimeSeriesGroup(2, [make_series(1, [1.0])]),
        ]
        records = records_for_groups(groups)
        # Sorted by Tid regardless of group order.
        assert [record.tid for record in records] == [1, 2]
        assert records[1].gid == 1
        assert records[1].scaling == 4.75
        assert records[0].gid == 2

    def test_records_denormalise_dimensions(self):
        dimension = Dimension("Location", ["Entity", "Park"])
        dimension.assign(1, ("e1", "p0"))
        dimensions = DimensionSet([dimension])
        groups = [TimeSeriesGroup(1, [make_series(1, [1.0])])]
        (record,) = records_for_groups(groups, dimensions)
        assert record.dimensions == {"Park": "p0", "Entity": "e1"}

    def test_records_without_dimensions(self):
        groups = [TimeSeriesGroup(1, [make_series(1, [1.0])])]
        (record,) = records_for_groups(groups, None)
        assert record.dimensions == {}
        assert record.sampling_interval == 100
