"""Scalar-vs-batch equivalence: the columnar path must be bit-identical.

The vectorized ``ModelFitter.extend`` kernels (PMC-Mean, Swing, Gorilla)
and the chunked columnar ingestion buffers promise the *same bytes* as
the scalar ``append`` loop — same accepted prefix lengths, byte-identical
parameters, identical stored segments. These tests check that promise at
the fitter level (randomized value streams, every model type, the
evaluation's error bounds, arbitrary chunkings) and end to end (EP/EH
synthetics ingested with chunked vs per-tick buffers must land the same
Segment table).

Uses hypothesis when installed; otherwise the same properties run over
seeded pseudo-random streams so the suite stays meaningful without the
dependency.
"""

import random

import numpy as np
import pytest

from repro import Configuration, MemoryStorage, ModelarDB, TimeSeries
from repro.core.group import TimeSeriesGroup
from repro.datasets import generate_ep
from repro.datasets.eh import generate_eh
from repro.datasets.ep import EP_CORRELATION
from repro.models.gorilla import GorillaFitter
from repro.models.pmc_mean import PMCMeanFitter
from repro.models.swing import SwingFitter
from repro.storage import SegmentScan

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

FITTERS = {
    "pmc": PMCMeanFitter,
    "swing": SwingFitter,
    "gorilla": GorillaFitter,
}
ERROR_BOUNDS = (0.0, 1.0, 5.0, 10.0)


def make_values(rng: random.Random, n_ticks: int, n_columns: int):
    """A value stream mixing the regimes the cascade discriminates on:
    constant holds, linear ramps and rough noise, with occasional
    near-duplicate columns (the correlated-group case)."""
    base = rng.uniform(-50, 50)
    matrix = np.empty((n_ticks, n_columns))
    i = 0
    while i < n_ticks:
        run = min(n_ticks - i, rng.randint(1, 12))
        kind = rng.random()
        if kind < 0.4:  # hold
            matrix[i:i + run] = base
        elif kind < 0.8:  # ramp
            slope = rng.uniform(-1, 1)
            matrix[i:i + run] = (
                base + slope * np.arange(run)
            )[:, np.newaxis]
            base = matrix[i + run - 1, 0]
        else:  # noise
            matrix[i:i + run] = base + np.array(
                [
                    [rng.uniform(-5, 5) for _ in range(n_columns)]
                    for _ in range(run)
                ]
            )
        i += run
    jitter = np.array(
        [
            [rng.uniform(-0.01, 0.01) for _ in range(n_columns)]
            for _ in range(n_ticks)
        ]
    )
    return np.float64(np.float32(matrix + jitter))


def random_chunks(rng: random.Random, total: int) -> list[int]:
    sizes = []
    left = total
    while left > 0:
        size = min(left, rng.randint(1, max(1, total // 2)))
        sizes.append(size)
        left -= size
    return sizes


def check_fitter_equivalence(model_key, bound, length_limit, seed):
    """Same stream via scalar appends and via random extend blocks must
    accept identical prefixes and encode identical parameter bytes."""
    rng = random.Random(seed)
    n_columns = rng.choice((1, 2, 8))
    n_ticks = rng.randint(1, 120)
    matrix = make_values(rng, n_ticks, n_columns)
    fitter_cls = FITTERS[model_key]

    scalar = fitter_cls(n_columns, bound, length_limit)
    accepted_scalar = 0
    for row in matrix.tolist():
        if not scalar.append(row):
            break
        accepted_scalar += 1

    batch = fitter_cls(n_columns, bound, length_limit)
    accepted_batch = 0
    offset = 0
    for size in random_chunks(rng, n_ticks):
        taken = batch.extend(None, matrix[offset:offset + size])
        accepted_batch += taken
        offset += size
        if taken < size:
            break

    assert accepted_batch == accepted_scalar
    assert batch.length == scalar.length
    if accepted_scalar:
        assert batch.parameters() == scalar.parameters()


@pytest.mark.parametrize("model_key", sorted(FITTERS))
@pytest.mark.parametrize("bound", ERROR_BOUNDS)
def test_fitter_equivalence_seeded(model_key, bound):
    for seed in range(25):
        for length_limit in (1, 3, 50):
            check_fitter_equivalence(model_key, bound, length_limit, seed)


if HAVE_HYPOTHESIS:

    @settings(max_examples=150, deadline=None)
    @given(
        model_key=st.sampled_from(sorted(FITTERS)),
        bound=st.sampled_from(ERROR_BOUNDS),
        length_limit=st.sampled_from((1, 3, 50)),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_fitter_equivalence_hypothesis(
        model_key, bound, length_limit, seed
    ):
        check_fitter_equivalence(model_key, bound, length_limit, seed)


# ----------------------------------------------------------------------
# End to end: chunked columnar ingestion lands the same Segment table
# ----------------------------------------------------------------------
def store_signature(db: ModelarDB):
    """Every stored segment as comparable bytes-level tuples."""
    return sorted(
        (
            s.gid,
            s.start_time,
            s.end_time,
            s.sampling_interval,
            s.mid,
            bytes(s.parameters),
            tuple(sorted(s.gaps)),
        )
        for s in db.storage.scan(SegmentScan())
    )


def ingest_dataset(dataset, correlation, bound, chunk_size):
    config = Configuration(
        error_bound=bound,
        correlation=correlation,
        ingest_chunk_size=chunk_size,
    )
    db = ModelarDB(
        config, storage=MemoryStorage(), dimensions=dataset.dimensions
    )
    db.ingest(dataset.series)
    return db


@pytest.mark.parametrize("bound", (0.0, 5.0))
@pytest.mark.parametrize("chunk_size", (7, 1024))
def test_ep_batch_ingest_is_bit_identical(bound, chunk_size):
    dataset = generate_ep(
        n_entities=3,
        measures_per_entity=2,
        n_points=600,
        seed=11,
        gap_probability=0.01,
    )
    scalar = ingest_dataset(dataset, EP_CORRELATION, bound, chunk_size=1)
    batch = ingest_dataset(dataset, EP_CORRELATION, bound, chunk_size)
    assert store_signature(batch) == store_signature(scalar)
    assert batch.stats.data_points == scalar.stats.data_points


@pytest.mark.parametrize("bound", (0.0, 5.0))
def test_eh_batch_ingest_is_bit_identical(bound):
    dataset = generate_eh(
        n_parks=2,
        entities_per_park=2,
        n_points=500,
        seed=13,
        gap_probability=0.01,
    )
    correlation = dataset.correlation()
    scalar = ingest_dataset(dataset, correlation, bound, chunk_size=1)
    batch = ingest_dataset(dataset, correlation, bound, chunk_size=1024)
    assert store_signature(batch) == store_signature(scalar)


# ----------------------------------------------------------------------
# Facade: open/context-manager, unified ingest, deprecation shim
# ----------------------------------------------------------------------
def simple_series(tid=1, n=200):
    values = np.float32(np.sin(np.arange(n) / 25.0) + tid)
    return TimeSeries(tid, 100, np.arange(n, dtype=np.int64) * 100, values)


class TestFacade:
    def test_open_defaults_to_memory(self):
        with ModelarDB.open(config=Configuration(error_bound=1.0)) as db:
            db.ingest([simple_series()])
            assert db.segment_count() > 0
            assert isinstance(db.storage, MemoryStorage)
        assert db.storage.closed

    def test_open_path_persists_and_reopens(self, tmp_path):
        with ModelarDB.open(
            tmp_path / "db", config=Configuration(error_bound=1.0)
        ) as db:
            db.ingest([simple_series()])
            expected = db.segment_count()
        with ModelarDB.open(tmp_path / "db") as reopened:
            assert reopened.segment_count() == expected

    def test_ingest_accepts_prebuilt_groups(self):
        db = ModelarDB.open(config=Configuration(error_bound=1.0))
        group = TimeSeriesGroup(1, [simple_series(1), simple_series(2)])
        stats = db.ingest([group])
        assert stats.data_points > 0
        assert db.groups == [group]

    def test_ingest_rejects_mixed_input(self):
        db = ModelarDB.open()
        with pytest.raises(TypeError, match="not a mix"):
            db.ingest(
                [simple_series(1), TimeSeriesGroup(2, [simple_series(2)])]
            )

    def test_ingest_groups_shim_warns_and_works(self):
        db = ModelarDB.open(config=Configuration(error_bound=1.0))
        with pytest.warns(DeprecationWarning, match="ingest_groups"):
            stats = db.ingest_groups(
                [TimeSeriesGroup(1, [simple_series()])]
            )
        assert stats.data_points > 0
        assert db.segment_count() > 0
