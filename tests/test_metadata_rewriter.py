"""Metadata cache and Tid/member -> Gid rewriting (Section 6.2)."""

import pytest

from repro.core.errors import QueryError
from repro.query.metadata import MetadataCache
from repro.query.rewriter import Predicates, rewrite
from repro.storage import MemoryStorage, TimeSeriesRecord


@pytest.fixture
def storage():
    store = MemoryStorage()
    store.insert_time_series(
        [
            TimeSeriesRecord(1, 100, gid=1, scaling=1.0,
                             dimensions={"Park": "north", "Category": "P"}),
            TimeSeriesRecord(2, 100, gid=1, scaling=4.75,
                             dimensions={"Park": "north", "Category": "T"}),
            TimeSeriesRecord(3, 100, gid=2, scaling=1.0,
                             dimensions={"Park": "south", "Category": "P"}),
        ]
    )
    return store


@pytest.fixture
def cache(storage):
    return MetadataCache(storage)


class TestMetadataCache:
    def test_tid_gid_mappings(self, cache):
        assert cache.gid_of(1) == 1
        assert cache.gid_of(3) == 2
        assert cache.gids_of({1, 2}) == {1}
        assert cache.tids_of_gid(1) == (1, 2)
        assert cache.all_tids() == {1, 2, 3}
        assert cache.all_gids() == {1, 2}

    def test_unknown_tid_rejected(self, cache):
        with pytest.raises(QueryError):
            cache.gid_of(9)

    def test_unknown_gid_rejected(self, cache):
        with pytest.raises(QueryError):
            cache.tids_of_gid(9)

    def test_scalings(self, cache):
        assert cache.scaling(2) == 4.75
        assert cache.scalings() == {1: 1.0, 2: 4.75, 3: 1.0}

    def test_dimension_rows(self, cache):
        assert cache.dimension_row(3) == {"Park": "south", "Category": "P"}
        assert cache.dimension_columns() == ["Park", "Category"]

    def test_member_index(self, cache):
        assert cache.tids_with_member("Park", "north") == {1, 2}
        assert cache.tids_with_member("Category", "P") == {1, 3}
        assert cache.tids_with_member("Park", "unknown") == set()

    def test_unknown_column_rejected(self, cache):
        with pytest.raises(QueryError):
            cache.tids_with_member("Nope", "x")

    def test_sampling_interval(self, cache):
        assert cache.sampling_interval(1) == 100

    def test_empty_table_rejected(self):
        with pytest.raises(QueryError):
            MetadataCache(MemoryStorage())


class TestRewrite:
    def test_tids_map_to_gids(self, cache):
        plan = rewrite(Predicates(tids=frozenset({1})), cache)
        assert plan.gids == {1}
        assert plan.tids == {1}

    def test_no_predicates_scan_everything(self, cache):
        plan = rewrite(Predicates(), cache)
        assert plan.gids == {1, 2}
        assert plan.tids == {1, 2, 3}

    def test_member_predicate(self, cache):
        plan = rewrite(
            Predicates(members=(("Category", "P"),)), cache
        )
        assert plan.gids == {1, 2}
        assert plan.tids == {1, 3}

    def test_member_and_tid_intersection(self, cache):
        plan = rewrite(
            Predicates(tids=frozenset({1, 2}), members=(("Category", "P"),)),
            cache,
        )
        assert plan.tids == {1}
        assert plan.gids == {1}

    def test_contradictory_predicates_yield_empty_plan(self, cache):
        plan = rewrite(
            Predicates(tids=frozenset({3}), members=(("Park", "north"),)),
            cache,
        )
        assert plan.tids == set()
        assert plan.gids == set()

    def test_time_interval_passes_through(self, cache):
        plan = rewrite(
            Predicates(start_time=100, end_time=500), cache
        )
        assert plan.start_time == 100
        assert plan.end_time == 500

    def test_multiple_members_conjoin(self, cache):
        plan = rewrite(
            Predicates(members=(("Park", "north"), ("Category", "P"))),
            cache,
        )
        assert plan.tids == {1}
