"""Streaming (micro-batch) ingestion with online query access."""

import numpy as np
import pytest

from repro.core import Configuration, TimeSeriesGroup
from repro.core.errors import IngestionError
from repro.ingest import StreamingIngestor
from repro.models import ModelRegistry
from repro.query.engine import QueryEngine
from repro.storage import MemoryStorage, SegmentScan, records_for_groups

from .conftest import make_series


def build_stream(n_series=2, error_bound=1.0, length_limit=10):
    series = [make_series(tid, [0.0]) for tid in range(1, n_series + 1)]
    group = TimeSeriesGroup(1, series)
    config = Configuration(
        error_bound=error_bound,
        model_length_limit=length_limit,
        bulk_write_size=1,  # make segments visible immediately
    )
    storage = MemoryStorage()
    storage.insert_time_series(records_for_groups([group]))
    registry = ModelRegistry()
    storage.insert_model_table(registry.model_table())
    stream = StreamingIngestor([group], config, registry, storage)
    return stream, storage


class TestAppend:
    def test_stream_matches_batch_semantics(self):
        stream, storage = build_stream()
        for i in range(40):
            stream.append(1, i * 100, 5.0)
            stream.append(2, i * 100, 5.0)
        stream.flush()
        covered = sorted(
            ts for segment in storage.scan(SegmentScan()) for ts in segment.timestamps()
        )
        assert covered == [i * 100 for i in range(40)]
        assert stream.stats.data_points == 80

    def test_missing_series_becomes_gap(self):
        stream, storage = build_stream()
        for i in range(10):
            stream.append(1, i * 100, 1.0)
            if i < 5:
                stream.append(2, i * 100, 1.0)
        stream.flush()
        gaps = [segment.gaps for segment in storage.scan(SegmentScan())]
        assert frozenset({2}) in gaps

    def test_out_of_order_rejected(self):
        stream, _ = build_stream()
        stream.append(1, 1_000, 1.0)
        stream.append(1, 1_100, 1.0)  # opens tick 1100
        with pytest.raises(IngestionError):
            stream.append(2, 1_000, 1.0)

    def test_unknown_tid_rejected(self):
        stream, _ = build_stream()
        with pytest.raises(IngestionError):
            stream.append(99, 0, 1.0)

    def test_duplicate_tid_across_groups_rejected(self):
        series = make_series(1, [0.0])
        groups = [
            TimeSeriesGroup(1, [series]),
            TimeSeriesGroup(2, [make_series(1, [0.0])]),
        ]
        storage = MemoryStorage()
        with pytest.raises(IngestionError):
            StreamingIngestor(
                groups, Configuration(), ModelRegistry(), storage
            )

    def test_pending_points(self):
        stream, _ = build_stream()
        assert stream.pending_points == 0
        stream.append(1, 0, 1.0)
        assert stream.pending_points == 1
        stream.append(2, 0, 1.0)
        assert stream.pending_points == 2
        stream.append(1, 100, 1.0)  # closes the tick at 0
        assert stream.pending_points == 1


class TestOnlineAnalytics:
    def test_queries_during_ingestion(self):
        """Segments become queryable while the stream is still open —
        the O-6 property of Fig. 13."""
        stream, storage = build_stream(length_limit=5)
        engine = QueryEngine(storage, ModelRegistry())
        for i in range(23):
            stream.append(1, i * 100, 7.0)
            stream.append(2, i * 100, 7.0)
        # 23 ticks with a length limit of 5: at least 4 full segments
        # are already flushed and visible mid-stream.
        rows = engine.sql("SELECT COUNT_S(*) FROM Segment")
        assert rows[0]["COUNT_S(*)"] >= 2 * 20
        stream.flush()
        engine.refresh_metadata()
        rows = engine.sql("SELECT COUNT_S(*) FROM Segment")
        assert rows[0]["COUNT_S(*)"] == 2 * 23

    def test_flush_is_resumable(self):
        stream, storage = build_stream()
        stream.append(1, 0, 1.0)
        stream.append(2, 0, 1.0)
        stream.flush()
        # The stream continues after a checkpoint flush.
        stream.append(1, 100, 1.0)
        stream.append(2, 100, 1.0)
        stream.flush()
        covered = sorted(
            ts for segment in storage.scan(SegmentScan()) for ts in segment.timestamps()
        )
        assert covered == [0, 100]

    def test_micro_batch_interface(self):
        stream, storage = build_stream()
        batch = [
            (tid, i * 100, float(i))
            for i in range(10)
            for tid in (1, 2)
        ]
        stream.append_batch(batch)
        stats = stream.flush()
        assert stats.data_points == 20
