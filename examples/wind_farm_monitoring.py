"""Wind farm monitoring: the paper's EP scenario end to end.

Run with::

    python examples/wind_farm_monitoring.py

Generates an EP-like data set (energy production measures per plant with
two dimensions), partitions it with the paper's EP correlation hint
``Production 0, Measure 1 ProductionMWh``, ingests at several error
bounds, and answers the multi-dimensional reporting queries of the
M-AGG workload — monthly production per category, drilled down to the
concrete measures — directly on models.
"""

from repro import Configuration, ModelarDB
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.workloads import actual_average_error


def main():
    dataset = generate_ep(
        n_entities=4, measures_per_entity=3, n_points=3_000, seed=1
    )
    raw_bytes = dataset.data_points() * 12
    print(
        f"EP-like data set: {len(dataset.series)} series, "
        f"{dataset.data_points()} data points, {raw_bytes} raw bytes\n"
    )

    print("error bound -> storage and actual error:")
    dbs = {}
    for bound in (0.0, 1.0, 5.0, 10.0):
        config = Configuration(
            error_bound=bound, correlation=EP_CORRELATION
        )
        db = ModelarDB(config, dimensions=dataset.dimensions)
        db.ingest(dataset.series)
        dbs[bound] = db
        error = actual_average_error(db, dataset.series)
        print(
            f"  {bound:>4.0f}%: {db.size_bytes():>8} bytes "
            f"({raw_bytes / db.size_bytes():5.1f}x), "
            f"actual average error {error:.4f}%"
        )

    db = dbs[5.0]
    print("\ngroups created by the correlation hint (production measures")
    print("of one plant share a group; temperature stays alone):")
    for group in db.groups[:6]:
        print(f"  gid {group.gid}: tids {list(group.tids)}")

    print("\nmonthly production by category (M-AGG-One, on models):")
    for row in db.query(
        "SELECT Category, CUBE_SUM_MONTH(*) FROM Segment "
        "WHERE Category = 'ProductionMWh' GROUP BY Category"
    ):
        print(
            f"  {row['MONTH']}  {row['Category']}: "
            f"{row['CUBE_SUM_MONTH(*)']:.0f} MWh"
        )

    print("\ndrill-down to concrete measures (M-AGG-Two), first plant:")
    rows = db.query(
        "SELECT Concrete, Tid, CUBE_SUM_MONTH(*) FROM Segment "
        "WHERE Category = 'ProductionMWh' GROUP BY Concrete, Tid"
    )
    for row in rows[:6]:
        print(
            f"  {row['MONTH']}  {row['Concrete']} (tid {row['Tid']}): "
            f"{row['CUBE_SUM_MONTH(*)']:.0f} MWh"
        )
    print(f"  ... ({len(rows)} rows)")


if __name__ == "__main__":
    main()
