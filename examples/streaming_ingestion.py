"""Online analytics: query while the stream is still being ingested.

Run with::

    python examples/streaming_ingestion.py

Feeds data points through the streaming (micro-batch) ingestor and runs
aggregate queries *between batches* — the property that distinguishes
ModelarDB from write-then-read file formats in the paper's evaluation
(Parquet/ORC cannot be queried before a file is fully written).
"""

import numpy as np

from repro import Configuration, TimeSeries, TimeSeriesGroup
from repro.ingest import StreamingIngestor
from repro.models import ModelRegistry
from repro.query.engine import QueryEngine
from repro.storage import MemoryStorage, records_for_groups

SI_MS = 100
N_BATCHES = 6
BATCH_TICKS = 500


def main():
    # Two correlated sensors, partitioned into one group up front.
    placeholders = [
        TimeSeries(tid, SI_MS, [0], [0.0]) for tid in (1, 2)
    ]
    group = TimeSeriesGroup(1, placeholders)
    config = Configuration(error_bound=2.0, bulk_write_size=10)
    registry = ModelRegistry()
    storage = MemoryStorage()
    storage.insert_time_series(records_for_groups([group]))
    storage.insert_model_table(registry.model_table())

    stream = StreamingIngestor([group], config, registry, storage)
    engine = QueryEngine(storage, registry)

    rng = np.random.default_rng(2)
    level = 100.0
    tick = 0
    for batch in range(N_BATCHES):
        for _ in range(BATCH_TICKS):
            level += rng.normal(0, 0.05)
            timestamp = tick * SI_MS
            stream.append(1, timestamp, level + rng.normal(0, 0.02))
            stream.append(2, timestamp, level + rng.normal(0, 0.02))
            tick += 1
        # The stream stays open — but flushed segments are already live.
        rows = engine.sql("SELECT COUNT_S(*), AVG_S(*) FROM Segment")
        count = rows[0]["COUNT_S(*)"]
        average = rows[0]["AVG_S(*)"]
        print(
            f"after batch {batch + 1}: {count:>5} points queryable "
            f"(avg {average:.2f}), " if count else
            f"after batch {batch + 1}: nothing flushed yet, ",
            end="",
        )
        print(f"{stream.pending_points} points still buffered")

    stats = stream.flush()
    rows = engine.sql("SELECT COUNT_S(*) FROM Segment")
    print(
        f"\nstream closed: {rows[0]['COUNT_S(*)']} points in "
        f"{stats.segments} segments ({stats.storage_bytes} bytes, "
        f"mix {dict((k, round(v, 1)) for k, v in stats.model_mix().items())})"
    )


if __name__ == "__main__":
    main()
