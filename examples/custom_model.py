"""User-defined models: the extension API of Section 3.1.

Run with::

    python examples/custom_model.py

ModelarDB treats models as black boxes behind a common interface, so a
new compression model is just a :class:`ModelType` with an online fitter
and a decoder — registered by classpath name, no engine changes. This
example adds a *step* model that stores two constant levels and the
index where the series switches between them (useful for on/off
machinery), and puts it into the cascade between Swing and Gorilla.
"""

import struct

import numpy as np

from repro import Configuration, ModelarDB, TimeSeries
from repro.models import FittedModel, ModelFitter, ModelType
from repro.models.base import float32_within, value_interval

_FORMAT = "<ffH"  # level A, level B, switch index


class StepFitter(ModelFitter):
    """Fits two consecutive constant levels within the error bound."""

    def __init__(self, n_columns, error_bound, length_limit):
        super().__init__(n_columns, error_bound, length_limit)
        self._bounds = [(-np.inf, np.inf), (-np.inf, np.inf)]
        self._phase = 0
        self._switch = 0

    def _try_append(self, values):
        lower, upper = value_interval(values, self.error_bound)
        for phase in (self._phase, self._phase + 1):
            if phase > 1:
                return False
            current = self._bounds[phase]
            merged = (max(current[0], lower), min(current[1], upper))
            if float32_within(*merged) is not None:
                if phase != self._phase:
                    self._phase = phase
                    self._switch = self.length
                self._bounds[phase] = merged
                return True
        return False

    def parameters(self):
        level_a = float32_within(*self._bounds[0])
        level_b = float32_within(*self._bounds[1])
        if level_b is None:  # never switched: one flat level
            level_b = level_a
            switch = self.length
        else:
            switch = self._switch
        return struct.pack(_FORMAT, level_a, level_b, switch)

    def size_bytes(self):
        return struct.calcsize(_FORMAT)


class FittedStep(FittedModel):
    def __init__(self, level_a, level_b, switch, n_columns, length):
        super().__init__(n_columns, length)
        self._levels = (level_a, level_b)
        self._switch = switch

    def values(self):
        column = np.where(
            np.arange(self.length) < self._switch,
            self._levels[0],
            self._levels[1],
        )
        return np.repeat(column[:, np.newaxis], self.n_columns, axis=1)


class StepModel(ModelType):
    """Two-level step function; registered as ``example.Step``."""

    name = "example.Step"

    def fitter(self, n_columns, error_bound, length_limit):
        return StepFitter(n_columns, error_bound, length_limit)

    def decode(self, parameters, n_columns, length):
        level_a, level_b, switch = struct.unpack(_FORMAT, parameters)
        return FittedStep(level_a, level_b, switch, n_columns, length)


def main():
    # On/off machinery: long runs at two alternating levels.
    rng = np.random.default_rng(5)
    values = []
    level = 0.0
    while len(values) < 3_000:
        run = int(rng.integers(60, 90))
        values.extend([level] * run)
        level = 840.0 if level == 0.0 else 0.0
    values = values[:3_000]
    series = TimeSeries(
        1, 1_000, np.arange(len(values)) * 1_000, np.float32(values)
    )

    for models in (("PMC", "Swing", "Gorilla"),
                   ("PMC", "Swing", "example.Step", "Gorilla")):
        config = Configuration(error_bound=1.0, models=models)
        db = ModelarDB(config, extra_models=[StepModel()])
        stats = db.ingest([series])
        mix = {k: round(v, 1) for k, v in stats.model_mix().items()}
        print(f"cascade {models}:")
        print(f"  storage {db.size_bytes()} bytes, mix {mix}")
        total = db.query("SELECT SUM_S(*) FROM Segment")[0]["SUM_S(*)"]
        print(f"  SUM over all points: {total:.0f}\n")


if __name__ == "__main__":
    main()
