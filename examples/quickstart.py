"""Quickstart: ingest correlated sensor data and query it with SQL.

Run with::

    python examples/quickstart.py

Builds a tiny wind-park data set, lets ModelarDB partition it with a
correlation hint, ingests it within a 5 % error bound and runs the kinds
of queries the paper's evaluation uses — all in a few hundred
milliseconds on a laptop.
"""

import numpy as np

from repro import Configuration, Dimension, DimensionSet, ModelarDB, TimeSeries

SI_MS = 60_000  # one reading per minute
N_POINTS = 1_440  # one day


def build_dataset():
    """Six temperature sensors across two wind parks."""
    rng = np.random.default_rng(7)
    location = Dimension("Location", ["Sensor", "Park", "Country"])
    dimensions = DimensionSet([location])

    series = []
    for park_index, park in enumerate(("Aalborg", "Farsø")):
        # Sensors in one park measure the same ambient temperature.
        daily = 8 + 6 * np.sin(2 * np.pi * np.arange(N_POINTS) / N_POINTS)
        ambient = daily + np.cumsum(rng.normal(0, 0.05, N_POINTS))
        for sensor_index in range(3):
            tid = park_index * 3 + sensor_index + 1
            values = np.float32(ambient + rng.normal(0, 0.05, N_POINTS))
            series.append(
                TimeSeries(tid, SI_MS, np.arange(N_POINTS) * SI_MS, values)
            )
            location.assign(tid, (f"sensor{tid}", park, "Denmark"))
    return series, dimensions


def main():
    series, dimensions = build_dataset()

    # "Location 2": series whose lowest common ancestor in the Location
    # dimension is at least the Park level are correlated (Section 4.1).
    config = Configuration(error_bound=5.0, correlation=["Location 2"])
    db = ModelarDB(config, dimensions=dimensions)

    stats = db.ingest(series)
    raw_bytes = stats.data_points * 12
    print(f"ingested  {stats.data_points} data points")
    print(f"groups    {[group.tids for group in db.groups]}")
    print(
        f"storage   {db.size_bytes()} bytes "
        f"({raw_bytes / db.size_bytes():.0f}x compression)"
    )
    print(f"model mix {dict((k, round(v, 1)) for k, v in stats.model_mix().items())}")

    print("\naverage temperature per sensor (Segment View, on models):")
    for row in db.query(
        "SELECT Tid, AVG_S(*) FROM Segment WHERE Tid IN (1, 2, 3, 4, 5, 6) "
        "GROUP BY Tid"
    ):
        print(f"  sensor {row['Tid']}: {row['AVG_S(*)']:.2f} °C")

    print("\nhourly maxima for the Aalborg park (time rollup on models):")
    rows = db.query(
        "SELECT Park, CUBE_MAX_HOUR(*) FROM Segment "
        "WHERE Park = 'Aalborg' GROUP BY Park"
    )
    for row in rows[:5]:
        print(f"  {row['HOUR']}: {row['CUBE_MAX_HOUR(*)']:.2f} °C")
    print(f"  ... ({len(rows)} buckets)")

    print("\nraw readings around noon (Data Point View, reconstructed):")
    noon = 720 * SI_MS
    for row in db.query(
        f"SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS >= {noon} "
        f"AND TS <= {noon + 3 * SI_MS}"
    ):
        print(f"  t={row['TS']}: {row['Value']:.3f} °C")

    print("\ncorrect a miscalibrated reading, then query both worlds:")
    before = db.knowledge_time()
    db.correct([(1, noon, 42.0)])  # sensor 1 really read 42.0 at noon
    latest = db.query(
        f"SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS = {noon}"
    )
    original = db.query(
        f"SELECT TS, Value FROM DataPoint WHERE Tid = 1 AND TS = {noon}",
        as_of=before,  # same as "... FROM DataPoint AS OF {before} ..."
    )
    print(f"  latest known : {latest[0]['Value']:.3f} °C")
    print(f"  as of t={before}    : {original[0]['Value']:.3f} °C")


if __name__ == "__main__":
    main()
