"""Durable storage: the file-backed segment store.

Run with::

    python examples/persistent_storage.py

Ingests into a :class:`FileStorage` (the Cassandra substitute: one
append-only partition per group, the paper's 24-byte segment rows with
StartTime stored as the segment size), closes the database, reopens the
directory and queries the persisted segments.
"""

import tempfile
from pathlib import Path

from repro import Configuration, ModelarDB
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION


def main():
    dataset = generate_ep(
        n_entities=3, measures_per_entity=3, n_points=1_000, seed=4
    )
    config = Configuration(error_bound=1.0, correlation=EP_CORRELATION)

    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "modelardb"

        with ModelarDB.open(
            path, config=config, dimensions=dataset.dimensions
        ) as db:
            db.ingest(dataset.series)
            before = db.query("SELECT COUNT_S(*), SUM_S(*) FROM Segment")[0]
            segments = db.segment_count()
        print(f"wrote {segments} segments to {path}")
        for file in sorted(path.iterdir()):
            print(f"  {file.name}: {file.stat().st_size} bytes")

        # A fresh process would do exactly this: open the directory.
        with ModelarDB.open(path, config=config) as reopened:
            after = reopened.query("SELECT COUNT_S(*), SUM_S(*) FROM Segment")[0]
        print(f"\nbefore close: {before}")
        print(f"after reopen: {after}")
        assert before == after
        print("persisted results match.")


if __name__ == "__main__":
    main()
