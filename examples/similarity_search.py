"""Similarity search on models (the paper's future-work item ii).

Run with::

    python examples/similarity_search.py

Plants a characteristic production dip into one series of an EP-like
data set and finds it again with model-level sub-sequence search: the
segments' O(1) min/max envelopes prune almost every candidate window
before any data point is reconstructed.
"""

import numpy as np

from repro import Configuration, ModelarDB
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION
from repro.query.similarity import SearchStats, similarity_search


def main():
    dataset = generate_ep(
        n_entities=4, measures_per_entity=3, n_points=3_000, seed=21,
        gap_probability=0.0,
    )

    # Plant a sudden dip-and-recovery into one production series.
    pattern = np.float32([400, 250, 120, 60, 120, 250, 400])
    target = dataset.series[4]
    values = target.values.copy()
    values[1_500:1_507] = pattern
    planted = type(target)(
        target.tid, target.sampling_interval, list(target.timestamps),
        values, name=target.name,
    )
    dataset.series[4] = planted

    db = ModelarDB(
        Configuration(error_bound=1.0, correlation=EP_CORRELATION),
        dimensions=dataset.dimensions,
    )
    db.ingest(dataset.series)
    print(
        f"ingested {db.stats.data_points} points into "
        f"{db.segment_count()} segments"
    )

    stats = SearchStats()
    matches = similarity_search(
        db.engine, pattern.astype(np.float64), k=3, stats=stats
    )
    print(
        f"\nsearched {stats.windows} windows, reconstructed only "
        f"{stats.verified} ({100 * stats.pruned_fraction:.1f}% pruned "
        "at the model level)"
    )
    print("\ntop matches:")
    for match in matches:
        print(
            f"  tid {match.tid} at t={match.start_time}: "
            f"distance {match.distance:.2f}"
        )
    best = matches[0]
    print(
        f"\nplanted dip was in tid {planted.tid} at t="
        f"{planted.timestamps[1500]} -> "
        f"{'found' if best.tid == planted.tid else 'missed'}"
    )


if __name__ == "__main__":
    main()
