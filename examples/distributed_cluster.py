"""Distributed ModelarDB: master/worker ingestion and scatter/gather.

Run with::

    python examples/distributed_cluster.py

Partitions an EP-like data set, assigns whole groups to the least-loaded
of four workers (so correlated series are always co-located and queries
never shuffle), ingests in parallel (modelled), and runs distributed
aggregates whose partial results the master merges — including a query
routed to exactly one worker by its Tid predicate.
"""

from repro import Configuration
from repro.cluster import ModelarCluster
from repro.datasets import generate_ep
from repro.datasets.ep import EP_CORRELATION


def main():
    dataset = generate_ep(
        n_entities=8, measures_per_entity=3, n_points=1_500, seed=9
    )
    config = Configuration(error_bound=5.0, correlation=EP_CORRELATION)
    cluster = ModelarCluster(4, config, dataset.dimensions)

    report = cluster.ingest(dataset.series)
    print("cluster of 4 workers:")
    for worker in cluster.workers:
        print(
            f"  worker {worker.node_id}: {len(worker.groups)} groups, "
            f"{len(worker.tids)} series, "
            f"{worker.storage.size_bytes()} bytes"
        )
    print(
        f"\ningest: {report.data_points} points, modelled parallel time "
        f"{report.makespan * 1e3:.1f} ms "
        f"(total work {report.total_work * 1e3:.1f} ms, "
        f"{report.throughput / 1e6:.2f} Mpts/s)"
    )

    rows, query_report = cluster.sql(
        "SELECT Type, SUM_S(*) FROM Segment "
        "WHERE Category = 'ProductionMWh' GROUP BY Type"
    )
    print("\nproduction by plant type (merged from worker partials):")
    for row in rows:
        print(f"  {row['Type']}: {row['SUM_S(*)']:.0f} MWh")
    print(
        f"  ({len(query_report.worker_seconds)} workers, makespan "
        f"{query_report.makespan * 1e3:.2f} ms)"
    )

    rows, query_report = cluster.sql(
        "SELECT Tid, AVG_S(*) FROM Segment WHERE Tid = 5 GROUP BY Tid"
    )
    print(
        f"\nsingle-series query routed to "
        f"{len(query_report.worker_seconds)} worker(s): {rows}"
    )


if __name__ == "__main__":
    main()
