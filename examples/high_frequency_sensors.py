"""High-frequency sensors: the paper's EH scenario with distance-based
partitioning.

Run with::

    python examples/high_frequency_sensors.py

When a data set has many series *and* many dimensions, enumerating
correlated sets by hand does not scale. Section 4.1's answer is
distance-based correlation with a rule of thumb for the threshold:
``(1 / max(levels)) / |dimensions|``. This example shows the rule of
thumb in action on an EH-like data set, the resulting groups, and how
dynamic splitting reacts when series temporarily decorrelate.
"""

from repro import Configuration, ModelarDB
from repro.datasets import generate_eh
from repro.partitioner import lowest_distance


def main():
    dataset = generate_eh(
        n_parks=2, entities_per_park=3, measures=("ActivePower",),
        n_points=8_000, seed=3,
    )
    print(
        f"EH-like data set: {len(dataset.series)} series at SI = "
        f"{dataset.sampling_interval} ms, {dataset.data_points()} points"
    )

    threshold = lowest_distance(dataset.dimensions)
    print(
        f"\nrule-of-thumb distance: (1/3 levels) / 2 dimensions = "
        f"{threshold:.8f}"
    )

    config = Configuration(
        error_bound=10.0, correlation=dataset.correlation()
    )
    db = ModelarDB(config, dimensions=dataset.dimensions)
    stats = db.ingest(dataset.series)

    print("\ngroups (same park + same concrete measure):")
    for group in db.groups:
        members = [
            dataset.dimensions["Location"].member(tid, "Park")
            for tid in group.tids
        ]
        print(f"  gid {group.gid}: tids {list(group.tids)} in {members[0]}")

    raw = dataset.data_points() * 12
    print(
        f"\nstorage: {db.size_bytes()} bytes "
        f"({raw / db.size_bytes():.0f}x compression at a 10% bound)"
    )
    print(
        f"dynamic splits: {stats.splits}, joins: {stats.joins} "
        "(groups split while temporarily uncorrelated)"
    )
    print(f"model mix: {dict((k, round(v, 1)) for k, v in stats.model_mix().items())}")

    print("\nper-park five-minute averages (on models):")
    rows = db.query(
        "SELECT Park, CUBE_AVG_MINUTE(*) FROM Segment GROUP BY Park"
    )
    for row in rows[:6]:
        print(
            f"  {row['MINUTE']}  {row['Park']}: "
            f"{row['CUBE_AVG_MINUTE(*)']:.2f}"
        )
    print(f"  ... ({len(rows)} rows)")


if __name__ == "__main__":
    main()
