#!/usr/bin/env python3
"""Documentation consistency check, run by the CI lint job.

Three contracts, all cheap and all static:

1. ``docs/METRICS.md`` must list exactly the metrics declared in
   ``repro.obs.catalog.CATALOG`` — same names, same kinds, same label
   sets. The registry refuses undeclared names at runtime, so catalog ==
   code; this check closes the loop catalog == docs. Renaming a metric
   without updating the reference table fails CI.

2. Every ``python -m repro ...`` command line shown in a fenced code
   block of ``docs/OPERATIONS.md`` must parse against the real argparse
   parsers in ``repro.__main__`` — and every registered subcommand must
   be documented there. A flag renamed or removed without the operator
   guide following along fails CI.

3. The reprolint rule table in ``docs/DEVELOPMENT.md`` must list
   exactly the rules registered in ``repro.analysis.rules`` — same ids,
   same names — and every rule must have its own ``#### RPR0xx``
   section. Adding or renaming a rule without documenting it fails CI.

4. ``docs/QUERYING.md`` must quote the authoritative SQL grammar
   (``repro.query.sql.GRAMMAR``) verbatim in its ``ebnf`` block, every
   statement in its ``sql`` blocks must parse against the real parser,
   and the examples must collectively exercise every keyword and
   operator the grammar declares, every aggregate the registry knows,
   and every time-rollup level. A parser change without the SQL
   reference following along fails CI.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.__main__ import SUBCOMMAND_PARSERS, build_main_parser  # noqa: E402
from repro.analysis.rules import ALL_RULE_SPECS  # noqa: E402
from repro.core.errors import QueryError  # noqa: E402
from repro.obs.catalog import CATALOG  # noqa: E402
from repro.query.aggregates import aggregate_names  # noqa: E402
from repro.query.engine import EXPLAIN_ANALYZE_RE  # noqa: E402
from repro.query.rollup import DATEPART_LEVELS, TIME_LEVELS  # noqa: E402
from repro.query.sql import GRAMMAR  # noqa: E402
from repro.query.sql import parse as parse_sql  # noqa: E402

METRICS_DOC = REPO_ROOT / "docs" / "METRICS.md"
OPERATIONS_DOC = REPO_ROOT / "docs" / "OPERATIONS.md"
DEVELOPMENT_DOC = REPO_ROOT / "docs" / "DEVELOPMENT.md"
QUERYING_DOC = REPO_ROOT / "docs" / "QUERYING.md"

#: ``| `name` | kind | labels | description |`` rows of the catalog table.
_METRIC_ROW = re.compile(
    r"^\|\s*`(?P<name>[a-z_.]+)`\s*\|\s*(?P<kind>\w+)\s*\|"
    r"\s*(?P<labels>[^|]*)\|"
)


def documented_metrics(text: str) -> dict[str, tuple[str, tuple[str, ...]]]:
    """name -> (kind, labels) for every table row in METRICS.md."""
    rows: dict[str, tuple[str, tuple[str, ...]]] = {}
    for line in text.splitlines():
        match = _METRIC_ROW.match(line.strip())
        if match is None:
            continue
        raw_labels = match.group("labels").strip()
        labels = (
            ()
            if raw_labels in ("", "—", "-")
            else tuple(
                sorted(part.strip() for part in raw_labels.split(","))
            )
        )
        rows[match.group("name")] = (match.group("kind"), labels)
    return rows


def check_metrics() -> list[str]:
    problems: list[str] = []
    documented = documented_metrics(METRICS_DOC.read_text())
    declared = {
        name: (spec.kind, tuple(sorted(spec.labels)))
        for name, spec in CATALOG.items()
    }
    for name in sorted(set(declared) - set(documented)):
        problems.append(
            f"METRICS.md: metric {name!r} is declared in "
            "repro/obs/catalog.py but missing from the reference table"
        )
    for name in sorted(set(documented) - set(declared)):
        problems.append(
            f"METRICS.md: metric {name!r} is documented but not declared "
            "in repro/obs/catalog.py"
        )
    for name in sorted(set(documented) & set(declared)):
        if documented[name] != declared[name]:
            problems.append(
                f"METRICS.md: metric {name!r} documented as "
                f"{documented[name]} but declared as {declared[name]}"
            )
    if not documented:
        problems.append("METRICS.md: no catalog table rows found")
    return problems


def command_lines(text: str) -> list[str]:
    """``python -m repro ...`` lines inside fenced code blocks."""
    lines: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence and "python -m repro" in line:
            lines.append(line.strip())
    return lines


def check_operations() -> list[str]:
    problems: list[str] = []
    text = OPERATIONS_DOC.read_text()
    lines = command_lines(text)
    if not lines:
        problems.append(
            "OPERATIONS.md: no `python -m repro` command lines found"
        )
    documented_subcommands: set[str] = set()
    for line in lines:
        tokens = shlex.split(line)
        # Drop leading VAR=value assignments, `python`, `-m`, `repro`.
        while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
            tokens.pop(0)
        try:
            arguments = tokens[tokens.index("repro") + 1:]
        except ValueError:
            problems.append(f"OPERATIONS.md: cannot parse line: {line}")
            continue
        if arguments and arguments[0] in SUBCOMMAND_PARSERS:
            subcommand = arguments[0]
            documented_subcommands.add(subcommand)
            parser = SUBCOMMAND_PARSERS[subcommand]()
            arguments = arguments[1:]
        else:
            parser = build_main_parser()
        try:
            parser.parse_args(arguments)
        except SystemExit:
            problems.append(
                f"OPERATIONS.md: command does not parse against "
                f"{parser.prog}: {line}"
            )
    for subcommand in sorted(set(SUBCOMMAND_PARSERS) - documented_subcommands):
        problems.append(
            f"OPERATIONS.md: subcommand {subcommand!r} is registered in "
            "repro/__main__.py but never shown in the operator guide"
        )
    return problems


#: ``| RPR00x | `name` | guards |`` rows of the DEVELOPMENT.md rule table.
_RULE_ROW = re.compile(
    r"^\|\s*(?P<id>RPR\d{3})\s*\|\s*`(?P<name>[a-z0-9-]+)`\s*\|"
)
_RULE_SECTION = re.compile(r"^####\s+(?P<id>RPR\d{3})\b", re.MULTILINE)


def documented_rules(text: str) -> dict[str, str]:
    """rule id -> documented name for every rule-table row."""
    rows: dict[str, str] = {}
    for line in text.splitlines():
        match = _RULE_ROW.match(line.strip())
        if match is not None:
            rows[match.group("id")] = match.group("name")
    return rows


def check_development() -> list[str]:
    problems: list[str] = []
    text = DEVELOPMENT_DOC.read_text()
    documented = documented_rules(text)
    declared = {spec.id: spec.name for spec in ALL_RULE_SPECS}
    for rule_id in sorted(set(declared) - set(documented)):
        problems.append(
            f"DEVELOPMENT.md: rule {rule_id} is registered in "
            "repro/analysis/rules.py but missing from the rule table"
        )
    for rule_id in sorted(set(documented) - set(declared)):
        problems.append(
            f"DEVELOPMENT.md: rule {rule_id} is documented but not "
            "registered in repro/analysis/rules.py"
        )
    for rule_id in sorted(set(documented) & set(declared)):
        if documented[rule_id] != declared[rule_id]:
            problems.append(
                f"DEVELOPMENT.md: rule {rule_id} documented as "
                f"{documented[rule_id]!r} but registered as "
                f"{declared[rule_id]!r}"
            )
    sections = set(_RULE_SECTION.findall(text))
    for rule_id in sorted(set(declared) - sections):
        problems.append(
            f"DEVELOPMENT.md: rule {rule_id} has no '#### {rule_id} — ...' "
            "section"
        )
    if not documented:
        problems.append("DEVELOPMENT.md: no rule table rows found")
    return problems


def fenced_blocks(text: str, language: str) -> list[str]:
    """The contents of every ```<language> fenced block, in order."""
    blocks: list[str] = []
    current: list[str] | None = None
    fence_language: str | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("```"):
            if fence_language is None:
                fence_language = stripped[3:].strip()
                if fence_language == language:
                    current = []
            else:
                if current is not None:
                    blocks.append("\n".join(current))
                    current = None
                fence_language = None
            continue
        if current is not None:
            current.append(line)
    return blocks


def sql_statements(text: str) -> list[str]:
    """One statement per blank-line-separated paragraph of ```sql blocks.

    ``--`` comments are stripped; continuation lines are joined."""
    statements: list[str] = []
    for block in fenced_blocks(text, "sql"):
        paragraph: list[str] = []
        for line in block.splitlines() + [""]:
            line = line.split("--", 1)[0].rstrip()
            if line.strip():
                paragraph.append(line.strip())
            elif paragraph:
                statements.append(" ".join(paragraph))
                paragraph = []
    return statements


def check_querying() -> list[str]:
    problems: list[str] = []
    text = QUERYING_DOC.read_text()

    grammar_blocks = fenced_blocks(text, "ebnf")
    if len(grammar_blocks) != 1:
        problems.append(
            f"QUERYING.md: expected exactly one ```ebnf grammar block, "
            f"found {len(grammar_blocks)}"
        )
    elif grammar_blocks[0].strip() != "\n".join(GRAMMAR):
        problems.append(
            "QUERYING.md: the ```ebnf block differs from "
            "repro.query.sql.GRAMMAR — update the reference to match "
            "the parser"
        )

    statements = sql_statements(text)
    if not statements:
        problems.append("QUERYING.md: no ```sql example statements found")
    for statement in statements:
        body = statement
        explain = EXPLAIN_ANALYZE_RE.match(statement)
        if explain is not None:
            body = explain.group("statement")
        try:
            parse_sql(body)
        except QueryError as error:
            problems.append(
                f"QUERYING.md: example does not parse ({error}): {statement}"
            )

    # Every keyword and operator terminal of the grammar must be
    # exercised by at least one example statement.
    corpus = " ".join(statements).upper()
    for keyword in sorted(set(re.findall(r"'([A-Za-z]+)'", "\n".join(GRAMMAR)))):
        if keyword.upper() not in corpus:
            problems.append(
                f"QUERYING.md: grammar keyword {keyword!r} never appears "
                "in an example statement"
            )
    for operator in ("=", "<", "<=", ">", ">="):
        if not any(operator in statement for statement in statements):
            problems.append(
                f"QUERYING.md: operator {operator!r} never appears in an "
                "example statement"
            )

    # Every aggregate, every rollup level, and the computed Anomaly
    # column must be covered.
    for name in aggregate_names():
        if f"{name}(" not in corpus and f"{name}_S(" not in corpus:
            problems.append(
                f"QUERYING.md: aggregate {name!r} never appears in an "
                "example statement"
            )
    for level in (*TIME_LEVELS, *DATEPART_LEVELS):
        if level not in text.upper():
            problems.append(
                f"QUERYING.md: time-rollup level {level!r} is never "
                "mentioned"
            )
    if "ANOMALY" not in corpus:
        problems.append(
            "QUERYING.md: the Anomaly column never appears in an example "
            "statement"
        )
    return problems


def main() -> int:
    problems = (
        check_metrics()
        + check_operations()
        + check_development()
        + check_querying()
    )
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} docs consistency problem(s)", file=sys.stderr)
        return 1
    print(
        "docs consistency: METRICS.md, OPERATIONS.md, DEVELOPMENT.md "
        "and QUERYING.md match the code"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
