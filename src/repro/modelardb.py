"""The single-node ModelarDB facade.

Ties the subsystems together behind the API most users want:

    from repro import Configuration, ModelarDB

    db = ModelarDB(Configuration(error_bound=5.0,
                                 correlation=["Location 2"]),
                   dimensions=my_dimensions)
    db.ingest(my_time_series)
    db.sql("SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2) "
           "GROUP BY Tid")

Construction with ``group_compression=False`` disables the partitioner
(every series becomes its own group), which makes the engine behave as
ModelarDB v1 — multi-model compression without group compression — the
paper's main model-based baseline.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from .core.config import Configuration
from .core.dimensions import DimensionSet
from .core.group import TimeSeriesGroup, singleton_groups
from .core.timeseries import TimeSeries
from .ingest.ingestor import Ingestor
from .ingest.stats import IngestStats
from .models.base import ModelType
from .models.registry import ModelRegistry
from .partitioner.grouping import group_from_config
from .query.engine import QueryEngine
from .query.views import DataPointRow
from .storage.interface import Storage
from .storage.memory import MemoryStorage
from .storage.schema import records_for_groups


class ModelarDB:
    """A single-node ModelarDB instance.

    Parameters
    ----------
    config:
        Runtime configuration (error bound, model cascade, correlation
        clauses, ...). Defaults to a lossless single-model-per-series
        setup with Table 1's parameters.
    storage:
        Segment store backend; defaults to :class:`MemoryStorage`. Pass a
        :class:`~repro.storage.FileStorage` for persistence.
    dimensions:
        The data set's dimensions (Definition 7); required for
        member-based correlation primitives and dimension queries.
    extra_models:
        User-defined model types registered in addition to PMC, Swing
        and Gorilla (the extension API of Section 3.1).
    group_compression:
        When False the partitioner is bypassed and every time series is
        ingested alone, reproducing ModelarDB v1.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        storage: Storage | None = None,
        dimensions: DimensionSet | None = None,
        extra_models: Iterable[ModelType] = (),
        group_compression: bool = True,
    ) -> None:
        self.config = config if config is not None else Configuration()
        self.storage = storage if storage is not None else MemoryStorage()
        self.dimensions = (
            dimensions if dimensions is not None else DimensionSet()
        )
        self.registry = ModelRegistry(extra_models)
        self.group_compression = group_compression
        self.stats = IngestStats()
        self.groups: list[TimeSeriesGroup] = []
        self._engine = QueryEngine(self.storage, self.registry)
        self._flush_listeners: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def partition(self, series: Sequence[TimeSeries]) -> list[TimeSeriesGroup]:
        """Partition series into groups using the configured hints."""
        if not self.group_compression or not self.config.correlation:
            return singleton_groups(series)
        return group_from_config(
            series, self.config.correlation, self.dimensions
        )

    def ingest(self, series: Sequence[TimeSeries]) -> IngestStats:
        """Partition and ingest time series end to end."""
        groups = self.partition(series)
        return self.ingest_groups(groups)

    def ingest_groups(
        self, groups: Sequence[TimeSeriesGroup]
    ) -> IngestStats:
        """Ingest pre-partitioned groups."""
        self.groups.extend(groups)
        self.storage.insert_time_series(
            records_for_groups(list(groups), self.dimensions or None)
        )
        self.storage.insert_model_table(self.registry.model_table())
        ingestor = Ingestor(
            self.config, self.registry, self.storage,
            on_flush=self._notify_flush,
        )
        stats = ingestor.ingest(groups)
        self.stats.merge(stats)
        self._engine.refresh_metadata()
        return stats

    def add_flush_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever a bulk write lands.

        The serving layer registers its query-result cache here so
        cached rows are invalidated the moment new segments become
        visible (the paper's online-analytics property, Section 5).
        """
        self._flush_listeners.append(listener)

    def _notify_flush(self) -> None:
        self._engine.invalidate_caches()
        for listener in self._flush_listeners:
            listener()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sql(self, text: str) -> list[dict]:
        """Execute a SQL statement against the views (Section 6.1)."""
        return self._engine.sql(text)

    def aggregate(self, function: str, **kwargs) -> list[dict]:
        """Programmatic aggregate; see :meth:`QueryEngine.aggregate`."""
        return self._engine.aggregate(function, **kwargs)

    def points(self, **kwargs) -> Iterator[DataPointRow]:
        """Programmatic Data Point View scan."""
        return self._engine.points(**kwargs)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Bytes used by the segment store."""
        return self.storage.size_bytes()

    def segment_count(self) -> int:
        return self.storage.segment_count()

    def close(self) -> None:
        self.storage.close()
