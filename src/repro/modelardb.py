"""The single-node ModelarDB facade.

Ties the subsystems together behind the API most users want:

    from repro import Configuration, ModelarDB

    with ModelarDB.open("data/db",
                        config=Configuration(error_bound=5.0,
                                             correlation=["Location 2"]),
                        dimensions=my_dimensions) as db:
        db.ingest(my_time_series)
        db.sql("SELECT Tid, SUM_S(*) FROM Segment WHERE Tid IN (1, 2) "
               "GROUP BY Tid")

:meth:`ModelarDB.open` owns the storage wiring: a path opens (or
creates) a persistent :class:`~repro.storage.FileStorage` directory,
``None`` selects the in-memory store. Constructing :class:`ModelarDB`
directly with an explicit ``storage`` remains supported for custom
backends.

Construction with ``group_compression=False`` disables the partitioner
(every series becomes its own group), which makes the engine behave as
ModelarDB v1 — multi-model compression without group compression — the
paper's main model-based baseline.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Iterable, Iterator, Sequence

from .core.config import Configuration
from .core.dimensions import DimensionSet
from .core.group import TimeSeriesGroup, singleton_groups
from .core.timeseries import TimeSeries
from .ingest.ingestor import Ingestor
from .ingest.revisions import CorrectionPoint, apply_corrections
from .ingest.stats import IngestStats
from .models.base import ModelType
from .models.registry import ModelRegistry
from .partitioner.grouping import group_from_config
from .query.engine import QueryEngine
from .query.views import DataPointRow
from .storage.filestore import FileStorage
from .storage.interface import Storage
from .storage.memory import MemoryStorage
from .storage.schema import records_for_groups


class ModelarDB:
    """A single-node ModelarDB instance.

    Parameters
    ----------
    config:
        Runtime configuration (error bound, model cascade, correlation
        clauses, ...). Defaults to a lossless single-model-per-series
        setup with Table 1's parameters.
    storage:
        Segment store backend; defaults to :class:`MemoryStorage`. Pass a
        :class:`~repro.storage.FileStorage` for persistence.
    dimensions:
        The data set's dimensions (Definition 7); required for
        member-based correlation primitives and dimension queries.
    extra_models:
        User-defined model types registered in addition to PMC, Swing
        and Gorilla (the extension API of Section 3.1).
    group_compression:
        When False the partitioner is bypassed and every time series is
        ingested alone, reproducing ModelarDB v1.
    """

    def __init__(
        self,
        config: Configuration | None = None,
        storage: Storage | None = None,
        dimensions: DimensionSet | None = None,
        extra_models: Iterable[ModelType] = (),
        group_compression: bool = True,
    ) -> None:
        self.config = config if config is not None else Configuration()
        self.storage = storage if storage is not None else MemoryStorage()
        self.dimensions = (
            dimensions if dimensions is not None else DimensionSet()
        )
        self.registry = ModelRegistry(extra_models)
        self.group_compression = group_compression
        self.stats = IngestStats()
        self.groups: list[TimeSeriesGroup] = []
        self._engine = QueryEngine(
            self.storage,
            self.registry,
            columnar=self.config.columnar_read,
            error_bound=self.config.error_bound,
        )
        self._flush_listeners: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        path: str | os.PathLike | None = None,
        *,
        config: Configuration | None = None,
        dimensions: DimensionSet | None = None,
        extra_models: Iterable[ModelType] = (),
        group_compression: bool = True,
    ) -> "ModelarDB":
        """Open a ModelarDB instance over a storage directory.

        ``path`` names the :class:`~repro.storage.FileStorage` directory
        (created on first use, reopened afterwards); ``None`` gives an
        in-memory instance. The result is a context manager, so the
        canonical form is::

            with ModelarDB.open("data/db") as db:
                db.ingest(series)
        """
        storage: Storage = (
            MemoryStorage() if path is None else FileStorage(path)
        )
        return cls(
            config,
            storage=storage,
            dimensions=dimensions,
            extra_models=extra_models,
            group_compression=group_compression,
        )

    def __enter__(self) -> "ModelarDB":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def partition(self, series: Sequence[TimeSeries]) -> list[TimeSeriesGroup]:
        """Partition series into groups using the configured hints."""
        if not self.group_compression or not self.config.correlation:
            return singleton_groups(series)
        return group_from_config(
            series, self.config.correlation, self.dimensions
        )

    def ingest(
        self, data: Sequence[TimeSeries] | Sequence[TimeSeriesGroup]
    ) -> IngestStats:
        """Ingest time series end to end.

        Accepts either plain :class:`TimeSeries` (partitioned into
        groups using the configured correlation hints) or
        pre-partitioned :class:`TimeSeriesGroup` objects (ingested as
        given). Mixing the two in one call is an error.
        """
        items = list(data)
        grouped = [isinstance(item, TimeSeriesGroup) for item in items]
        if any(grouped):
            if not all(grouped):
                raise TypeError(
                    "ingest() takes either TimeSeries or TimeSeriesGroup "
                    "objects, not a mix"
                )
            return self._ingest_groups(items)
        return self._ingest_groups(self.partition(items))

    def ingest_groups(
        self, groups: Sequence[TimeSeriesGroup]
    ) -> IngestStats:
        """Deprecated spelling of :meth:`ingest` for pre-built groups."""
        warnings.warn(
            "ModelarDB.ingest_groups() is deprecated; ingest() now "
            "accepts TimeSeriesGroup objects directly",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._ingest_groups(groups)

    def _ingest_groups(
        self, groups: Sequence[TimeSeriesGroup]
    ) -> IngestStats:
        """Ingest pre-partitioned groups."""
        self.groups.extend(groups)
        self.storage.insert_time_series(
            records_for_groups(list(groups), self.dimensions or None)
        )
        self.storage.insert_model_table(self.registry.model_table())
        ingestor = Ingestor(
            self.config, self.registry, self.storage,
            on_flush=self._notify_flush,
        )
        stats = ingestor.ingest(groups)
        self.stats.merge(stats)
        self._engine.refresh_metadata()
        return stats

    def add_flush_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback fired whenever a bulk write lands.

        The serving layer registers its query-result cache here so
        cached rows are invalidated the moment new segments become
        visible (the paper's online-analytics property, Section 5).
        """
        self._flush_listeners.append(listener)

    def _notify_flush(self) -> None:
        self._engine.invalidate_caches()
        for listener in self._flush_listeners:
            listener()

    def correct(
        self, points: Iterable[CorrectionPoint]
    ) -> IngestStats:
        """Apply late or corrected data points as segment revisions.

        ``points`` is an iterable of ``(tid, timestamp, value)`` tuples
        (``None`` as the value erases the point). Each affected group
        window is re-fitted and superseding revisions are flushed,
        stamped with the store's next knowledge-time tick — reads
        default to the corrected state, ``AS OF`` a prior
        :meth:`knowledge_time` reproduces the pre-correction answers.
        """
        stats = apply_corrections(
            self.storage, self.config, self.registry, points
        )
        self.stats.merge(stats)
        self._notify_flush()
        return stats

    def knowledge_time(self) -> int:
        """The store's current knowledge-time counter.

        Capture it before :meth:`correct` to query the pre-correction
        state later with ``AS OF``.
        """
        return self.storage.knowledge_time()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        sql: str,
        *,
        as_of: int | None = None,
        columnar: bool | None = None,
    ) -> list[dict]:
        """Execute one SQL statement — the public query entrypoint.

        ``as_of`` bounds the read at a knowledge time (equivalent to an
        ``AS OF`` clause in the statement); ``columnar`` overrides the
        execution strategy for this statement only.
        """
        return self._engine.sql(sql, as_of=as_of, columnar=columnar)

    def sql(self, text: str) -> list[dict]:
        """Execute a SQL statement against the views (Section 6.1).

        Kept as a convenience alias of :meth:`query`.
        """
        return self.query(text)

    def aggregate(self, function: str, **kwargs) -> list[dict]:
        """Programmatic aggregate; see :meth:`QueryEngine.aggregate`."""
        return self._engine.aggregate(function, **kwargs)

    def points(self, **kwargs) -> Iterator[DataPointRow]:
        """Programmatic Data Point View scan."""
        return self._engine.points(**kwargs)

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Bytes used by the segment store."""
        return self.storage.size_bytes()

    def segment_count(self) -> int:
        return self.storage.segment_count()

    def close(self) -> None:
        self.storage.close()
