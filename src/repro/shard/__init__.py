"""``repro.shard`` — the shared-nothing sharded serving tier.

Fuses the serving layer (:mod:`repro.server`: asyncio front-end,
admission control, result cache) with the process-cluster substrate
(:mod:`repro.cluster`: worker processes, retry/backoff RPC, fault
plans) into a tier that scales query serving across workers:

* :class:`ShardMap` — consistent-hash Gid→shard placement plus mutable
  shard→workers replica tuples, with an explicit generation number;
* :class:`ShardedCluster` — the master: concurrent scatter-gather over
  per-worker channels, retry-on-replica query failover, shard recovery
  and metric-driven rebalancing;
* :class:`ShardedDispatcher` — plugs the tier under
  :class:`~repro.server.QueryServer` with the result cache keyed by
  the shard-map generation;
* :class:`SegmentBatch` — the idempotent RPC payload that ships an
  existing store's segments to shard owners.
"""

from .dispatcher import ShardedDispatcher
from .map import SegmentBatch, ShardMap
from .tier import ShardedCluster, ShardQueryReport

__all__ = [
    "SegmentBatch",
    "ShardMap",
    "ShardQueryReport",
    "ShardedCluster",
    "ShardedDispatcher",
]
