"""The shared-nothing sharded serving tier (master side).

:class:`ShardedCluster` fuses the process-cluster substrate
(:mod:`repro.cluster.pool`: one OS process per worker, retry/backoff
RPC, injectable faults) with the serving layer's concurrency model.
Where :class:`~repro.cluster.ProcessCluster` assumes a single-threaded
master — one scatter at a time over shared reply queues — this tier is
built to sit under a multi-threaded front-end:

* every worker gets a private :class:`_ShardChannel` whose lock
  serialises one request/reply exchange at a time, so *different*
  queries proceed concurrently as long as they touch different workers
  (and interleave at exchange granularity on shared ones);
* placement is delegated to a :class:`~repro.shard.map.ShardMap` —
  consistent-hash Gid→shard, explicit shard→owners replica tuples, and
  a generation number bumped on every ownership change;
* the scatter-gather planner routes each query to the shards whose
  Tids it can touch (via
  :func:`~repro.cluster.cluster.restrict_query_to_tids` with an
  explicit forced ``Tid IN`` predicate, so a worker holding several
  shards' replicas answers exactly for the shard it was asked about),
  fans the rewritten subqueries out on a thread pool, and merges the
  returned picklable :class:`~repro.query.engine.PartialResult`s with
  the engine's associative fold arithmetic;
* a worker crash *during* a query is survived by retrying the shard's
  remaining replicas (the ``execute`` RPC is read-only, so a replay is
  always safe); when every replica of a shard is gone the tier re-ships
  the shard's retained payloads to the least-busy survivors and asks
  again — queries are lost only with the last worker;
* skew is observable (`shard.shard_busy_seconds_total{shard=…}`) and
  actionable: :meth:`rebalance` moves the hottest shard's primary to
  the least-busy non-owner, shipping data before publishing the new
  owner tuple, and bumps the map generation so cached results computed
  under the old placement die with it.

Data reaches workers on two paths sharing the same placement: raw
series are partitioned into groups and ingested on every owner of their
shard (``assign`` + ``ingest``, both idempotent), while an existing
store is sharded by shipping per-Gid :class:`SegmentBatch` payloads
(``load_segments``, idempotent by batch id) — the clean cut between
logical series and physical placement.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..core.config import Configuration
from ..core.dimensions import DimensionSet
from ..core.errors import ClusterError, QueryError, WorkerFailure, WorkerRPCError
from ..core.group import TimeSeriesGroup, singleton_groups
from ..core.timeseries import TimeSeries
from ..obs import MetricsRegistry, get_registry
from ..partitioner.grouping import group_from_config
from ..query.analytics import merge_analytics_rows
from ..query.engine import PartialResult, merge_partial_results
from ..query.sql import Query, apply_as_of, parse
from ..storage.interface import Storage
from ..storage.scan import SegmentScan
from ..cluster.cluster import restrict_query_to_tids
from ..cluster.faults import FaultPlan
from ..cluster.pool import _POLL_SECONDS, _start_method, _WorkerHandle
from .map import SegmentBatch, ShardMap


@dataclass
class ShardQueryReport:
    """Measured outcome of one scatter-gather execution.

    Pure data (ints, floats, lists, dicts), so it can cross process
    boundaries like the cluster reports (RPR004-registered).
    """

    wall_seconds: float = 0.0
    merge_seconds: float = 0.0
    #: Worker-reported execution seconds per shard id.
    shard_seconds: dict[int, float] = field(default_factory=dict)
    #: Subqueries scattered (shards touched after routing).
    subqueries: int = 0
    #: Replica retries performed because an owner died mid-scatter.
    retries: int = 0
    #: Shards whose whole replica set died and was re-placed.
    recovered_shards: list[int] = field(default_factory=list)
    #: The shard-map generation the query was planned under.
    generation: int = 0


class _ShardChannel:
    """One worker's RPC endpoint, safe for multi-threaded masters.

    The cluster's per-worker queues carry one request/reply exchange at
    a time; the channel lock scopes that exchange so concurrent
    front-end threads never steal each other's replies. Retry/backoff
    mirrors :meth:`ProcessCluster._await`: a live-but-silent worker is
    re-asked with a growing timeout (every resend gets a fresh sequence
    number, any of them answers the call), a dead or exhausted worker
    raises :class:`WorkerFailure` for the tier to fail over.
    """

    def __init__(
        self,
        handle: _WorkerHandle,
        timeout: float,
        max_retries: int,
        backoff: float,
    ) -> None:
        self.handle = handle
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff = backoff
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        return self.handle.alive

    def call(self, method: str, payload: object) -> tuple[object, float]:
        """One logical RPC; returns (value, worker-reported seconds)."""
        retries = 0
        timeouts = 0
        posts = 1
        with self._lock:
            handle = self.handle
            handle.seq += 1
            seqs = {handle.seq}
            handle.requests.put((handle.seq, method, payload))
            timeout = self._timeout
            outcome: tuple[object, float] | None = None
            failure: WorkerFailure | WorkerRPCError | None = None
            for attempt in range(self._max_retries + 1):
                deadline = time.monotonic() + timeout
                while outcome is None and failure is None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        timeouts += 1
                        break
                    try:
                        reply = handle.replies.get(
                            timeout=min(_POLL_SECONDS, remaining)
                        )
                    except queue.Empty:
                        if not handle.process.is_alive():
                            failure = WorkerFailure(
                                handle.worker_id,
                                f"process exited with code "
                                f"{handle.process.exitcode} "
                                f"during {method!r}",
                            )
                        continue
                    rseq, ok, value, elapsed = reply
                    if rseq not in seqs:
                        continue  # stale duplicate of an earlier resend
                    if not ok:
                        failure = WorkerRPCError(
                            f"worker {handle.worker_id} failed "
                            f"{method!r}: {value}"
                        )
                    else:
                        outcome = (value, elapsed)
                if outcome is not None or failure is not None:
                    break
                if not handle.process.is_alive():
                    failure = WorkerFailure(
                        handle.worker_id,
                        f"process exited with code "
                        f"{handle.process.exitcode} during {method!r}",
                    )
                    break
                if attempt < self._max_retries:
                    retries += 1
                    posts += 1
                    handle.seq += 1
                    seqs.add(handle.seq)
                    handle.requests.put((handle.seq, method, payload))
                    timeout *= self._backoff
            if outcome is None and failure is None:
                failure = WorkerFailure(
                    handle.worker_id,
                    f"unresponsive to {method!r} after "
                    f"{self._max_retries} retries with exponential backoff",
                )
        # Instruments carry their own locks (RPR003): bump the RPC
        # traffic counters only after the channel lock is released.
        registry = get_registry()
        registry.counter("cluster.rpc_total", method=method).inc(posts)
        if retries:
            registry.counter("cluster.rpc_retries_total").inc(retries)
        if timeouts:
            registry.counter("cluster.rpc_timeouts_total").inc(timeouts)
        if failure is not None:
            raise failure
        value, elapsed = outcome
        registry.counter(
            "cluster.worker_busy_seconds_total",
            worker=str(self.handle.worker_id),
        ).inc(elapsed)
        return value, elapsed


class ShardedCluster:
    """A shard map, N worker processes, and a concurrent scatter layer.

    Parameters
    ----------
    n_workers:
        Worker processes to spawn.
    n_shards:
        Logical shards on the consistent-hash ring (defaults to
        ``n_workers`` — one primary shard per worker).
    n_replicas:
        Workers holding each shard (capped at ``n_workers``). With
        ``>= 2`` a worker crash during a query is survived by asking
        the next replica.
    config / dimensions / storage_root / fault_plan / timeout /
    max_retries / backoff / start_method:
        As in :class:`~repro.cluster.ProcessCluster`.
    auto_rebalance_interval:
        When ``> 0``, :meth:`maybe_rebalance` (called by the serving
        dispatcher after each query) runs :meth:`rebalance` every that
        many queries. ``0`` leaves rebalancing operator-driven.
    rebalance_threshold:
        A shard is "hot" when its busy-seconds exceed this multiple of
        the mean across populated shards.
    """

    def __init__(
        self,
        n_workers: int,
        n_shards: int | None = None,
        n_replicas: int = 1,
        config: Configuration | None = None,
        dimensions: DimensionSet | None = None,
        storage_root: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        group_compression: bool = True,
        timeout: float = 10.0,
        max_retries: int = 3,
        backoff: float = 2.0,
        start_method: str | None = None,
        auto_rebalance_interval: int = 0,
        rebalance_threshold: float = 2.0,
    ) -> None:
        if n_workers < 1:
            raise ClusterError("the sharded tier needs at least one worker")
        self.config = config if config is not None else Configuration()
        self.dimensions = (
            dimensions if dimensions is not None else DimensionSet()
        )
        self.group_compression = group_compression
        self.map = ShardMap(
            n_shards if n_shards is not None else n_workers,
            n_workers,
            n_replicas,
        )
        self.auto_rebalance_interval = auto_rebalance_interval
        self.rebalance_threshold = rebalance_threshold
        self._ctx = mp.get_context(start_method or _start_method())
        self._closed = False
        #: Serialises placement mutations (retire/recover/rebalance) and
        #: payload shipping. Lock order is admin -> channel, never the
        #: reverse: query threads take only channel locks.
        self._admin_lock = threading.Lock()
        self._listeners: list[Callable[[int], None]] = []
        #: Per-shard replica rotation. One *global* counter would alias
        #: with the scatter order (it advances by the shard count per
        #: query), pinning every shard to one replica; per-shard
        #: counters cycle each shard through its replicas query by
        #: query, spreading read load across the replica set.
        self._rotation: dict[int, itertools.count] = {}
        #: Retained per-shard payloads, the recovery/rebalance source of
        #: truth: raw groups (ingest path) and segment batches (load
        #: path), keyed by shard id.
        self._shard_groups: dict[int, list[TimeSeriesGroup]] = {}
        self._shard_batches: dict[int, list[SegmentBatch]] = {}
        self._shard_tids: dict[int, set[int]] = {}
        #: Cumulative worker-reported execute seconds, the rebalancer's
        #: skew signal (reset after each rebalance window).
        self._shard_busy: dict[int, float] = {}
        self._worker_busy: dict[int, float] = {}
        self.queries = 0
        self.failover_retries = 0
        self.lost_workers = 0
        self.rebalances = 0
        self._handles: dict[int, _WorkerHandle] = {}
        self._channels: dict[int, _ShardChannel] = {}
        for worker_id in range(n_workers):
            storage_dir = None
            if storage_root is not None:
                storage_dir = str(Path(storage_root) / f"worker_{worker_id}")
            handle = _WorkerHandle(
                worker_id, self._ctx, self.config, storage_dir, fault_plan
            )
            self._handles[worker_id] = handle
            self._channels[worker_id] = _ShardChannel(
                handle, timeout, max_retries, backoff
            )
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="shard-scatter"
        )

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # broad-ok: nothing to do in a GC finalizer
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False)
        for handle in self._handles.values():
            if handle.alive and handle.process.is_alive():
                try:
                    handle.seq += 1
                    handle.requests.put((handle.seq, "shutdown", None))
                except Exception:  # pragma: no cover - queue already gone
                    pass
        for handle in self._handles.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.alive = False
            for channel in (handle.requests, handle.replies):
                channel.close()
                channel.cancel_join_thread()

    # -- inspection ----------------------------------------------------
    @property
    def generation(self) -> int:
        return self.map.generation

    @property
    def live_worker_ids(self) -> list[int]:
        return [
            wid for wid, handle in self._handles.items() if handle.alive
        ]

    @property
    def tids(self) -> set[int]:
        owned: set[int] = set()
        for tids in self._shard_tids.values():
            owned |= tids
        return owned

    def add_generation_listener(
        self, listener: Callable[[int], None]
    ) -> None:
        """Call ``listener(generation)`` after every placement change
        (worker retirement, shard recovery, rebalance). The serving
        dispatcher hooks its result-cache invalidation here."""
        self._listeners.append(listener)

    def stats(self) -> dict:
        return {
            "map": self.map.to_dict(),
            "workers_alive": len(self.live_worker_ids),
            "workers_total": len(self._handles),
            "queries": self.queries,
            "failover_retries": self.failover_retries,
            "lost_workers": self.lost_workers,
            "rebalances": self.rebalances,
            "shard_tids": {
                str(shard): len(tids)
                for shard, tids in sorted(self._shard_tids.items())
            },
        }

    def metrics(self) -> dict:
        """Master registry merged with every live worker's snapshot."""
        combined = MetricsRegistry()
        combined.merge_snapshot(get_registry().snapshot())
        for wid in self.live_worker_ids:
            try:
                snapshot, _ = self._channels[wid].call("metrics", None)
                combined.merge_snapshot(snapshot)
            except WorkerFailure:
                continue  # died while being asked; its metrics died too
        return combined.snapshot()

    # -- placement -----------------------------------------------------
    def partition(
        self, series: Sequence[TimeSeries]
    ) -> list[TimeSeriesGroup]:
        if not self.group_compression or not self.config.correlation:
            return singleton_groups(series)
        return group_from_config(
            series, self.config.correlation, self.dimensions
        )

    def _place_group(self, group: TimeSeriesGroup) -> int:
        shard = self.map.shard_of(group.gid)
        self._shard_groups.setdefault(shard, []).append(group)
        self._shard_tids.setdefault(shard, set()).update(
            ts.tid for ts in group
        )
        return shard

    def _place_batch(self, batch: SegmentBatch) -> int:
        shard = self.map.shard_of(batch.gid)
        self._shard_batches.setdefault(shard, []).append(batch)
        self._shard_tids.setdefault(shard, set()).update(batch.tids)
        return shard

    # -- data shipping -------------------------------------------------
    def _ship_shard(self, worker_id: int, shard: int) -> None:
        """Make ``worker_id`` a full replica of ``shard`` (idempotent:
        the worker skips groups and batches it already applied)."""
        channel = self._channels[worker_id]
        handle = self._handles[worker_id]
        groups = self._shard_groups.get(shard, ())
        unshipped = [
            group
            for group in groups
            if group.gid not in handle.shipped_gids
        ]
        if unshipped:
            channel.call(
                "assign", (unshipped, self.dimensions or None)
            )
            handle.shipped_gids.update(group.gid for group in unshipped)
            for group in unshipped:
                if group not in handle.groups:
                    handle.groups.append(group)
            channel.call("ingest", None)
        for batch in self._shard_batches.get(shard, ()):
            if batch.gid in handle.shipped_gids:
                continue
            channel.call("load_segments", batch)
            handle.shipped_gids.add(batch.gid)

    def ingest(self, series: Sequence[TimeSeries]) -> dict:
        """Partition raw series, place their groups on the map, and
        ingest each group on every owner of its shard. Returns a small
        placement summary."""
        groups = self.partition(series)
        shards = sorted({self._place_group(group) for group in groups})
        self._replicate_shards(shards)
        return {
            "groups": len(groups),
            "shards": shards,
            "data_points": sum(len(ts) for g in groups for ts in g),
        }

    def load_storage(self, storage: Storage) -> dict:
        """Shard an existing store: ship each Gid's Time Series rows,
        model table and segments to its shard's owners as an idempotent
        :class:`SegmentBatch`. The master retains the batches so a lost
        replica can always be rebuilt."""
        metadata = storage.group_metadata()
        model_table = storage.model_table()
        records_by_gid: dict[int, list] = {}
        for record in storage.time_series():
            records_by_gid.setdefault(record.gid, []).append(record)
        shards: set[int] = set()
        for gid in sorted(metadata):
            batch = SegmentBatch(
                batch_id=f"gid-{gid}",
                gid=gid,
                time_series=records_by_gid.get(gid, []),
                model_table=model_table,
                # Every revision ships, stamps intact, so shard replicas
                # answer AS OF exactly like the source store.
                segments=list(
                    storage.scan(
                        SegmentScan(gids=(gid,), all_revisions=True)
                    )
                ),
            )
            shards.add(self._place_batch(batch))
        self._replicate_shards(sorted(shards))
        return {
            "groups": len(metadata),
            "shards": sorted(shards),
            "segments": sum(
                len(batch.segments)
                for batches in self._shard_batches.values()
                for batch in batches
            ),
        }

    def _replicate_shards(self, shards: Sequence[int]) -> None:
        with self._admin_lock:
            for shard in shards:
                owners = [
                    wid
                    for wid in self.map.owners_of(shard)
                    if self._handles[wid].alive
                ]
                if not owners:
                    raise ClusterError(
                        f"no live owner to replicate shard {shard} to"
                    )
                for wid in owners:
                    self._ship_shard(wid, shard)

    # -- scatter-gather ------------------------------------------------
    def sql(
        self, text: str, *, as_of: int | None = None
    ) -> tuple[list[dict], ShardQueryReport]:
        """Scatter one statement; ``as_of`` bounds every shard's read at
        the same knowledge time (stamps are preserved when batches ship,
        so the sharded answer matches the embedded engine's)."""
        return self.execute(apply_as_of(parse(text), as_of))

    def execute(self, query: Query) -> tuple[list[dict], ShardQueryReport]:
        """Scatter a query to owning shards, gather partials, merge.

        Failures are handled per shard: a dead owner is retired from
        the map (generation bump) and the next replica is asked; a
        shard with no surviving replica is re-placed and re-shipped
        from the master's retained payloads before the retry.
        """
        wall_started = time.perf_counter()
        report = ShardQueryReport(generation=self.map.generation)
        plan: list[tuple[int, Query]] = []
        for shard in sorted(self._shard_tids):
            routed = restrict_query_to_tids(
                query, self._shard_tids[shard], force=True
            )
            if routed is not None:
                plan.append((shard, routed))
        report.subqueries = len(plan)
        futures = [
            (shard, self._executor.submit(self._execute_shard, shard, routed))
            for shard, routed in plan
        ]
        outputs: list[tuple[int, object]] = []
        first_error: Exception | None = None
        for shard, future in futures:
            try:
                result, elapsed, retries, recovered = future.result()
            except (ClusterError, WorkerRPCError, QueryError) as exc:
                first_error = first_error or exc
                continue
            outputs.append((shard, result))
            report.shard_seconds[shard] = elapsed
            report.retries += retries
            if recovered:
                report.recovered_shards.append(shard)
        if first_error is not None:
            raise first_error
        merge_started = time.perf_counter()
        partials: list[PartialResult] = []
        rows: list[dict] = []
        for _, result in sorted(outputs, key=lambda entry: entry[0]):
            if isinstance(result, PartialResult):
                partials.append(result)
            else:
                rows.extend(result)
        if partials:
            rows = merge_partial_results(partials)
        else:
            # Per-shard top-k similarity rows fold into the global
            # top-k; forecast rows re-sort by (Tid, TS) since shards
            # answer in shard order. A no-op for plain selections.
            rows = merge_analytics_rows(query, rows)
        now = time.perf_counter()
        report.merge_seconds = now - merge_started
        report.wall_seconds = now - wall_started
        self.queries += 1
        self._record_query_metrics(report)
        return rows, report

    def _record_query_metrics(self, report: ShardQueryReport) -> None:
        registry = get_registry()
        registry.counter("shard.queries_total").inc()
        for shard, elapsed in report.shard_seconds.items():
            registry.counter(
                "shard.subqueries_total", shard=str(shard)
            ).inc()
            registry.counter(
                "shard.shard_busy_seconds_total", shard=str(shard)
            ).inc(elapsed)
        if report.retries:
            registry.counter("shard.failover_retries_total").inc(
                report.retries
            )
        registry.gauge("shard.map_generation").set(self.map.generation)
        registry.histogram("shard.merge_seconds").record(
            report.merge_seconds
        )

    def _execute_shard(
        self, shard: int, routed: Query
    ) -> tuple[object, float, int, bool]:
        """Run one shard's subquery on a replica, failing over in place.

        Returns (result, worker seconds, replica retries, recovered).
        """
        retries = 0
        recovered = False
        for round_ in range(len(self._handles) + 1):
            owners = [
                wid
                for wid in self.map.owners_of(shard)
                if self._handles[wid].alive
            ]
            if not owners:
                self._recover_shard(shard)
                recovered = True
                continue
            offset = next(self._rotation.setdefault(shard, itertools.count()))
            for index in range(len(owners)):
                wid = owners[(offset + index) % len(owners)]
                channel = self._channels[wid]
                if not channel.alive:
                    continue
                try:
                    value, elapsed = channel.call("execute", routed)
                except WorkerFailure:
                    self._retire_worker(wid)
                    retries += 1
                    continue
                self._note_busy(shard, wid, elapsed)
                return value, elapsed, retries, recovered
        raise ClusterError(
            f"shard {shard} has no answering replica after "
            f"{retries} retries"
        )

    def _note_busy(self, shard: int, worker_id: int, elapsed: float) -> None:
        with self._admin_lock:
            self._shard_busy[shard] = (
                self._shard_busy.get(shard, 0.0) + elapsed
            )
            self._worker_busy[worker_id] = (
                self._worker_busy.get(worker_id, 0.0) + elapsed
            )

    # -- failure handling ----------------------------------------------
    def _retire_worker(self, worker_id: int) -> None:
        """Declare a worker dead: fence the process, drop it from every
        replica set (one generation bump), notify listeners."""
        with self._admin_lock:
            handle = self._handles[worker_id]
            if not handle.alive:
                return
            handle.alive = False
            if handle.process.is_alive():  # unresponsive, not dead
                handle.process.terminate()
            self.map.retire_worker(worker_id)
            self.lost_workers += 1
            generation = self.map.generation
        registry = get_registry()
        registry.counter("shard.lost_workers_total").inc()
        registry.counter("cluster.worker_failures_total").inc()
        self._notify(generation)

    def _recover_shard(self, shard: int) -> None:
        """Re-place a shard whose whole replica set died: ship the
        retained payloads to the least-busy survivors, then publish the
        new owner tuple (generation bump)."""
        with self._admin_lock:
            if any(
                self._handles[wid].alive
                for wid in self.map.owners_of(shard)
            ):
                return  # another thread recovered it first
            live = [
                wid
                for wid, handle in self._handles.items()
                if handle.alive
            ]
            if not live:
                raise ClusterError("no surviving workers in the tier")
            live.sort(key=lambda wid: self._worker_busy.get(wid, 0.0))
            targets = live[: self.map.n_replicas]
            for wid in targets:
                self._ship_shard(wid, shard)
            self.map.set_owners(shard, tuple(targets))
            generation = self.map.generation
        get_registry().counter("cluster.failovers_total").inc()
        self._notify(generation)

    def _notify(self, generation: int) -> None:
        for listener in self._listeners:
            try:
                listener(generation)
            except Exception:  # broad-ok: listeners must not stop serving
                pass

    # -- rebalancing ---------------------------------------------------
    def maybe_rebalance(self) -> list[tuple[int, int, int]]:
        """Auto-trigger hook for the serving dispatcher: rebalance every
        ``auto_rebalance_interval`` queries (never when 0)."""
        interval = self.auto_rebalance_interval
        if interval <= 0 or self.queries == 0:
            return []
        if self.queries % interval != 0:
            return []
        return self.rebalance()

    def rebalance(
        self, threshold: float | None = None, max_moves: int = 1
    ) -> list[tuple[int, int, int]]:
        """Move hot shards onto the least-busy workers.

        A shard is hot when its accumulated busy-seconds exceed
        ``threshold`` times the mean over populated shards. For each
        (up to ``max_moves``) the shard's data is shipped to the
        least-busy live non-owner, which then becomes the primary; the
        coldest previous replica drops off the owner tuple. Returns
        ``(shard, old primary, new primary)`` moves; the busy window
        resets after any move so decisions use fresh load.
        """
        if threshold is None:
            threshold = self.rebalance_threshold
        moves: list[tuple[int, int, int]] = []
        with self._admin_lock:
            busy = {
                shard: self._shard_busy.get(shard, 0.0)
                for shard in self._shard_tids
            }
            populated = [s for s in busy if busy[s] > 0.0]
            if len(populated) < 2:
                return []
            mean = sum(busy[s] for s in populated) / len(populated)
            if mean <= 0.0:
                return []
            hot = sorted(
                (s for s in populated if busy[s] > threshold * mean),
                key=lambda s: busy[s],
                reverse=True,
            )
            for shard in hot[:max_moves]:
                owners = [
                    wid
                    for wid in self.map.owners_of(shard)
                    if self._handles[wid].alive
                ]
                candidates = [
                    wid
                    for wid, handle in self._handles.items()
                    if handle.alive and wid not in owners
                ]
                if not candidates:
                    continue
                target = min(
                    candidates,
                    key=lambda wid: self._worker_busy.get(wid, 0.0),
                )
                self._ship_shard(target, shard)
                new_owners = ((target,) + tuple(owners))[
                    : self.map.n_replicas
                ]
                self.map.set_owners(shard, new_owners)
                moves.append(
                    (shard, owners[0] if owners else -1, target)
                )
            if moves:
                self._shard_busy = {}
                self.rebalances += len(moves)
            generation = self.map.generation
        if moves:
            registry = get_registry()
            registry.counter("shard.rebalances_total").inc(len(moves))
            registry.gauge("shard.map_generation").set(generation)
            self._notify(generation)
        return moves
