"""The shard map: consistent-hash Gid placement with generation numbers.

The sharded serving tier's single routing authority. A
:class:`ShardMap` answers two questions:

* ``shard_of(gid)`` — which *logical shard* a group belongs to. Decided
  by consistent hashing over a virtual-node ring (``blake2b``, so the
  placement is deterministic across processes and Python hash
  randomization), which keeps the Gid→shard function stable as workers
  come and go: logical placement never depends on cluster membership.
* ``owners_of(shard)`` — which *workers* currently hold that shard's
  replicas, primary first. Ownership is the mutable half: failover and
  rebalancing rewrite owner tuples, never the ring.

Every ownership mutation bumps ``generation``. The front-end snapshots
the generation per query and the result cache keys its validity on it,
so a routing change (worker death, rebalance) atomically invalidates
results computed under the old placement.

The map is pure data (ints, tuples, dicts) and therefore picklable —
it crosses the RPC boundary in stats payloads and is registered with
reprolint's RPR004 pickle-safety rule, as is :class:`SegmentBatch`,
the payload of the ``load_segments`` worker RPC that ships stored
segments (rather than raw series) to a shard's owners.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field

from ..core.errors import ClusterError
from ..core.segment import SegmentGroup
from ..storage.schema import TimeSeriesRecord

#: Virtual nodes per shard on the hash ring. 64 keeps the expected
#: imbalance across shards under a few percent for realistic Gid counts.
_VNODES = 64


def _ring_hash(text: str) -> int:
    """Deterministic 64-bit ring position (stable across processes)."""
    digest = hashlib.blake2b(text.encode("ascii"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class SegmentBatch:
    """One group's stored state, shipped whole to a shard's owners.

    The ``load_segments`` RPC payload: everything a worker needs to
    answer queries for one Gid out of an existing store — Time Series
    rows, the model table, and the segment rows themselves. ``batch_id``
    makes the RPC idempotent: a worker remembers applied ids, so the
    master's retry-on-timeout resends (and re-ships during recovery)
    never double-append segments.
    """

    batch_id: str
    gid: int
    time_series: list[TimeSeriesRecord] = field(default_factory=list)
    model_table: dict[int, str] = field(default_factory=dict)
    segments: list[SegmentGroup] = field(default_factory=list)

    @property
    def tids(self) -> tuple[int, ...]:
        return tuple(sorted(record.tid for record in self.time_series))


class ShardMap:
    """Gid → shard (immutable ring) and shard → workers (mutable)."""

    def __init__(
        self,
        n_shards: int,
        n_workers: int,
        n_replicas: int = 1,
        vnodes: int = _VNODES,
    ) -> None:
        if n_shards < 1:
            raise ClusterError("a shard map needs at least one shard")
        if n_workers < 1:
            raise ClusterError("a shard map needs at least one worker")
        if n_replicas < 1:
            raise ClusterError("replication factor must be >= 1")
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.n_replicas = min(n_replicas, n_workers)
        self.generation = 0
        ring = sorted(
            (_ring_hash(f"shard-{shard}-vnode-{vnode}"), shard)
            for shard in range(n_shards)
            for vnode in range(vnodes)
        )
        self._ring_keys = tuple(entry[0] for entry in ring)
        self._ring_shards = tuple(entry[1] for entry in ring)
        #: shard id -> worker ids holding a replica, primary first.
        #: The initial spread staggers replicas round-robin so every
        #: worker is primary for ~n_shards/n_workers shards.
        self._owners: dict[int, tuple[int, ...]] = {
            shard: tuple(
                (shard + offset) % n_workers
                for offset in range(self.n_replicas)
            )
            for shard in range(n_shards)
        }

    # -- logical placement (never changes) -----------------------------
    def shard_of(self, gid: int) -> int:
        """The shard owning ``gid``: first ring vnode at or after its
        hash, wrapping at the top of the ring."""
        index = bisect_right(self._ring_keys, _ring_hash(f"gid-{gid}"))
        if index == len(self._ring_keys):
            index = 0
        return self._ring_shards[index]

    # -- physical ownership (failover / rebalancing mutate this) -------
    def owners_of(self, shard: int) -> tuple[int, ...]:
        try:
            return self._owners[shard]
        except KeyError:
            raise ClusterError(f"unknown shard {shard}") from None

    def set_owners(self, shard: int, owners: tuple[int, ...]) -> None:
        """Replace a shard's replica set (primary first); bumps the
        generation. Callers ship the shard's data before publishing."""
        if shard not in self._owners:
            raise ClusterError(f"unknown shard {shard}")
        if not owners:
            raise ClusterError("a shard needs at least one owner")
        if len(set(owners)) != len(owners):
            raise ClusterError("shard owners must be distinct")
        self._owners[shard] = tuple(owners)
        self.generation += 1

    def retire_worker(self, worker_id: int) -> list[int]:
        """Drop a dead worker from every replica set it appears in.

        Returns the shards that lost a replica (empty owner tuples are
        allowed here — the tier recovers such shards by re-placing and
        re-shipping them). Bumps the generation once when anything
        changed.
        """
        affected: list[int] = []
        for shard, owners in self._owners.items():
            if worker_id in owners:
                self._owners[shard] = tuple(
                    owner for owner in owners if owner != worker_id
                )
                affected.append(shard)
        if affected:
            self.generation += 1
        return affected

    def orphaned_shards(self) -> list[int]:
        """Shards whose replica set is currently empty."""
        return sorted(
            shard for shard, owners in self._owners.items() if not owners
        )

    def to_dict(self) -> dict:
        """Stats/debug rendering (shard id -> owner list)."""
        return {
            "n_shards": self.n_shards,
            "n_replicas": self.n_replicas,
            "generation": self.generation,
            "owners": {
                str(shard): list(owners)
                for shard, owners in sorted(self._owners.items())
            },
        }

    # Pure-data pickling: the ring tuples, owner dict and counters are
    # all plain builtins, so the default protocol works; these exist to
    # make the contract explicit (and RPR004-checkable).
    def __getstate__(self) -> dict:
        return dict(self.__dict__)

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
