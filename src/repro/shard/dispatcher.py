"""Serving dispatcher over the sharded tier.

:class:`ShardedDispatcher` plugs a :class:`~repro.shard.tier.ShardedCluster`
under the query server. Unlike :class:`~repro.server.ClusterDispatcher`
it holds **no global lock**: the tier's per-worker channels already
serialise what must be serialised, so the server's executor threads
scatter different statements concurrently — the whole point of the
sharded tier.

The result cache is keyed by the shard map's generation: the dispatcher
registers a generation listener, so any placement change (a worker
retired mid-query, a shard recovered, a rebalance) invalidates every
cached result computed under the old placement before the next lookup.
"""

from __future__ import annotations

from ..obs import get_registry
from ..server.dispatcher import Dispatcher, ExecuteHook
from .tier import ShardedCluster


class ShardedDispatcher(Dispatcher):
    """Serve by scatter-gathering statements over shard replicas."""

    mode = "sharded"

    def __init__(
        self,
        tier: ShardedCluster,
        owns_tier: bool = False,
        result_cache_capacity: int = 256,
        execute_hook: ExecuteHook | None = None,
    ) -> None:
        super().__init__(result_cache_capacity, execute_hook)
        self._tier = tier
        self._owns_tier = owns_tier
        self._closed = False
        tier.add_generation_listener(self._on_generation)

    @property
    def tier(self) -> ShardedCluster:
        return self._tier

    def _on_generation(self, generation: int) -> None:
        # Placement changed: results computed under the old shard map
        # may have been answered by a now-gone replica set.
        self.result_cache.invalidate()

    def _run(self, sql: str, as_of: int | None = None) -> list[dict]:
        rows, _ = self._tier.sql(sql, as_of=as_of)
        self._tier.maybe_rebalance()
        return rows

    def _backend_stats(self) -> dict:
        return {"shard_tier": self._tier.stats()}

    def metrics(self) -> dict:
        try:
            return self._tier.metrics()
        except Exception:  # broad-ok: stats must not kill the server
            return get_registry().snapshot()

    def catalog(self) -> dict:
        tids = sorted(self._tier.tids)
        return {
            "n_series": len(tids),
            "tids": tids[:1024],
            "shards": self._tier.map.n_shards,
            "replicas": self._tier.map.n_replicas,
            "generation": self._tier.generation,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_tier:
            self._tier.close()
