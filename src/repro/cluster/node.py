"""Cluster nodes: workers with co-located storage and query processing.

Each worker owns the groups assigned to it — their segments never leave
the node, which is what lets ModelarDB answer aggregate queries without
shuffling (Section 7.3, Scale-out). The master holds only metadata: the
Tid -> Gid -> worker mapping used to route queries.
"""

from __future__ import annotations

import time
from ..core.config import Configuration
from ..core.group import TimeSeriesGroup
from ..ingest.ingestor import Ingestor
from ..ingest.stats import IngestStats
from ..models.registry import ModelRegistry
from ..query.engine import PartialResult, QueryEngine
from ..query.sql import Query
from ..storage.interface import Storage
from ..storage.memory import MemoryStorage
from ..storage.schema import records_for_groups


class WorkerNode:
    """One worker: local segment store, ingestion, query execution."""

    def __init__(
        self,
        node_id: int,
        config: Configuration,
        registry: ModelRegistry,
        storage: Storage | None = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.registry = registry
        self.storage = storage if storage is not None else MemoryStorage()
        self.groups: list[TimeSeriesGroup] = []
        self._pending: list[TimeSeriesGroup] = []
        #: Applied ``load_segments`` batch ids. Segment insertion is an
        #: append, so idempotency must be explicit: a retried (or
        #: re-shipped) batch is skipped instead of double-appended.
        self._loaded_batches: set[str] = set()
        self.stats = IngestStats()
        self._engine = QueryEngine(
            self.storage,
            self.registry,
            columnar=config.columnar_read,
            error_bound=config.error_bound,
        )

    # ------------------------------------------------------------------
    @property
    def load(self) -> int:
        """Assignment load metric: total data points across groups."""
        return sum(
            len(ts) * 1 for group in self.groups for ts in group
        )

    @property
    def tids(self) -> set[int]:
        return {ts.tid for group in self.groups for ts in group}

    @property
    def gids(self) -> set[int]:
        return {group.gid for group in self.groups}

    def assign(self, group: TimeSeriesGroup, dimensions=None) -> None:
        """Accept responsibility for a group (metadata written locally).

        Idempotent on Gid: re-assigning an already-owned group is a
        no-op, so a duplicated ``assign`` RPC (the master retrying after
        a dropped reply) cannot double-ingest a group.
        """
        if any(existing.gid == group.gid for existing in self.groups):
            return
        self.groups.append(group)
        self._pending.append(group)
        self.storage.insert_time_series(
            records_for_groups([group], dimensions)
        )
        self.storage.insert_model_table(self.registry.model_table())

    def ingest_assigned(self) -> float:
        """Ingest the groups assigned since the last call; returns
        elapsed seconds.

        Only not-yet-ingested groups are processed, which makes the call
        idempotent (a retried ``ingest`` RPC ingests nothing) and lets
        failover add a dead worker's groups to a node that has already
        ingested its own.
        """
        pending, self._pending = self._pending, []
        started = time.perf_counter()
        stats = Ingestor(self.config, self.registry, self.storage).ingest(
            pending
        )
        elapsed = time.perf_counter() - started
        self.stats.merge(stats)
        self._engine.refresh_metadata()
        return elapsed

    def load_segments(self, batch) -> int:
        """Apply one shipped segment batch (sharded serving's load
        path); returns the number of segments applied.

        ``batch`` is a :class:`~repro.shard.map.SegmentBatch`-shaped
        object (duck-typed here so the cluster layer does not import
        the shard layer): ``batch_id``, ``time_series``, ``model_table``
        and ``segments``. Idempotent by ``batch_id`` — unlike ``assign``
        /``ingest``, segment insertion appends, so a duplicated RPC
        must be rejected, not replayed.
        """
        if batch.batch_id in self._loaded_batches:
            return 0
        self.storage.insert_time_series(batch.time_series)
        self.storage.insert_model_table(batch.model_table)
        self.storage.insert_segments(batch.segments)
        self._loaded_batches.add(batch.batch_id)
        self._engine.refresh_metadata()
        return len(batch.segments)

    def execute_partial(
        self, query: Query
    ) -> tuple[PartialResult | list[dict], float]:
        """Run a query locally; returns (partial/rows, elapsed seconds)."""
        started = time.perf_counter()
        result = self._engine.execute_partial(query)
        return result, time.perf_counter() - started

    def flush(self) -> tuple[int, int]:
        """Make local state durable; returns (segment count, bytes)."""
        self.storage.flush()
        return self.storage.segment_count(), self.storage.size_bytes()

    def close(self) -> None:
        """Release the local store (end of the worker's lifetime)."""
        self.storage.close()

    @property
    def engine(self) -> QueryEngine:
        return self._engine
