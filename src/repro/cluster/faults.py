"""Injectable fault plans for the process-parallel cluster.

A :class:`FaultPlan` describes what should go wrong, where, and when.
The plan is shipped to every worker process at spawn time; the *worker*
executes its own faults (crashing with ``os._exit``, sleeping, or
swallowing a reply), so the master's timeout/retry/failover machinery is
exercised exactly as it would be by a real failure — there is no
master-side shortcut that could mask a protocol bug.

Fault kinds:

``crash``
    The worker process exits hard (``os._exit``) when it receives the
    matching request, before executing it. The master observes a dead
    process and fails the worker over.
``slow``
    The worker executes the request but sleeps ``delay`` seconds before
    replying. The master's first timeout resends; the late original
    reply is still accepted (both sequence numbers name the same call).
``drop``
    The worker executes the request but never replies, as if the reply
    message were lost. The master resends after a timeout; the request
    handlers are idempotent, so re-execution is safe.

Each fault triggers on the first ``times`` requests matching its
``(worker_id, method)`` pair and is then spent, so retried requests
succeed — which is what lets the recovery tests assert that the master
rides out transient faults without failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ModelarError

#: RPC methods a fault may target.
FAULT_METHODS = (
    "assign", "ingest", "execute", "load_segments", "flush", "ping"
)

#: Supported fault kinds.
FAULT_KINDS = ("crash", "slow", "drop")


class FaultPlanError(ModelarError):
    """An invalid fault specification."""


@dataclass
class Fault:
    """One injectable fault, keyed by worker and RPC method."""

    worker_id: int
    method: str
    kind: str
    delay: float = 0.0
    times: int = 1
    #: Matching requests to let through unharmed before the fault arms.
    #: ``after=3`` on an ``execute`` crash kills the worker on its 4th
    #: execute — how the sharded serving tests (and benchmark crash
    #: scenario) fire a failure *mid-run* rather than on first contact.
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.method not in FAULT_METHODS:
            raise FaultPlanError(
                f"unknown fault method {self.method!r}; expected one of "
                f"{FAULT_METHODS}"
            )
        if self.delay < 0:
            raise FaultPlanError("fault delay must be >= 0")
        if self.times < 1:
            raise FaultPlanError("fault times must be >= 1")
        if self.after < 0:
            raise FaultPlanError("fault after must be >= 0")


@dataclass
class FaultPlan:
    """An ordered collection of faults, consumed worker-side."""

    faults: list[Fault] = field(default_factory=list)

    def take(self, worker_id: int, method: str) -> Fault | None:
        """Consume and return the first live fault matching the request.

        Called by the worker's request loop; each worker process holds
        its own copy of the plan, so consuming is process-local.
        """
        for fault in self.faults:
            if (
                fault.worker_id == worker_id
                and fault.method == method
                and fault.times > 0
            ):
                if fault.after > 0:
                    fault.after -= 1
                    return None
                fault.times -= 1
                return fault
        return None

    @classmethod
    def crash_after(
        cls, worker_id: int, after: int, method: str = "execute"
    ) -> "FaultPlan":
        """Kill ``worker_id`` on its ``after + 1``-th ``method`` — a
        crash that fires mid-run instead of on first contact."""
        return cls([Fault(worker_id, method, "crash", after=after)])

    # -- convenience constructors --------------------------------------
    @classmethod
    def crash(cls, worker_id: int, method: str = "execute") -> "FaultPlan":
        """Kill ``worker_id`` when it receives its next ``method``."""
        return cls([Fault(worker_id, method, "crash")])

    @classmethod
    def slow(
        cls, worker_id: int, delay: float, method: str = "execute"
    ) -> "FaultPlan":
        """Delay ``worker_id``'s next ``method`` reply by ``delay`` s."""
        return cls([Fault(worker_id, method, "slow", delay=delay)])

    @classmethod
    def drop(cls, worker_id: int, method: str = "execute") -> "FaultPlan":
        """Swallow ``worker_id``'s next ``method`` reply."""
        return cls([Fault(worker_id, method, "drop")])

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        Comma-separated entries of ``kind:worker:method[:delay]``, e.g.
        ``crash:1:execute`` or ``slow:0:ingest:0.5,drop:2:execute``.
        """
        faults = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (3, 4):
                raise FaultPlanError(
                    f"bad fault spec {entry!r}; expected "
                    "kind:worker:method[:delay]"
                )
            kind, worker_text, method = parts[:3]
            try:
                worker_id = int(worker_text)
            except ValueError:
                raise FaultPlanError(
                    f"bad worker id in fault spec {entry!r}"
                ) from None
            delay = 0.0
            if len(parts) == 4:
                try:
                    delay = float(parts[3])
                except ValueError:
                    raise FaultPlanError(
                        f"bad delay in fault spec {entry!r}"
                    ) from None
            faults.append(Fault(worker_id, method, kind, delay=delay))
        return cls(faults)
