"""The master/worker cluster substrate.

Reproduces the distribution properties the evaluation relies on:

* the partitioner's groups are assigned whole to the least-loaded worker
  (Section 3.1), so correlated series are always ingested on one node
  and no data migrates afterwards;
* queries are rewritten at the master and scattered to the workers that
  own relevant groups; workers return mergeable partial aggregates which
  the master merges and finalizes (Algorithm 5's distributed structure);
* because groups are pinned, no shuffle is ever needed — the property
  behind Fig. 20's linear scale-out.

Workers execute sequentially in-process; the reports model parallel
execution as ``max`` over per-worker elapsed times (plus the master's
merge time for queries), which is what a real cluster's makespan would
be with even assignment and no interference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..core.config import Configuration
from ..core.dimensions import DimensionSet
from ..core.errors import QueryError
from ..core.group import TimeSeriesGroup, singleton_groups
from ..core.timeseries import TimeSeries
from ..models.registry import ModelRegistry
from ..partitioner.grouping import group_from_config
from ..query.analytics import merge_analytics_rows
from ..query.engine import PartialResult, merge_partial_results
from ..query.sql import Condition, Query, apply_as_of, parse
from ..storage.interface import Storage
from .node import WorkerNode


@dataclass
class ClusterIngestReport:
    """Timing and volume of one cluster ingestion."""

    worker_seconds: list[float]
    data_points: int
    #: Measured wall-clock seconds of the whole scatter (only set by the
    #: process-parallel substrate; 0.0 in simulated mode).
    wall_seconds: float = 0.0

    @property
    def makespan(self) -> float:
        """Modelled parallel wall time: the slowest worker."""
        return max(self.worker_seconds) if self.worker_seconds else 0.0

    @property
    def measured_makespan(self) -> float:
        """Measured wall time when available, else the modelled one."""
        return self.wall_seconds if self.wall_seconds else self.makespan

    @property
    def total_work(self) -> float:
        return sum(self.worker_seconds)

    @property
    def throughput(self) -> float:
        """Data points per modelled parallel second."""
        return self.data_points / self.makespan if self.makespan else 0.0


@dataclass
class ClusterQueryReport:
    """Timing of one scattered query."""

    worker_seconds: list[float] = field(default_factory=list)
    merge_seconds: float = 0.0
    #: Measured wall-clock seconds of scatter + gather + merge (only set
    #: by the process-parallel substrate; 0.0 in simulated mode).
    wall_seconds: float = 0.0
    #: Failovers performed while answering: (dead worker, new owner).
    failovers: list[tuple[int, int]] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        slowest = max(self.worker_seconds) if self.worker_seconds else 0.0
        return slowest + self.merge_seconds

    @property
    def measured_makespan(self) -> float:
        """Measured wall time when available, else the modelled one."""
        return self.wall_seconds if self.wall_seconds else self.makespan

    @property
    def total_work(self) -> float:
        return sum(self.worker_seconds) + self.merge_seconds


def restrict_query_to_tids(
    query: Query, owned: set[int], force: bool = False
) -> Query | None:
    """Restrict a query's Tid predicates to ``owned`` series.

    The master's routing step: intersects any ``Tid``/``Tid IN``
    predicates with the Tids a worker owns. Returns None when the
    intersection is empty (the worker is pruned from the scatter) and,
    when the query has no Tid predicate, the query unchanged — unless
    ``force`` is set, in which case an explicit ``Tid IN`` predicate
    over ``owned`` is added. Failover uses ``force`` to re-ask only for
    the Tids whose groups moved off a dead worker.
    """
    requested: set[int] | None = None
    for condition in query.where:
        if condition.column.lower() != "tid":
            continue
        if condition.operator == "=":
            values = {int(condition.value)}
        elif condition.operator == "IN":
            values = {int(v) for v in condition.value}
        else:
            raise QueryError(
                "cluster Tid predicates support '=' and 'IN' only"
            )
        requested = values if requested is None else requested & values
    if requested is None:
        if not force:
            return query
        requested = set(owned)
    restricted = requested & owned
    if not restricted:
        return None
    where = tuple(
        condition
        for condition in query.where
        if condition.column.lower() != "tid"
    ) + (Condition("Tid", "IN", tuple(sorted(restricted))),)
    # dataclasses.replace keeps every other field (similar_to, limit,
    # ...) intact — a positional rebuild would silently drop them.
    return replace(query, where=where)


class ModelarCluster:
    """A master plus N workers over in-process storage backends."""

    def __init__(
        self,
        n_workers: int,
        config: Configuration | None = None,
        dimensions: DimensionSet | None = None,
        storage_factory: Callable[[int], Storage] | None = None,
        group_compression: bool = True,
    ) -> None:
        if n_workers < 1:
            raise QueryError("a cluster needs at least one worker")
        self.config = config if config is not None else Configuration()
        self.dimensions = (
            dimensions if dimensions is not None else DimensionSet()
        )
        self.registry = ModelRegistry()
        self.group_compression = group_compression
        self.workers = [
            WorkerNode(
                node_id,
                self.config,
                self.registry,
                storage_factory(node_id) if storage_factory else None,
            )
            for node_id in range(n_workers)
        ]
        self._tid_to_worker: dict[int, WorkerNode] = {}

    # ------------------------------------------------------------------
    # Partitioning and ingestion
    # ------------------------------------------------------------------
    def partition(self, series: Sequence[TimeSeries]) -> list[TimeSeriesGroup]:
        if not self.group_compression or not self.config.correlation:
            return singleton_groups(series)
        return group_from_config(
            series, self.config.correlation, self.dimensions
        )

    def assign(self, groups: Sequence[TimeSeriesGroup]) -> None:
        """Least-loaded assignment: biggest groups first, each to the
        worker with the most available resources (Section 3.1)."""
        ordered = sorted(
            groups,
            key=lambda group: sum(len(ts) for ts in group),
            reverse=True,
        )
        for group in ordered:
            worker = min(self.workers, key=lambda w: w.load)
            worker.assign(group, self.dimensions or None)
            for ts in group:
                self._tid_to_worker[ts.tid] = worker

    def ingest(self, series: Sequence[TimeSeries]) -> ClusterIngestReport:
        """Partition, assign and ingest; returns the timing report."""
        groups = self.partition(series)
        self.assign(groups)
        return self.ingest_assigned()

    def ingest_assigned(self) -> ClusterIngestReport:
        worker_seconds = []
        data_points = 0
        for worker in self.workers:
            if not worker.groups:
                worker_seconds.append(0.0)
                continue
            worker_seconds.append(worker.ingest_assigned())
            data_points += worker.stats.data_points
        return ClusterIngestReport(worker_seconds, data_points)

    # ------------------------------------------------------------------
    # Distributed queries
    # ------------------------------------------------------------------
    def sql(
        self, text: str, *, as_of: int | None = None
    ) -> tuple[list[dict], ClusterQueryReport]:
        """Execute a statement across the cluster.

        The master routes by Tid where the query names series, scatters,
        and merges worker partials; returns (rows, timing report).
        ``as_of`` bounds the read at a knowledge time on every worker.
        """
        return self.execute(apply_as_of(parse(text), as_of))

    def execute(self, query: Query) -> tuple[list[dict], ClusterQueryReport]:
        report = ClusterQueryReport()
        partials: list[PartialResult] = []
        rows: list[dict] = []
        for worker in self.workers:
            if not worker.groups:
                continue
            worker_query = self._route(query, worker)
            if worker_query is None:
                continue
            result, elapsed = worker.execute_partial(worker_query)
            report.worker_seconds.append(elapsed)
            if isinstance(result, PartialResult):
                partials.append(result)
            else:
                rows.extend(result)
        started = time.perf_counter()
        if partials:
            rows = merge_partial_results(partials)
        else:
            # Similarity keeps the global top-k, forecasts re-sort by
            # (Tid, TS): workers return rows in worker — not Tid —
            # order. A no-op for plain selections.
            rows = merge_analytics_rows(query, rows)
        report.merge_seconds = time.perf_counter() - started
        return rows, report

    def _route(self, query: Query, worker: WorkerNode) -> Query | None:
        """Restrict a query's Tid predicates to the worker's series.

        Returns None when the worker owns none of the requested series
        (the master prunes that worker from the scatter)."""
        return restrict_query_to_tids(query, worker.tids)

    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        return sum(worker.storage.size_bytes() for worker in self.workers)

    def segment_count(self) -> int:
        return sum(worker.storage.segment_count() for worker in self.workers)
