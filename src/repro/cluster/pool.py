"""Process-parallel cluster: one OS process per worker, real wall time.

This is the measured counterpart of :class:`~repro.cluster.ModelarCluster`
(which simulates parallelism by running workers sequentially in-process).
Every :class:`~repro.cluster.node.WorkerNode` runs in its own
``multiprocessing`` process with a private storage backend; the master
talks to it over a small message-passing RPC layer:

``assign``
    Ship whole time series groups (and the dimension set) to the worker.
``ingest``
    Ingest the groups assigned since the last ingest; reply with the
    worker's cumulative :class:`~repro.ingest.stats.IngestStats`.
``execute``
    Run a rewritten query locally; reply with a picklable
    :class:`~repro.query.engine.PartialResult` (aggregates) or rows.
``flush``
    Make local state durable; reply with (segment count, bytes).
``shutdown``
    Close the local store and exit.

The distribution properties are identical to the simulated substrate —
groups are assigned whole to the least-loaded worker and never move
afterwards (Section 3.1), queries are rewritten at the master, scattered
to owning workers only, and merged from partial results (Algorithm 5's
distributed structure) — so with the same inputs the process pool
returns *bit-identical* results to the simulated cluster, while its
reports carry measured wall-clock times (Fig. 20 becomes a measurement
instead of a model).

Fault tolerance rides on the same no-shuffle pinning invariant: because
a group's segments live only on its worker and the master retains the
raw groups, recovering from a worker failure is just re-assigning the
dead worker's groups to the least-loaded survivors, re-ingesting them
there, and re-asking the moved Tids. The master detects failures with
per-request timeouts (exponential backoff, duplicate-safe resends — all
request handlers are idempotent) and a process liveness check; faults
are injectable via :class:`~repro.cluster.faults.FaultPlan` so the
recovery path is testable deterministically.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import time
from pathlib import Path
from typing import Sequence

from ..core.config import Configuration
from ..core.dimensions import DimensionSet
from ..core.errors import (
    ClusterError,
    QueryError,
    WorkerFailure,
    WorkerRPCError,
)
from ..core.group import TimeSeriesGroup, singleton_groups
from ..core.timeseries import TimeSeries
from ..ingest.stats import IngestStats
from ..models.registry import ModelRegistry
from ..obs import MetricsRegistry, get_registry
from ..partitioner.grouping import group_from_config
from ..query.engine import PartialResult, merge_partial_results
from ..query.sql import Query, apply_as_of, parse
from ..storage.filestore import FileStorage
from ..storage.memory import MemoryStorage
from .cluster import (
    ClusterIngestReport,
    ClusterQueryReport,
    restrict_query_to_tids,
)
from .faults import FaultPlan
from .node import WorkerNode

#: Exit code used by an injected crash so it is recognisable in logs.
CRASH_EXIT_CODE = 70

#: How often the master re-checks worker liveness while waiting.
_POLL_SECONDS = 0.02


def _start_method() -> str:
    """Prefer fork (cheap, Linux) and fall back to spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _dispatch(node: WorkerNode, method: str, payload: object) -> object:
    if method == "assign":
        groups, dimensions = payload
        for group in groups:
            node.assign(group, dimensions)
        return sorted(group.gid for group in node.groups)
    if method == "ingest":
        node.ingest_assigned()
        return node.stats
    if method == "execute":
        result, _ = node.execute_partial(payload)
        return result
    if method == "load_segments":
        return node.load_segments(payload)
    if method == "flush":
        return node.flush()
    if method == "stats":
        return node.stats
    if method == "metrics":
        # The worker's whole registry as a picklable snapshot; the
        # master folds it into the cluster-wide view (histograms merge
        # by bucket counts, counters by addition).
        return get_registry().snapshot()
    if method == "ping":
        return "pong"
    if method == "shutdown":
        node.close()
        return "bye"
    raise QueryError(f"unknown RPC method {method!r}")


def _worker_main(
    worker_id: int,
    config: Configuration,
    storage_dir: str | None,
    requests: "mp.Queue",
    replies: "mp.Queue",
    fault_plan: FaultPlan | None,
) -> None:
    """Request loop of one worker process.

    Faults are executed here, in the worker, so the master's recovery
    machinery sees exactly what a real failure would produce.
    """
    registry = ModelRegistry()
    storage = FileStorage(storage_dir) if storage_dir else MemoryStorage()
    node = WorkerNode(worker_id, config, registry, storage)
    while True:
        try:
            seq, method, payload = requests.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        fault = fault_plan.take(worker_id, method) if fault_plan else None
        if fault is not None and fault.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        started = time.perf_counter()
        try:
            value = _dispatch(node, method, payload)
            ok = True
        except Exception as exc:  # broad-ok: ship errors as text, not pickles
            value = f"{type(exc).__name__}: {exc}"
            ok = False
        elapsed = time.perf_counter() - started
        if fault is not None and fault.kind == "slow":
            time.sleep(fault.delay)
        if fault is not None and fault.kind == "drop":
            continue  # the reply is "lost in the network"
        replies.put((seq, ok, value, elapsed))
        if method == "shutdown":
            break


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """Master-side bookkeeping and channel endpoints for one worker."""

    def __init__(
        self,
        worker_id: int,
        ctx,
        config: Configuration,
        storage_dir: str | None,
        fault_plan: FaultPlan | None,
    ) -> None:
        self.worker_id = worker_id
        self.requests = ctx.Queue()
        self.replies = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                config,
                storage_dir,
                self.requests,
                self.replies,
                fault_plan,
            ),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        self.seq = 0
        self.alive = True
        #: Groups this worker owns (master keeps the raw series so a
        #: dead worker's groups can be re-ingested on a survivor).
        self.groups: list[TimeSeriesGroup] = []
        #: Gids already shipped over the assign RPC.
        self.shipped_gids: set[int] = set()
        self.process.start()

    @property
    def load(self) -> int:
        return sum(len(ts) for group in self.groups for ts in group)

    @property
    def tids(self) -> set[int]:
        return {ts.tid for group in self.groups for ts in group}

    @property
    def gids(self) -> set[int]:
        return {group.gid for group in self.groups}


class ProcessCluster:
    """A master plus N workers, each in its own OS process.

    Parameters
    ----------
    n_workers:
        Number of worker processes to spawn.
    config / dimensions:
        Same roles as in :class:`~repro.cluster.ModelarCluster`.
    storage_root:
        When given, each worker opens a :class:`FileStorage` under
        ``storage_root/worker_<id>``; otherwise workers keep segments in
        process-local memory.
    fault_plan:
        Faults to inject, executed worker-side (see
        :mod:`repro.cluster.faults`).
    timeout / max_retries / backoff:
        Per-request reply timeout in seconds, how many times a request
        is re-sent to a live-but-silent worker, and the multiplier
        applied to the timeout between attempts (exponential backoff).
        A worker whose process died, or that stays silent through every
        retry, is failed over.
    """

    def __init__(
        self,
        n_workers: int,
        config: Configuration | None = None,
        dimensions: DimensionSet | None = None,
        storage_root: str | os.PathLike | None = None,
        fault_plan: FaultPlan | None = None,
        group_compression: bool = True,
        timeout: float = 10.0,
        max_retries: int = 3,
        backoff: float = 2.0,
        start_method: str | None = None,
    ) -> None:
        if n_workers < 1:
            raise QueryError("a cluster needs at least one worker")
        self.config = config if config is not None else Configuration()
        self.dimensions = (
            dimensions if dimensions is not None else DimensionSet()
        )
        self.group_compression = group_compression
        self._timeout = timeout
        self._max_retries = max_retries
        self._backoff = backoff
        self._ctx = mp.get_context(start_method or _start_method())
        self._closed = False
        self._tid_to_worker: dict[int, int] = {}
        self._stats: dict[int, IngestStats] = {}
        #: Completed failovers as (dead worker id, new owner id) pairs.
        self.failovers: list[tuple[int, int]] = []
        self._workers: dict[int, _WorkerHandle] = {}
        for worker_id in range(n_workers):
            storage_dir = None
            if storage_root is not None:
                storage_dir = str(Path(storage_root) / f"worker_{worker_id}")
            self._workers[worker_id] = _WorkerHandle(
                worker_id, self._ctx, self.config, storage_dir, fault_plan
            )

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # broad-ok: nothing to do in a GC finalizer
            pass

    def close(self) -> None:
        """Shut every worker down and reap the processes."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            if handle.alive and handle.process.is_alive():
                try:
                    self._post(handle, "shutdown", None)
                except Exception:  # pragma: no cover - queue already gone
                    pass
        for handle in self._workers.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            handle.alive = False
            for channel in (handle.requests, handle.replies):
                channel.close()
                channel.cancel_join_thread()

    # -- inspection ----------------------------------------------------
    @property
    def workers(self) -> list[_WorkerHandle]:
        """Live worker handles (mirrors ``ModelarCluster.workers`` so
        callers like the serving dispatcher treat both substrates
        uniformly: each handle exposes ``tids``/``gids``/``load``)."""
        return [h for h in self._workers.values() if h.alive]

    @property
    def live_worker_ids(self) -> list[int]:
        return [h.worker_id for h in self._workers.values() if h.alive]

    def assignment(self) -> dict[int, list[int]]:
        """Live worker id -> sorted Gids it currently owns."""
        return {
            h.worker_id: sorted(h.gids)
            for h in self._workers.values()
            if h.alive
        }

    def worker_of(self, tid: int) -> int:
        try:
            return self._tid_to_worker[tid]
        except KeyError:
            raise QueryError(f"no worker owns tid {tid}") from None

    @property
    def stats(self) -> IngestStats:
        """Cluster-wide ingestion statistics, merged across processes."""
        return IngestStats.merged(self._stats.values())

    def metrics(self) -> dict:
        """Cluster-wide metrics: the master's registry snapshot merged
        with every live worker's (counters add, histograms fold bucket
        counts). A worker that dies while being asked is skipped — its
        in-memory metrics died with it."""
        combined = MetricsRegistry()
        combined.merge_snapshot(get_registry().snapshot())
        pending = [
            (handle, self._post(handle, "metrics", None))
            for handle in self._live()
        ]
        for handle, seq in pending:
            try:
                snapshot, _ = self._await(handle, seq, "metrics", None)
                combined.merge_snapshot(snapshot)
            except WorkerFailure:
                continue
        return combined.snapshot()

    # -- partitioning and ingestion ------------------------------------
    def partition(self, series: Sequence[TimeSeries]) -> list[TimeSeriesGroup]:
        if not self.group_compression or not self.config.correlation:
            return singleton_groups(series)
        return group_from_config(
            series, self.config.correlation, self.dimensions
        )

    def assign(self, groups: Sequence[TimeSeriesGroup]) -> None:
        """Least-loaded assignment, identical to the simulated cluster:
        biggest groups first, each to the least-loaded live worker."""
        ordered = sorted(
            groups,
            key=lambda group: sum(len(ts) for ts in group),
            reverse=True,
        )
        for group in ordered:
            target = min(self._live(), key=lambda h: h.load)
            target.groups.append(group)
            for ts in group:
                self._tid_to_worker[ts.tid] = target.worker_id

    def ingest(self, series: Sequence[TimeSeries]) -> ClusterIngestReport:
        """Partition, assign and ingest in parallel; returns the report."""
        groups = self.partition(series)
        self.assign(groups)
        return self.ingest_assigned()

    def ingest_assigned(self) -> ClusterIngestReport:
        started = time.perf_counter()
        worker_seconds = self._sync_assignments(self._live())
        wall = time.perf_counter() - started
        data_points = sum(
            stats.data_points for stats in self._stats.values()
        )
        return ClusterIngestReport(
            worker_seconds, data_points, wall_seconds=wall
        )

    # -- distributed queries -------------------------------------------
    def sql(
        self, text: str, *, as_of: int | None = None
    ) -> tuple[list[dict], ClusterQueryReport]:
        """Execute a statement across the cluster (parse + execute)."""
        return self.execute(apply_as_of(parse(text), as_of))

    def execute(self, query: Query) -> tuple[list[dict], ClusterQueryReport]:
        """Scatter a rewritten query, gather partials, merge, survive
        worker failures by failing their groups over and re-asking."""
        wall_started = time.perf_counter()
        report = ClusterQueryReport()
        failover_mark = len(self.failovers)
        outputs: list[tuple[int, int, object]] = []  # (order, wid, result)
        order = 0
        tasks: list[tuple[_WorkerHandle, Query]] = []
        for handle in self._live():
            if not handle.groups:
                continue
            routed = restrict_query_to_tids(query, handle.tids)
            if routed is not None:
                tasks.append((handle, routed))
        while tasks:
            pending = [
                (handle, self._post(handle, "execute", routed), routed)
                for handle, routed in tasks
            ]
            # Drain every reply of the round before failing anyone over,
            # so recovery RPCs never race with in-flight execute replies.
            failures: list[tuple[_WorkerHandle, set[int]]] = []
            for handle, seq, routed in pending:
                try:
                    result, elapsed = self._await(
                        handle, seq, "execute", routed
                    )
                    outputs.append((order, handle.worker_id, result))
                    order += 1
                    report.worker_seconds.append(elapsed)
                except WorkerFailure:
                    # Capture the owned Tids now: failover (including a
                    # nested one triggered by another failure's
                    # recovery) moves the groups away.
                    failures.append((handle, set(handle.tids)))
            lost_tids: set[int] = set()
            for handle, owned_tids in failures:
                # Everything the dead worker owned — and may already
                # have answered for in an earlier round — must be
                # re-asked from its groups' new homes.
                lost_tids |= owned_tids
                outputs = [
                    entry
                    for entry in outputs
                    if entry[1] != handle.worker_id
                ]
                if handle.alive:
                    self._sync_assignments(self._failover(handle))
            tasks = []
            if lost_tids:
                for handle in self._live():
                    if not handle.groups:
                        continue
                    retry = restrict_query_to_tids(
                        query, lost_tids & handle.tids, force=True
                    )
                    if retry is not None:
                        tasks.append((handle, retry))
        merge_started = time.perf_counter()
        partials: list[PartialResult] = []
        rows: list[dict] = []
        for _, _, result in sorted(outputs, key=lambda entry: entry[0]):
            if isinstance(result, PartialResult):
                partials.append(result)
            else:
                rows.extend(result)
        if partials:
            rows = merge_partial_results(partials)
        now = time.perf_counter()
        report.merge_seconds = now - merge_started
        report.wall_seconds = now - wall_started
        report.failovers = self.failovers[failover_mark:]
        return rows, report

    # -- storage accounting --------------------------------------------
    def size_bytes(self) -> int:
        return sum(size for _, size in self._flush_all())

    def segment_count(self) -> int:
        return sum(count for count, _ in self._flush_all())

    def _flush_all(self) -> list[tuple[int, int]]:
        while True:
            try:
                pending = [
                    (handle, self._post(handle, "flush", None))
                    for handle in self._live()
                    if handle.groups
                ]
                results = []
                for handle, seq in pending:
                    value, _ = self._await(handle, seq, "flush", None)
                    results.append(tuple(value))
                return results
            except WorkerFailure as failure:
                self._sync_assignments(
                    self._failover(self._workers[failure.worker_id])
                )

    # -- RPC internals -------------------------------------------------
    def _live(self) -> list[_WorkerHandle]:
        live = [h for h in self._workers.values() if h.alive]
        if not live:
            raise ClusterError("no surviving workers in the cluster")
        return live

    def _post(self, handle: _WorkerHandle, method: str, payload) -> int:
        handle.seq += 1
        handle.requests.put((handle.seq, method, payload))
        get_registry().counter("cluster.rpc_total", method=method).inc()
        return handle.seq

    def _await(
        self, handle: _WorkerHandle, seq: int, method: str, payload
    ) -> tuple[object, float]:
        """Wait for the reply to one logical call.

        Retries with exponential backoff while the worker process is
        alive; every resend gets a fresh sequence number and any of them
        answers the call (late originals are not wasted). Replies whose
        sequence number belongs to an older, already-answered call are
        discarded — per-worker FIFO ordering makes that safe. Raises
        :class:`WorkerFailure` when the process died or stayed silent
        through every retry.
        """
        registry = get_registry()
        seqs = {seq}
        timeout = self._timeout
        for attempt in range(self._max_retries + 1):
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    registry.counter("cluster.rpc_timeouts_total").inc()
                    break
                try:
                    reply = handle.replies.get(
                        timeout=min(_POLL_SECONDS, remaining)
                    )
                except queue.Empty:
                    if not handle.process.is_alive():
                        raise WorkerFailure(
                            handle.worker_id,
                            f"process exited with code "
                            f"{handle.process.exitcode} during {method!r}",
                        ) from None
                    continue
                rseq, ok, value, elapsed = reply
                if rseq not in seqs:
                    continue  # duplicate reply of an earlier resend
                if not ok:
                    raise WorkerRPCError(
                        f"worker {handle.worker_id} failed {method!r}: "
                        f"{value}"
                    )
                registry.counter(
                    "cluster.worker_busy_seconds_total",
                    worker=str(handle.worker_id),
                ).inc(elapsed)
                return value, elapsed
            if not handle.process.is_alive():
                raise WorkerFailure(
                    handle.worker_id,
                    f"process exited with code {handle.process.exitcode} "
                    f"during {method!r}",
                )
            if attempt < self._max_retries:
                registry.counter("cluster.rpc_retries_total").inc()
                seqs.add(self._post(handle, method, payload))
                timeout *= self._backoff
        raise WorkerFailure(
            handle.worker_id,
            f"unresponsive to {method!r} after {self._max_retries} "
            "retries with exponential backoff",
        )

    # -- assignment shipping and failover ------------------------------
    def _sync_assignments(
        self, handles: Sequence[_WorkerHandle]
    ) -> list[float]:
        """Ship unshipped groups to ``handles`` and ingest them.

        Scatters the assign round and then the ingest round so workers
        ingest concurrently. A worker that dies here is failed over and
        its targets join the next iteration, so the call only returns
        once every live worker holds all groups it is responsible for.
        """
        worker_seconds: list[float] = []
        todo = [h for h in handles if h.alive and h.groups]
        while todo:
            failed: list[_WorkerHandle] = []
            assigned: list[_WorkerHandle] = []
            pending = []
            for handle in todo:
                unshipped = [
                    group
                    for group in handle.groups
                    if group.gid not in handle.shipped_gids
                ]
                payload = (unshipped, self.dimensions or None)
                pending.append(
                    (handle, self._post(handle, "assign", payload), payload)
                )
            for handle, seq, payload in pending:
                try:
                    self._await(handle, seq, "assign", payload)
                    handle.shipped_gids.update(g.gid for g in payload[0])
                    assigned.append(handle)
                except WorkerFailure:
                    failed.append(handle)
            pending = [
                (handle, self._post(handle, "ingest", None))
                for handle in assigned
            ]
            for handle, seq in pending:
                try:
                    stats, elapsed = self._await(handle, seq, "ingest", None)
                    self._stats[handle.worker_id] = stats
                    worker_seconds.append(elapsed)
                except WorkerFailure:
                    failed.append(handle)
            todo = []
            for handle in failed:
                for target in self._failover(handle):
                    if target not in todo:
                        todo.append(target)
        return worker_seconds

    def _failover(self, handle: _WorkerHandle) -> list[_WorkerHandle]:
        """Re-assign a dead worker's groups to the least-loaded
        survivors (master-side bookkeeping only — callers ship the data
        with :meth:`_sync_assignments`). Returns the affected targets.
        """
        handle.alive = False
        if handle.process.is_alive():  # unresponsive, not dead: fence it
            handle.process.terminate()
        registry = get_registry()
        registry.counter("cluster.worker_failures_total").inc()
        self._stats.pop(handle.worker_id, None)
        moved, handle.groups = handle.groups, []
        survivors = self._live()
        targets: list[_WorkerHandle] = []
        ordered = sorted(
            moved,
            key=lambda group: sum(len(ts) for ts in group),
            reverse=True,
        )
        for group in ordered:
            target = min(survivors, key=lambda h: h.load)
            target.groups.append(group)
            for ts in group:
                self._tid_to_worker[ts.tid] = target.worker_id
            if target not in targets:
                targets.append(target)
            self.failovers.append((handle.worker_id, target.worker_id))
            registry.counter("cluster.failovers_total").inc()
        return targets
