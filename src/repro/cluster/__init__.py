"""Master/worker cluster substrates (distribution without shuffling).

Two interchangeable substrates share the same partitioning, routing and
partial-result merging:

* :class:`ModelarCluster` — simulated: workers run sequentially in one
  process and reports *model* parallel wall time (``max`` over workers);
* :class:`ProcessCluster` — real: one OS process per worker with an RPC
  layer, measured wall-clock reports, and timeout/retry/failover when a
  worker crashes (faults injectable via :class:`FaultPlan`).
"""

from .cluster import (
    ClusterIngestReport,
    ClusterQueryReport,
    ModelarCluster,
    restrict_query_to_tids,
)
from .faults import Fault, FaultPlan
from .node import WorkerNode
from .pool import ProcessCluster

__all__ = [
    "ClusterIngestReport",
    "ClusterQueryReport",
    "Fault",
    "FaultPlan",
    "ModelarCluster",
    "ProcessCluster",
    "WorkerNode",
    "restrict_query_to_tids",
]
