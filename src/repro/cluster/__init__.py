"""Master/worker cluster substrate (distribution without shuffling)."""

from .cluster import ClusterIngestReport, ClusterQueryReport, ModelarCluster
from .node import WorkerNode

__all__ = [
    "ClusterIngestReport",
    "ClusterQueryReport",
    "ModelarCluster",
    "WorkerNode",
]
