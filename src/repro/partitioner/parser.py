"""Parser for ``modelardb.correlation`` clauses (Section 4.1).

Each configuration entry is one clause; primitives inside a clause are
separated by ``,`` and are ANDed, while separate entries are ORed. The
positional grammar follows the paper's examples:

=====================================  =====================================
Clause text                            Primitive
=====================================  =====================================
``Measure 1 Temperature``              member triple (dimension level member)
``Location 2``                         LCA pair (dimension lca-level)
``Production 0, Measure 1 X``          AND of the two primitives
``0.25``                               distance threshold
``0.25 Production 2.0``                distance with a dimension weight
``Measure 1 Temperature 4.75``         scaling 4-tuple (not a test)
``a.gz b.gz``                          explicit time series set
``a.gz*2.0 b.gz``                      ... with a per-series scaling
``auto``                               distance at the lowest-distance
                                       rule of thumb
=====================================  =====================================

Dimension names disambiguate the forms, so the parser needs the data
set's :class:`~repro.core.dimensions.DimensionSet`.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dimensions import DimensionSet
from ..core.errors import ConfigurationError
from .primitives import (
    Clause,
    CorrelationSpec,
    Distance,
    LCALevel,
    MemberEquality,
    MemberScaling,
    TimeSeriesSet,
    lowest_distance,
)


def parse_correlation(
    clauses: Sequence[str], dimensions: DimensionSet
) -> CorrelationSpec:
    """Parse all configured clauses into a :class:`CorrelationSpec`."""
    return CorrelationSpec(
        parse_clause(clause, dimensions) for clause in clauses
    )


def parse_clause(text: str, dimensions: DimensionSet) -> Clause:
    """Parse one comma-separated AND-clause."""
    primitives = []
    scalings = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        parsed = _parse_primitive(part, dimensions)
        if isinstance(parsed, MemberScaling):
            scalings.append(parsed)
        else:
            primitives.append(parsed)
    if not primitives and not scalings:
        raise ConfigurationError(f"empty correlation clause: {text!r}")
    return Clause(tuple(primitives), tuple(scalings))


def _parse_primitive(text: str, dimensions: DimensionSet):
    tokens = text.split()
    dimension_names = set(dimensions.names())

    if tokens[0] == "auto":
        if len(tokens) != 1:
            raise ConfigurationError(f"'auto' takes no arguments: {text!r}")
        return Distance(lowest_distance(dimensions))

    if tokens[0] in dimension_names:
        return _parse_dimension_primitive(tokens, text)

    if _is_float(tokens[0]):
        return _parse_distance(tokens, dimension_names, text)

    return _parse_series_set(tokens)


def _parse_dimension_primitive(tokens: list[str], text: str):
    dimension = tokens[0]
    if len(tokens) < 2 or not _is_int(tokens[1]):
        raise ConfigurationError(
            f"expected a level after dimension {dimension!r}: {text!r}"
        )
    level = int(tokens[1])
    if len(tokens) == 2:
        return LCALevel(dimension, level)
    if len(tokens) == 3:
        return MemberEquality(dimension, level, tokens[2])
    if len(tokens) == 4 and _is_float(tokens[3]):
        return MemberScaling(dimension, level, tokens[2], float(tokens[3]))
    raise ConfigurationError(f"malformed dimension primitive: {text!r}")


def _parse_distance(tokens: list[str], dimension_names: set[str], text: str):
    threshold = float(tokens[0])
    weights = {}
    rest = tokens[1:]
    if len(rest) % 2 != 0:
        raise ConfigurationError(
            f"distance weights must be (dimension, weight) pairs: {text!r}"
        )
    for name, weight in zip(rest[::2], rest[1::2]):
        if name not in dimension_names:
            raise ConfigurationError(
                f"unknown dimension {name!r} in distance weights: {text!r}"
            )
        if not _is_float(weight):
            raise ConfigurationError(
                f"weight for dimension {name!r} is not a number: {text!r}"
            )
        weights[name] = float(weight)
    return Distance(threshold, weights)


def _parse_series_set(tokens: list[str]) -> TimeSeriesSet:
    names = []
    scalings = {}
    for token in tokens:
        name, star, scale = token.partition("*")
        names.append(name)
        if star:
            if not _is_float(scale):
                raise ConfigurationError(
                    f"malformed per-series scaling: {token!r}"
                )
            scalings[name] = float(scale)
    return TimeSeriesSet(frozenset(names), scalings)


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


def _is_float(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
