"""Correlation primitives (Section 4.1).

Computing pairwise correlation from historical data is infeasible for
large fleets (50,000 series already yield ~1.25 × 10⁹ pairs), so the user
describes correlation with cheap metadata-only primitives instead:

* an explicit set of time series sources, optionally with per-series
  scaling constants — precise but only practical for few series;
* a (dimension, level, member) triple — series sharing that member are
  correlated;
* a (dimension, LCA level) pair — series whose lowest common ancestor in
  that dimension is at least that deep are correlated (0 means all levels
  must match, a negative ``-k`` means all but the ``k`` most detailed
  levels must match);
* a (dimension, level, member, scaling) 4-tuple assigning a scaling
  constant to every series with that member; and
* a distance threshold in ``[0, 1]`` over *all* dimensions with optional
  per-dimension weights (Algorithm 2) — for data sets with many series
  and many dimensions.

Primitives inside one clause combine with AND; clauses combine with OR.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.dimensions import DimensionSet
from ..core.errors import ConfigurationError
from ..core.timeseries import TimeSeries


@dataclass
class GroupingContext:
    """Everything a primitive may consult when comparing two groups."""

    dimensions: DimensionSet
    #: Tid -> source name, for the explicit time-series-set primitive.
    names: Mapping[int, str] = field(default_factory=dict)


class CorrelationPrimitive(ABC):
    """One user hint; decides whether two groups should be merged."""

    @abstractmethod
    def correlated(
        self,
        group_a: Sequence[int],
        group_b: Sequence[int],
        context: GroupingContext,
    ) -> bool:
        """Whether all series of both groups are correlated per this hint."""


@dataclass(frozen=True)
class TimeSeriesSet(CorrelationPrimitive):
    """An explicit set of correlated sources, e.g. two gzipped CSV files.

    ``scalings`` optionally maps a source name to the scaling constant to
    apply to that series before compression.
    """

    names: frozenset[str]
    scalings: Mapping[str, float] = field(default_factory=dict, hash=False)

    def correlated(self, group_a, group_b, context) -> bool:
        return all(
            context.names.get(tid) in self.names
            for tid in (*group_a, *group_b)
        )


@dataclass(frozen=True)
class MemberEquality(CorrelationPrimitive):
    """The (dimension, level, member) triple, e.g. ``Measure 1 Temperature``."""

    dimension: str
    level: int | str
    member: str

    def correlated(self, group_a, group_b, context) -> bool:
        dimension = context.dimensions[self.dimension]
        matching = dimension.tids_with_member(self.level, self.member)
        return all(tid in matching for tid in (*group_a, *group_b))


@dataclass(frozen=True)
class LCALevel(CorrelationPrimitive):
    """The (dimension, LCA level) pair, e.g. ``Location 2``.

    ``level >= 1`` requires the LCA to be at least that deep; ``0``
    requires all levels to be equal; ``-k`` requires all but the ``k``
    most detailed levels to be equal (Section 4.1).
    """

    dimension: str
    level: int

    def required_level(self, depth: int) -> int:
        if self.level > 0:
            return self.level
        if self.level == 0:
            return depth
        return max(depth + self.level, 0)  # self.level is negative

    def correlated(self, group_a, group_b, context) -> bool:
        dimension = context.dimensions[self.dimension]
        required = self.required_level(dimension.depth)
        return dimension.lca_level(group_a, group_b) >= required


@dataclass(frozen=True)
class MemberScaling:
    """The (dimension, level, member, scaling) 4-tuple.

    Not a correlation test: applied before grouping to set the scaling
    constant of every series with the given member.
    """

    dimension: str
    level: int | str
    member: str
    scaling: float

    def matching_tids(self, context: GroupingContext) -> set[int]:
        dimension = context.dimensions[self.dimension]
        return dimension.tids_with_member(self.level, self.member)


@dataclass(frozen=True)
class Distance(CorrelationPrimitive):
    """Distance-based correlation over all dimensions (Algorithm 2).

    The distance of one dimension is ``(height - lca) / height`` scaled by
    a user weight (default 1.0); the total is the weight-scaled sum
    normalised by the number of dimensions, clamped to ``[0, 1]``. Two
    groups are correlated when the total is at or below ``threshold``.
    """

    threshold: float
    weights: Mapping[str, float] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError(
                f"distance threshold must be in [0, 1], got {self.threshold}"
            )

    def distance(self, group_a, group_b, context: GroupingContext) -> float:
        dimensions = list(context.dimensions)
        if not dimensions:
            raise ConfigurationError(
                "distance-based correlation requires at least one dimension"
            )
        total = 0.0
        for dimension in dimensions:
            ancestor = dimension.lca_level(group_a, group_b)
            height = dimension.depth
            weight = self.weights.get(dimension.name, 1.0)
            total += weight * (height - ancestor) / height
        normalized = total / len(dimensions)
        return min(normalized, 1.0)

    def correlated(self, group_a, group_b, context) -> bool:
        return self.distance(group_a, group_b, context) <= self.threshold


@dataclass(frozen=True)
class Clause:
    """AND-combination of primitives (one ``modelardb.correlation`` entry)."""

    primitives: tuple[CorrelationPrimitive, ...]
    scalings: tuple[MemberScaling, ...] = ()

    def correlated(self, group_a, group_b, context) -> bool:
        return all(
            primitive.correlated(group_a, group_b, context)
            for primitive in self.primitives
        )


class CorrelationSpec:
    """OR-combination of clauses; the full user hint set."""

    def __init__(self, clauses: Iterable[Clause]) -> None:
        self.clauses = tuple(clauses)

    def correlated(self, group_a, group_b, context) -> bool:
        return any(
            clause.primitives
            and clause.correlated(group_a, group_b, context)
            for clause in self.clauses
        )

    def apply_scalings(
        self, series: Sequence[TimeSeries], context: GroupingContext
    ) -> None:
        """Set scaling constants from 4-tuples and explicit series sets."""
        for clause in self.clauses:
            for scaling in clause.scalings:
                matching = scaling.matching_tids(context)
                for ts in series:
                    if ts.tid in matching:
                        ts.scaling = scaling.scaling
            for primitive in clause.primitives:
                if isinstance(primitive, TimeSeriesSet):
                    for ts in series:
                        name = context.names.get(ts.tid)
                        if name in primitive.scalings:
                            ts.scaling = primitive.scalings[name]


def lowest_distance(dimensions: DimensionSet) -> float:
    """The rule-of-thumb starting distance of Section 4.1:
    ``(1 / max(levels)) / |dimensions|``."""
    depths = [dimension.depth for dimension in dimensions]
    if not depths:
        raise ConfigurationError("no dimensions defined")
    return (1.0 / max(depths)) / len(depths)
