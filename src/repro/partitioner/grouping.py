"""Grouping of correlated time series (Algorithm 1, Section 4.1).

Starting from one group per series, groups are merged until a fixpoint:
two groups merge when any configured clause declares them correlated.
Merging is transitive by construction — once two groups combine, later
comparisons treat their union as one candidate — which matches the
algorithm's iterate-until-no-change structure.
"""

from __future__ import annotations

from typing import Sequence

from ..core.dimensions import DimensionSet
from ..core.group import TimeSeriesGroup
from ..core.timeseries import TimeSeries
from .parser import parse_correlation
from .primitives import CorrelationSpec, GroupingContext


def group_time_series(
    series: Sequence[TimeSeries],
    spec: CorrelationSpec,
    dimensions: DimensionSet,
) -> list[TimeSeriesGroup]:
    """Partition time series into groups of correlated series.

    Implements Algorithm 1. Series that cannot share a group under
    Definition 8 (different SI or misaligned start) are never merged even
    when the user hints say they correlate, since one model cannot
    represent them at a shared sequence of timestamps.
    """
    context = GroupingContext(
        dimensions=dimensions,
        names={ts.tid: ts.name for ts in series},
    )
    spec.apply_scalings(series, context)

    by_tid = {ts.tid: ts for ts in series}
    groups: list[list[int]] = [[ts.tid] for ts in series]

    modified = True
    while modified:
        modified = False
        merged: list[list[int]] = []
        while groups:
            current = groups.pop()
            absorbed = []
            for other in groups:
                if not _compatible(current, other, by_tid):
                    continue
                if spec.correlated(current, other, context):
                    absorbed.append(other)
            for other in absorbed:
                groups.remove(other)
                current = current + other
                modified = True
            merged.append(sorted(current))
        groups = merged

    groups.sort(key=lambda tids: tids[0])
    return [
        TimeSeriesGroup(gid, [by_tid[tid] for tid in tids])
        for gid, tids in enumerate(groups, start=1)
    ]


def group_from_config(
    series: Sequence[TimeSeries],
    correlation_clauses: Sequence[str],
    dimensions: DimensionSet,
) -> list[TimeSeriesGroup]:
    """Parse clause strings and group (the configuration entry point)."""
    spec = parse_correlation(correlation_clauses, dimensions)
    return group_time_series(series, spec, dimensions)


def _compatible(
    group_a: Sequence[int],
    group_b: Sequence[int],
    by_tid: dict[int, TimeSeries],
) -> bool:
    """Definition 8 guard: same SI, aligned start timestamps."""
    first = by_tid[group_a[0]]
    second = by_tid[group_b[0]]
    if first.sampling_interval != second.sampling_interval:
        return False
    if len(first) == 0 or len(second) == 0:
        return True
    return first.alignment == second.alignment
