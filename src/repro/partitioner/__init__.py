"""Partitioning of correlated time series (Section 4)."""

from .grouping import group_from_config, group_time_series
from .parser import parse_clause, parse_correlation
from .primitives import (
    Clause,
    CorrelationPrimitive,
    CorrelationSpec,
    Distance,
    GroupingContext,
    LCALevel,
    MemberEquality,
    MemberScaling,
    TimeSeriesSet,
    lowest_distance,
)

__all__ = [
    "group_from_config",
    "group_time_series",
    "parse_clause",
    "parse_correlation",
    "Clause",
    "CorrelationPrimitive",
    "CorrelationSpec",
    "Distance",
    "GroupingContext",
    "LCALevel",
    "MemberEquality",
    "MemberScaling",
    "TimeSeriesSet",
    "lowest_distance",
]
