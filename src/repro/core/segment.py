"""Segments (Definition 9) and their per-series logical explosion.

A :class:`SegmentGroup` is the stored unit: a dynamically sized
sub-sequence of a *time series group* represented by one model within the
error bound. Gaps are represented with the paper's second method
(Section 3.2): a segment lists the Tids currently in a gap, so the model
always represents a static number of series, and a new segment is started
whenever the set of gap Tids changes (Fig. 5).

Segments are stored *disconnected* (the end time is inclusive and segments
do not share boundary points), which is why interval aggregation treats the
final interval inclusively (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .errors import ModelarError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..models.base import FittedModel

#: Fixed per-segment metadata overhead in bytes (Section 3.2 cites
#: 24 + sizeof(Model) for a segment row: 8B end time, 4B size, 4B gid,
#: 4B gap bitmask, 4B mid/length bookkeeping).
SEGMENT_OVERHEAD_BYTES = 24

#: Storage cost of a (Tid, ts, te) gap triple, for the Section 3.2
#: trade-off ablation (4B tid + 8B start + 8B end).
GAP_TRIPLE_BYTES = 20

#: Extra bytes a revised segment row carries on disk (4B revision +
#: 8B knowledge time). Base-generation rows pay nothing, keeping the
#: paper's 24 + sizeof(Model) accounting exact for append-only stores.
REVISION_EXTENSION_BYTES = 12


@dataclass(frozen=True)
class SegmentGroup:
    """One stored segment for a time series group.

    Attributes
    ----------
    gid:
        The group the segment belongs to.
    start_time / end_time:
        Inclusive bounds of the represented interval. On disk the start
        time is stored as the segment *size* and recomputed as
        ``end_time - (size - 1) * si`` (Section 3.3).
    sampling_interval:
        The group's SI (from the Time Series table; duplicated here so a
        segment is self-describing at runtime).
    mid:
        Model table id of the model type.
    parameters:
        The model's encoded parameters.
    gaps:
        Tids of the group currently in a gap and therefore *not*
        represented by this segment.
    group_tids:
        All Tids of the group in column order (metadata-cache information
        carried on the runtime object; not serialised per segment).
    revision:
        Segment generation. ``0`` is the base generation produced by
        in-order ingestion; corrections and late arrivals re-fit the
        affected window and emit superseding segments keyed by
        ``(gid, end_time, revision)`` with a strictly higher revision.
        A segment is shadowed by any same-gid segment of higher revision
        overlapping its time range.
    knowledge_time:
        The store's monotonically increasing knowledge-time counter
        value stamped when the revision was flushed; ``0`` means
        unstamped (base generation, known since the beginning). ``AS OF
        k`` queries see only revisions with ``knowledge_time <= k``.
    """

    gid: int
    start_time: int
    end_time: int
    sampling_interval: int
    mid: int
    parameters: bytes
    gaps: frozenset[int] = frozenset()
    group_tids: tuple[int, ...] = ()
    revision: int = 0
    knowledge_time: int = 0

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ModelarError(
                f"segment end {self.end_time} before start {self.start_time}"
            )
        if self.sampling_interval <= 0:
            raise ModelarError("segment sampling interval must be positive")
        if (self.end_time - self.start_time) % self.sampling_interval != 0:
            raise ModelarError(
                "segment interval is not a multiple of the sampling interval"
            )
        if not self.gaps <= set(self.group_tids):
            raise ModelarError("gap tids must be a subset of the group tids")
        if self.revision < 0 or self.knowledge_time < 0:
            raise ModelarError(
                "segment revision and knowledge time must be non-negative"
            )

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of data points per represented series."""
        return (self.end_time - self.start_time) // self.sampling_interval + 1

    @property
    def member_tids(self) -> tuple[int, ...]:
        """Tids actually represented (group minus gaps), in column order."""
        cached: tuple[int, ...] | None = self.__dict__.get("_member_tids")
        if cached is None:
            cached = tuple(
                tid for tid in self.group_tids if tid not in self.gaps
            )
            # The dataclass is frozen; cache via object.__setattr__.
            object.__setattr__(self, "_member_tids", cached)
        return cached

    @property
    def n_columns(self) -> int:
        return len(self.member_tids)

    def column_of(self, tid: int) -> int:
        """Model column index of ``tid`` within this segment."""
        try:
            return self.member_tids.index(tid)
        except ValueError:
            raise ModelarError(
                f"tid {tid} is not represented by this segment "
                f"(gaps={sorted(self.gaps)})"
            ) from None

    def gap_bitmask(self) -> int:
        """Gaps encoded as a bitmask over group column positions, as the
        Cassandra schema stores them (Section 3.3)."""
        mask = 0
        for position, tid in enumerate(self.group_tids):
            if tid in self.gaps:
                mask |= 1 << position
        return mask

    @staticmethod
    def gaps_from_bitmask(mask: int, group_tids: tuple[int, ...]) -> frozenset[int]:
        return frozenset(
            tid for position, tid in enumerate(group_tids) if mask >> position & 1
        )

    def timestamps(self) -> range:
        """The represented grid timestamps (start..end inclusive)."""
        return range(
            self.start_time, self.end_time + 1, self.sampling_interval
        )

    def index_of(self, timestamp: int) -> int:
        """Row index of a grid timestamp within the segment."""
        offset = timestamp - self.start_time
        if (
            offset < 0
            or offset % self.sampling_interval != 0
            or timestamp > self.end_time
        ):
            raise ModelarError(
                f"timestamp {timestamp} is outside segment "
                f"[{self.start_time}, {self.end_time}]"
            )
        return offset // self.sampling_interval

    def overlaps(self, start: int | None, end: int | None) -> bool:
        """Whether the segment intersects the closed interval [start, end]."""
        if start is not None and self.end_time < start:
            return False
        if end is not None and self.start_time > end:
            return False
        return True

    def storage_bytes(self) -> int:
        """Approximate on-disk footprint (overhead + model parameters).

        Revised rows additionally carry their revision/knowledge stamp
        (:data:`REVISION_EXTENSION_BYTES`)."""
        extension = (
            REVISION_EXTENSION_BYTES
            if self.revision or self.knowledge_time
            else 0
        )
        return SEGMENT_OVERHEAD_BYTES + extension + len(self.parameters)


@dataclass(frozen=True)
class SegmentRow:
    """A per-series logical segment: one row of the Segment View.

    Produced by exploding a :class:`SegmentGroup` over its member Tids
    during query processing (Section 6.1); never stored.
    """

    tid: int
    start_time: int
    end_time: int
    sampling_interval: int
    mid: int
    parameters: bytes
    column: int
    scaling: float = 1.0
    dimensions: dict[str, str] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return (self.end_time - self.start_time) // self.sampling_interval + 1


def explode(
    segment: SegmentGroup,
    scalings: dict[int, float] | None = None,
    dimension_rows: dict[int, dict[str, str]] | None = None,
    tids: set[int] | None = None,
) -> list[SegmentRow]:
    """Explode a stored group segment into Segment View rows.

    Parameters
    ----------
    segment:
        The stored segment group.
    scalings:
        Per-Tid scaling constants; aggregate results are divided by these
        during the iterate step (Section 6.1).
    dimension_rows:
        Optional denormalised dimension members per Tid, attached via the
        array-based hash join of Section 6.1.
    tids:
        When given, only rows for these Tids are produced (post-rewrite
        filtering: the store was queried by Gid, the query asked for Tids).
    """
    rows: list[SegmentRow] = []
    for column, tid in enumerate(segment.member_tids):
        if tids is not None and tid not in tids:
            continue
        rows.append(
            SegmentRow(
                tid=tid,
                start_time=segment.start_time,
                end_time=segment.end_time,
                sampling_interval=segment.sampling_interval,
                mid=segment.mid,
                parameters=segment.parameters,
                column=column,
                scaling=(scalings or {}).get(tid, 1.0),
                dimensions=(dimension_rows or {}).get(tid, {}),
            )
        )
    return rows
