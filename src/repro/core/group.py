"""Time series groups (Definition 8 of the paper).

A group is a set of regular time series (possibly with gaps) that share a
sampling interval and are aligned on it (``t1 mod SI`` equal for all
members). Groups are the unit of ingestion: the segment generator fits one
model to the values of all member series at each SI (Section 3.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .errors import GroupError
from .timeseries import TimeSeries


class TimeSeriesGroup:
    """A validated group of time series compressed together.

    Member series are kept sorted by Tid; that order defines the column
    order models use for the group's value vectors.
    """

    def __init__(self, gid: int, series: Iterable[TimeSeries]) -> None:
        members = sorted(series, key=lambda ts: ts.tid)
        if not members:
            raise GroupError("a time series group cannot be empty")
        tids = [ts.tid for ts in members]
        if len(set(tids)) != len(tids):
            raise GroupError(f"group {gid} has duplicate tids: {tids}")

        si = members[0].sampling_interval
        alignment = members[0].alignment if len(members[0]) else None
        for ts in members[1:]:
            if ts.sampling_interval != si:
                raise GroupError(
                    f"group {gid}: series {ts.tid} has SI "
                    f"{ts.sampling_interval}, expected {si} (Definition 8)"
                )
            if len(ts) and alignment is not None and ts.alignment != alignment:
                raise GroupError(
                    f"group {gid}: series {ts.tid} is misaligned "
                    f"({ts.alignment} mod SI != {alignment})"
                )

        self.gid = int(gid)
        self._series: tuple[TimeSeries, ...] = tuple(members)

    # ------------------------------------------------------------------
    @property
    def sampling_interval(self) -> int:
        return self._series[0].sampling_interval

    @property
    def tids(self) -> tuple[int, ...]:
        """Member Tids in column order."""
        return tuple(ts.tid for ts in self._series)

    @property
    def series(self) -> tuple[TimeSeries, ...]:
        return self._series

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[TimeSeries]:
        return iter(self._series)

    def __contains__(self, tid: int) -> bool:
        return any(ts.tid == tid for ts in self._series)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeSeriesGroup(gid={self.gid}, tids={list(self.tids)})"

    def get(self, tid: int) -> TimeSeries:
        for ts in self._series:
            if ts.tid == tid:
                return ts
        raise GroupError(f"group {self.gid} has no series with tid {tid}")

    def column_of(self, tid: int) -> int:
        """The model column index of a member series."""
        for column, ts in enumerate(self._series):
            if ts.tid == tid:
                return column
        raise GroupError(f"group {self.gid} has no series with tid {tid}")

    def scalings(self) -> dict[int, float]:
        """Per-Tid scaling constants (Fig. 6's Scaling column)."""
        return {ts.tid: ts.scaling for ts in self._series}


def singleton_groups(
    series: Sequence[TimeSeries], first_gid: int = 1
) -> list[TimeSeriesGroup]:
    """One group per series — the ``createSingleTimeSeriesGroups`` of
    Algorithm 1, and the configuration that makes the engine behave as
    ModelarDB v1 (multi-model compression without group compression)."""
    return [
        TimeSeriesGroup(first_gid + offset, [ts])
        for offset, ts in enumerate(series)
    ]
