"""Core time series substrate: Definitions 1-9 of the paper."""

from .config import (
    DEFAULT_BULK_WRITE_SIZE,
    DEFAULT_DYNAMIC_SPLIT_FRACTION,
    DEFAULT_MODEL_LENGTH_LIMIT,
    DEFAULT_MODELS,
    Configuration,
)
from .dimensions import TOP, Dimension, DimensionSet, build_dimension
from .errors import (
    ConfigurationError,
    DimensionError,
    GroupError,
    IngestionError,
    ModelarError,
    ModelError,
    QueryError,
    StorageError,
    TimeSeriesError,
    UnknownModelError,
    UnsupportedQueryError,
)
from .group import TimeSeriesGroup, singleton_groups
from .segment import (
    GAP_TRIPLE_BYTES,
    SEGMENT_OVERHEAD_BYTES,
    SegmentGroup,
    SegmentRow,
    explode,
)
from .timeseries import GAP, DataPoint, Gap, TimeSeries, from_data_points

__all__ = [
    "DEFAULT_BULK_WRITE_SIZE",
    "DEFAULT_DYNAMIC_SPLIT_FRACTION",
    "DEFAULT_MODEL_LENGTH_LIMIT",
    "DEFAULT_MODELS",
    "Configuration",
    "TOP",
    "Dimension",
    "DimensionSet",
    "build_dimension",
    "ConfigurationError",
    "DimensionError",
    "GroupError",
    "IngestionError",
    "ModelarError",
    "ModelError",
    "QueryError",
    "StorageError",
    "TimeSeriesError",
    "UnknownModelError",
    "UnsupportedQueryError",
    "TimeSeriesGroup",
    "singleton_groups",
    "GAP_TRIPLE_BYTES",
    "SEGMENT_OVERHEAD_BYTES",
    "SegmentGroup",
    "SegmentRow",
    "explode",
    "GAP",
    "DataPoint",
    "Gap",
    "TimeSeries",
    "from_data_points",
]
