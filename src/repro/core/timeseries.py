"""Time series primitives (Definitions 1-3, 5-6 of the paper).

A time series is a sequence of (timestamp, value) pairs ordered by time.
This module represents *regular time series, possibly with gaps*: the only
kind ModelarDB ingests (Section 2). Internally a series is a pair of numpy
arrays — int64 timestamps and float64 values — where a gap data point
(``v = ⊥`` in the paper) is stored as NaN. The public iteration API yields
``None`` for gap values so user code never has to reason about NaN.

Timestamps are integers in an arbitrary unit (the paper and our data sets
use milliseconds since an epoch).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, NamedTuple, Sequence

import numpy as np
import numpy.typing as npt

from .errors import TimeSeriesError

_IntArray = npt.NDArray[np.int64]
_FloatArray = npt.NDArray[np.float64]

#: Sentinel used in the public API for a gap value (``⊥`` in the paper).
GAP = None


class DataPoint(NamedTuple):
    """A single reading from one time series.

    ``value`` is ``None`` inside a gap (Definition 6).
    """

    tid: int
    timestamp: int
    value: float | None


class Gap(NamedTuple):
    """A gap ``G = (ts, te)`` between two data points (Definition 5).

    ``start`` is the timestamp of the last data point before the gap and
    ``end`` the timestamp of the first data point after it, so
    ``end - start = m * SI`` with ``m >= 2``.
    """

    start: int
    end: int


class TimeSeries:
    """A bounded regular time series, possibly with gaps.

    Parameters
    ----------
    tid:
        Unique time series id (assigned from 1 as in the paper's schema).
    sampling_interval:
        The SI of Definition 3, in timestamp units.
    timestamps / values:
        Parallel sequences. Timestamps must be strictly increasing and
        congruent modulo SI; missing intermediate timestamps are filled in
        as gaps. Values may contain ``None``/NaN for explicit gap points.
    scaling:
        The scaling constant from the Time Series table (Fig. 6). Applied
        by ingestion so correlated series with different magnitudes can be
        compressed together, and divided back out during query processing.
    name:
        Optional human-readable source name (e.g. the input file).
    """

    __slots__ = ("tid", "sampling_interval", "scaling", "name",
                 "_timestamps", "_values")

    def __init__(
        self,
        tid: int,
        sampling_interval: int,
        timestamps: Sequence[int] | _IntArray,
        values: Sequence[float | None] | _FloatArray,
        scaling: float = 1.0,
        name: str = "",
    ) -> None:
        if sampling_interval <= 0:
            raise TimeSeriesError(
                f"sampling interval must be positive, got {sampling_interval}"
            )
        if len(timestamps) != len(values):
            raise TimeSeriesError(
                f"timestamps ({len(timestamps)}) and values ({len(values)}) "
                "must have the same length"
            )
        if scaling == 0.0:
            raise TimeSeriesError("scaling constant must be non-zero")

        self.tid = int(tid)
        self.sampling_interval = int(sampling_interval)
        self.scaling = float(scaling)
        self.name = name

        ts = np.asarray(timestamps, dtype=np.int64)
        vs = np.array(
            [math.nan if v is None else float(v) for v in values]
            if not isinstance(values, np.ndarray)
            else values,
            dtype=np.float64,
        )
        self._timestamps, self._values = _regularize(ts, vs, self.sampling_interval)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> _IntArray:
        """Regularized int64 timestamps (read-only view)."""
        view = self._timestamps.view()
        view.flags.writeable = False
        return view

    @property
    def values(self) -> _FloatArray:
        """Regularized float64 values with NaN at gaps (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[DataPoint]:
        for ts, value in zip(self._timestamps, self._values):
            yield DataPoint(
                self.tid, int(ts), None if math.isnan(value) else float(value)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeries(tid={self.tid}, si={self.sampling_interval}, "
            f"n={len(self)}, gaps={self.gap_count()})"
        )

    @property
    def start_time(self) -> int:
        if len(self._timestamps) == 0:
            raise TimeSeriesError("empty time series has no start time")
        return int(self._timestamps[0])

    @property
    def end_time(self) -> int:
        if len(self._timestamps) == 0:
            raise TimeSeriesError("empty time series has no end time")
        return int(self._timestamps[-1])

    @property
    def alignment(self) -> int:
        """``t1 mod SI`` — the group-membership alignment of Definition 8."""
        return self.start_time % self.sampling_interval

    # ------------------------------------------------------------------
    # Gap inspection (Definitions 5-6)
    # ------------------------------------------------------------------
    def gap_count(self) -> int:
        """Number of gap data points (``⊥`` entries)."""
        return int(np.isnan(self._values).sum())

    def gaps(self) -> list[Gap]:
        """All gaps as (last-present, first-present-after) timestamp pairs."""
        is_gap = np.isnan(self._values)
        result: list[Gap] = []
        start_idx: int | None = None
        for i, missing in enumerate(is_gap):
            if missing and start_idx is None:
                start_idx = i
            elif not missing and start_idx is not None:
                result.append(
                    Gap(int(self._timestamps[start_idx - 1]),
                        int(self._timestamps[i]))
                )
                start_idx = None
        return result

    def value_at(self, timestamp: int) -> float | None:
        """The value recorded at ``timestamp`` (None in a gap).

        Raises
        ------
        TimeSeriesError
            If the timestamp is outside the series or misaligned.
        """
        if len(self) == 0:
            raise TimeSeriesError("empty time series")
        offset = timestamp - self.start_time
        if offset < 0 or offset % self.sampling_interval != 0:
            raise TimeSeriesError(
                f"timestamp {timestamp} is not on the series grid"
            )
        index = offset // self.sampling_interval
        if index >= len(self):
            raise TimeSeriesError(f"timestamp {timestamp} is after the series")
        value = self._values[index]
        return None if math.isnan(value) else float(value)

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    def bounded(self, start: int, end: int) -> "TimeSeries":
        """The bounded sub-series with ``start <= t <= end`` (Definition 1)."""
        mask = (self._timestamps >= start) & (self._timestamps <= end)
        return TimeSeries(
            self.tid,
            self.sampling_interval,
            self._timestamps[mask],
            self._values[mask],
            scaling=self.scaling,
            name=self.name,
        )

    def scaled_values(self) -> _FloatArray:
        """Values multiplied by the scaling constant (ingestion form)."""
        return self._values * self.scaling


def _regularize(
    timestamps: _IntArray, values: _FloatArray, si: int
) -> tuple[_IntArray, _FloatArray]:
    """Convert an irregular series with implicit gaps to regular-with-gaps.

    Validates strict time ordering and SI congruence, then materialises
    ``⊥`` (NaN) data points for every missing grid timestamp, turning e.g.
    ``(500, v), (1100, v')`` with SI=100 into five NaN points in between
    (the ``TSg`` → ``TSrg`` example of Section 2).
    """
    if len(timestamps) == 0:
        return timestamps, values

    deltas = np.diff(timestamps)
    if np.any(deltas <= 0):
        bad = int(np.argmax(deltas <= 0))
        raise TimeSeriesError(
            "timestamps must be strictly increasing "
            f"(violated at index {bad + 1})"
        )
    if np.any((timestamps - timestamps[0]) % si != 0):
        bad = int(np.argmax((timestamps - timestamps[0]) % si != 0))
        raise TimeSeriesError(
            f"timestamp {int(timestamps[bad])} is not congruent with the "
            f"first timestamp modulo SI={si}"
        )

    if np.all(deltas == si):
        return timestamps, values

    full = np.arange(timestamps[0], timestamps[-1] + si, si, dtype=np.int64)
    full_values = np.full(len(full), math.nan, dtype=np.float64)
    indices = (timestamps - timestamps[0]) // si
    full_values[indices] = values
    return full, full_values


def from_data_points(
    tid: int,
    sampling_interval: int,
    points: Iterable[tuple[int, float | None]],
    scaling: float = 1.0,
    name: str = "",
) -> TimeSeries:
    """Build a :class:`TimeSeries` from an iterable of (ts, value) pairs."""
    pts = list(points)
    return TimeSeries(
        tid,
        sampling_interval,
        [ts for ts, _ in pts],
        [v for _, v in pts],
        scaling=scaling,
        name=name,
    )
