"""Dimensions over time series (Definition 7 of the paper).

A dimension is a hierarchy of members describing every time series: e.g.
a wind-turbine *Location* dimension ``Turbine → Park → Region → Country → ⊤``.
Following Definition 7, the special top member ``⊤`` sits at level 0, level 1
is the coarsest named level (*Country* above) and level ``n`` the most
detailed one (*Turbine*), which is where time series attach.

The paper writes hierarchies most-detailed-first (``Turbine → Park → ...``),
so the constructor accepts level names in that order, while the numeric
``level`` API uses Definition 7's numbering (1 = coarsest).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .errors import DimensionError

#: The top member of every hierarchy (level 0).
TOP = "⊤"


class Dimension:
    """A named dimension with hierarchically organised members.

    Parameters
    ----------
    name:
        The dimension name, e.g. ``"Location"``.
    levels:
        Level names ordered from most detailed to least detailed, matching
        the paper's arrow notation: ``("Turbine", "Park", "Region",
        "Country")`` for ``Turbine → Park → Region → Country → ⊤``.
    """

    def __init__(self, name: str, levels: Sequence[str]) -> None:
        if not levels:
            raise DimensionError(f"dimension {name!r} needs at least one level")
        if len(set(levels)) != len(levels):
            raise DimensionError(f"dimension {name!r} has duplicate level names")
        self.name = name
        #: Level names indexed by Definition 7 level number; index 0 is ⊤.
        self.level_names: tuple[str, ...] = (TOP,) + tuple(reversed(levels))
        self._paths: dict[int, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """The number of named levels ``n`` (the hierarchy height)."""
        return len(self.level_names) - 1

    def level_number(self, level: int | str) -> int:
        """Resolve a level given by number (1..n) or by name."""
        if isinstance(level, str):
            try:
                return self.level_names.index(level)
            except ValueError:
                raise DimensionError(
                    f"dimension {self.name!r} has no level named {level!r}"
                ) from None
        if not 0 <= level <= self.depth:
            raise DimensionError(
                f"dimension {self.name!r} has levels 0..{self.depth}, "
                f"got {level}"
            )
        return level

    # ------------------------------------------------------------------
    # Member assignment and lookup
    # ------------------------------------------------------------------
    def assign(self, tid: int, members: Sequence[str]) -> None:
        """Attach a time series to the hierarchy.

        ``members`` is ordered most-detailed-first like the constructor's
        ``levels``: for the Location example, ``("9834", "Aalborg",
        "Nordjylland", "Denmark")``.
        """
        if len(members) != self.depth:
            raise DimensionError(
                f"dimension {self.name!r} expects {self.depth} members, "
                f"got {len(members)}"
            )
        # Store coarsest-first so path[k-1] is the member at level k.
        path = tuple(str(m) for m in reversed(members))
        existing = self._paths.get(tid)
        if existing is not None and existing != path:
            raise DimensionError(
                f"time series {tid} already assigned different members "
                f"in dimension {self.name!r}"
            )
        self._paths[tid] = path

    def member(self, tid: int, level: int | str) -> str:
        """The member of ``tid`` at the given level (``⊤`` for level 0).

        ``member(tid, n)`` is Definition 7's ``member(TS)``; shallower
        levels correspond to repeated applications of ``parent``.
        """
        k = self.level_number(level)
        if k == 0:
            return TOP
        path = self._path(tid)
        return path[k - 1]

    def parent(self, tid: int, level: int | str) -> str:
        """The parent member one level above (``parent(⊤) = ⊤``)."""
        k = self.level_number(level)
        return self.member(tid, max(k - 1, 0))

    def path(self, tid: int) -> tuple[str, ...]:
        """Members of ``tid`` from level 1 (coarsest) to level n (finest)."""
        return self._path(tid)

    def tids(self) -> list[int]:
        """All time series assigned to this dimension."""
        return sorted(self._paths)

    def tids_with_member(self, level: int | str, member: str) -> set[int]:
        """Time series whose member at ``level`` equals ``member``."""
        k = self.level_number(level)
        if k == 0:
            return set(self._paths)
        return {
            tid for tid, path in self._paths.items() if path[k - 1] == member
        }

    def members_at_level(self, level: int | str) -> set[str]:
        """Distinct members occurring at the given level."""
        k = self.level_number(level)
        if k == 0:
            return {TOP}
        return {path[k - 1] for path in self._paths.values()}

    def _path(self, tid: int) -> tuple[str, ...]:
        try:
            return self._paths[tid]
        except KeyError:
            raise DimensionError(
                f"time series {tid} is not assigned in dimension {self.name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Lowest common ancestor (Section 4.1, Figure 7)
    # ------------------------------------------------------------------
    def lca_level(self, tids_a: Iterable[int], tids_b: Iterable[int]) -> int:
        """The LCA level of two groups of time series.

        The lowest (deepest) level at which *all* time series of both
        groups have equivalent members starting from ``⊤``; 0 if they only
        share the top member. For Fig. 7's example, Tids 2 and 3 share
        Denmark (level 1), Nordjylland (level 2) and Aalborg (level 3) but
        not the turbine members, so the LCA level is 3.
        """
        paths = [self._path(tid) for tid in tids_a]
        paths += [self._path(tid) for tid in tids_b]
        if not paths:
            raise DimensionError("cannot compute LCA of empty groups")
        lca = 0
        for k in range(self.depth):
            members = {path[k] for path in paths}
            if len(members) != 1:
                break
            lca = k + 1
        return lca

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arrows = " → ".join(reversed(self.level_names[1:])) + " → ⊤"
        return f"Dimension({self.name!r}: {arrows}, tids={len(self._paths)})"


class DimensionSet:
    """All dimensions defined for a data set, with denormalised access.

    Provides the column view used by the Segment View and Data Point View
    (Section 6.1): one column per (dimension, level), named after the level
    (qualified with the dimension name when level names collide).
    """

    def __init__(self, dimensions: Sequence[Dimension] = ()) -> None:
        self._dimensions: dict[str, Dimension] = {}
        for dimension in dimensions:
            self.add(dimension)

    def add(self, dimension: Dimension) -> None:
        if dimension.name in self._dimensions:
            raise DimensionError(
                f"duplicate dimension name {dimension.name!r}"
            )
        self._dimensions[dimension.name] = dimension

    def __len__(self) -> int:
        return len(self._dimensions)

    def __iter__(self) -> Iterator[Dimension]:
        return iter(self._dimensions.values())

    def __getitem__(self, name: str) -> Dimension:
        try:
            return self._dimensions[name]
        except KeyError:
            raise DimensionError(f"unknown dimension {name!r}") from None

    def names(self) -> list[str]:
        return list(self._dimensions)

    # ------------------------------------------------------------------
    # Denormalised columns (for the views and the Time Series table)
    # ------------------------------------------------------------------
    def column_names(self) -> list[str]:
        """One column per (dimension, level), coarsest level first.

        A level name is used directly when unique across dimensions and
        qualified as ``Dimension.Level`` otherwise.
        """
        counts: dict[str, int] = {}
        for dimension in self:
            for level_name in dimension.level_names[1:]:
                counts[level_name] = counts.get(level_name, 0) + 1
        columns: list[str] = []
        for dimension in self:
            for level_name in dimension.level_names[1:]:
                if counts[level_name] > 1:
                    columns.append(f"{dimension.name}.{level_name}")
                else:
                    columns.append(level_name)
        return columns

    def row(self, tid: int) -> dict[str, str]:
        """The denormalised member row for one time series."""
        names = iter(self.column_names())
        row: dict[str, str] = {}
        for dimension in self:
            for member in dimension.path(tid):
                row[next(names)] = member
        return row

    def resolve_column(self, column: str) -> tuple[Dimension, int]:
        """Map a denormalised column name back to (dimension, level)."""
        if "." in column:
            dim_name, _, level_name = column.partition(".")
            dimension = self[dim_name]
            return dimension, dimension.level_number(level_name)
        matches = [
            (dimension, dimension.level_number(column))
            for dimension in self
            if column in dimension.level_names[1:]
        ]
        if not matches:
            raise DimensionError(f"unknown dimension column {column!r}")
        if len(matches) > 1:
            raise DimensionError(
                f"ambiguous dimension column {column!r}; qualify it as "
                "Dimension.Level"
            )
        return matches[0]

    def tids_with_member(self, column: str, member: str) -> set[int]:
        """Time series matching ``column = member`` (for query rewriting)."""
        dimension, level = self.resolve_column(column)
        return dimension.tids_with_member(level, member)

    def tids_with_any_member(self, member: str) -> set[int]:
        """Time series having ``member`` at any level of any dimension."""
        result: set[int] = set()
        for dimension in self:
            for level in range(1, dimension.depth + 1):
                result |= dimension.tids_with_member(level, member)
        return result


def build_dimension(
    name: str,
    levels: Sequence[str],
    assignments: Mapping[int, Sequence[str]],
) -> Dimension:
    """Convenience constructor: create a dimension and assign members."""
    dimension = Dimension(name, levels)
    for tid, members in assignments.items():
        dimension.assign(tid, members)
    return dimension
