"""System configuration.

Mirrors the ModelarDB configuration surface from the paper's Table 1:

========================  =======================================
Parameter                 Default (Table 1)
========================  =======================================
Model Error Bound         0% (evaluated at 0, 1, 5 and 10 %)
Model Length Limit        50
Dynamic Split Fraction    10
Bulk Write Size           50,000
========================  =======================================

plus the ``modelardb.correlation`` clauses of Section 4.1, which are kept
verbatim here and parsed by :mod:`repro.partitioner.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError

DEFAULT_MODEL_LENGTH_LIMIT = 50
DEFAULT_DYNAMIC_SPLIT_FRACTION = 10
DEFAULT_BULK_WRITE_SIZE = 50_000
DEFAULT_INGEST_CHUNK_SIZE = 1024

#: Classpath-style names of the models shipped with ModelarDB Core
#: (Section 3.1), in the order the segment generator tries them.
DEFAULT_MODELS = ("PMC", "Swing", "Gorilla")


@dataclass
class Configuration:
    """Validated runtime configuration for a ModelarDB instance.

    Parameters
    ----------
    error_bound:
        Maximum relative error in percent (uniform error norm). ``0.0``
        requests lossless compression: PMC/Swing then only fit exactly
        constant/linear stretches and Gorilla handles the rest.
    model_length_limit:
        Maximum number of data points (per series) a single model may
        represent; bounds segment length so queries stay selective.
    dynamic_split_fraction:
        A group is considered for splitting when a segment's compression
        ratio falls below ``average_ratio / dynamic_split_fraction``
        (Section 4.2). ``0`` disables dynamic splitting.
    bulk_write_size:
        Number of segments buffered before a bulk flush to the store.
    ingest_chunk_size:
        Ticks per columnar chunk on the batch ingestion path. Segments
        are bit-identical at any setting; ``1`` selects the scalar
        per-tick path (the batch baseline for ``bench_ingest``).
    columnar_read:
        Whether the query engine executes over (ticks × series) numpy
        blocks (the columnar read path) or row at a time. Results are
        bit-identical either way — the flag exists so every columnar
        result can be cross-checked against the row path (and as the
        row baseline for ``bench_query``).
    models:
        Ordered model classpaths tried during ingestion. Names must be
        resolvable via :mod:`repro.models.registry`.
    correlation:
        Raw ``modelardb.correlation`` clause strings (Section 4.1). Each
        clause ORs with the others; primitives inside a clause AND.
    """

    error_bound: float = 0.0
    model_length_limit: int = DEFAULT_MODEL_LENGTH_LIMIT
    dynamic_split_fraction: int = DEFAULT_DYNAMIC_SPLIT_FRACTION
    bulk_write_size: int = DEFAULT_BULK_WRITE_SIZE
    ingest_chunk_size: int = DEFAULT_INGEST_CHUNK_SIZE
    columnar_read: bool = True
    models: tuple[str, ...] = DEFAULT_MODELS
    correlation: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.error_bound < 0.0:
            raise ConfigurationError(
                f"error_bound must be >= 0, got {self.error_bound}"
            )
        if self.model_length_limit < 1:
            raise ConfigurationError(
                f"model_length_limit must be >= 1, got {self.model_length_limit}"
            )
        if self.dynamic_split_fraction < 0:
            raise ConfigurationError(
                "dynamic_split_fraction must be >= 0, got "
                f"{self.dynamic_split_fraction}"
            )
        if self.bulk_write_size < 1:
            raise ConfigurationError(
                f"bulk_write_size must be >= 1, got {self.bulk_write_size}"
            )
        if self.ingest_chunk_size < 1:
            raise ConfigurationError(
                f"ingest_chunk_size must be >= 1, got {self.ingest_chunk_size}"
            )
        if not self.models:
            raise ConfigurationError("at least one model must be configured")

    @property
    def splitting_enabled(self) -> bool:
        """Whether dynamic group splitting (Section 4.2) is active."""
        return self.dynamic_split_fraction > 0
