"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ModelarError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ModelarError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ModelarError):
    """A configuration value or correlation clause is invalid."""


class TimeSeriesError(ModelarError):
    """A time series violates a structural invariant (ordering, SI, ...)."""


class GroupError(ModelarError):
    """A time series group violates Definition 8 (SI or alignment)."""


class DimensionError(ModelarError):
    """A dimension violates Definition 7 or a member lookup failed."""


class ModelError(ModelarError):
    """A model was used incorrectly (e.g. parameters for an unfitted model)."""


class UnknownModelError(ModelError):
    """A model classpath was not found in the model registry."""


class StorageError(ModelarError):
    """The segment store rejected an operation or is corrupt."""


class QueryError(ModelarError):
    """A query is malformed or references unknown columns/functions."""


class UnsupportedQueryError(QueryError):
    """The target system cannot execute this class of query.

    Used by the baseline formats to reproduce capability gaps from the
    paper's evaluation, e.g. InfluxDB's missing calendar-based rollups
    (Figures 25-28) and missing distribution (Figure 19).
    """


class IngestionError(ModelarError):
    """Ingestion received data that cannot be appended to a group."""


class ClusterError(ModelarError):
    """The process-parallel cluster cannot make progress (e.g. every
    worker died and there is nowhere left to fail groups over to)."""


class WorkerFailure(ClusterError):
    """A worker process died or stopped responding; the master fails it
    over by re-assigning its groups to a surviving worker."""

    def __init__(self, worker_id: int, reason: str) -> None:
        super().__init__(f"worker {worker_id} failed: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class WorkerRPCError(ClusterError):
    """A worker replied with an application-level error."""
