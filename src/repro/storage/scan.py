"""The typed segment read request and revision visibility rules.

:class:`SegmentScan` replaces the positional/keyword filter signature
that ``Storage.segments(...)`` had grown: one frozen request object
carries every push-down predicate — the Gid partitions, the time
interval, the ``AS OF`` knowledge time, a columnar-consumer hint, and
the ``all_revisions`` escape hatch the sharded tier uses to ship whole
revision histories. It crosses the cluster RPC boundary unchanged
(pure ints/tuples, registered with reprolint's RPR004 rule), so the
engine, the columnar reader, the shard tier and the baselines adapter
all speak the same request type.

:func:`resolve_visible` is the single implementation of latest-wins
revision resolution shared by every backend: a segment is shadowed iff
some same-gid segment of *strictly higher* revision (restricted to
``knowledge_time <= as_of`` when an ``AS OF`` bound is given) overlaps
its time range. Base-generation segments (revision 0) are known since
the beginning and are never hidden by an ``AS OF`` bound itself — only
by visible superseding revisions. Survivors keep their append order,
which is what makes a zero-revision store's scan bit-identical to the
pre-revision code path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..core.segment import SegmentGroup


@dataclass(frozen=True)
class SegmentScan:
    """One segment-store read request (predicate push-down, Fig. 4).

    Attributes
    ----------
    gids:
        Partitions to scan; ``None`` scans every partition.
    start_time / end_time:
        Closed time interval; only overlapping segments are returned.
    as_of:
        Knowledge-time bound: only revisions stamped at or before this
        counter value are considered when resolving latest-wins.
        ``None`` reads the latest-known state.
    columnar:
        Hint that the consumer decodes blocks columnar-wise; backends
        may use it to batch reads. Never changes which segments match.
    all_revisions:
        Bypass latest-wins resolution and return every stored revision
        (the sharded tier ships whole histories with this).
    """

    gids: tuple[int, ...] | None = None
    start_time: int | None = None
    end_time: int | None = None
    as_of: int | None = None
    columnar: bool | None = None
    all_revisions: bool = False

    def __post_init__(self) -> None:
        if self.gids is not None and not isinstance(self.gids, tuple):
            object.__setattr__(self, "gids", tuple(self.gids))

    def partitions(self, known: Iterable[int]) -> list[int]:
        """The sorted partition list this request scans."""
        if self.gids is None:
            return sorted(known)
        return sorted(set(self.gids))


def visible_at(segment: SegmentGroup, as_of: int | None) -> bool:
    """Whether a segment's revision was known at ``as_of``.

    Base-generation segments are always known; stamped revisions only
    from their knowledge time onward.
    """
    if segment.revision == 0:
        return True
    return as_of is None or segment.knowledge_time <= as_of


def resolve_visible(
    partition: Sequence[SegmentGroup], as_of: int | None = None
) -> Sequence[SegmentGroup]:
    """Latest-wins resolution over one Gid partition, in append order.

    Filters to revisions known at ``as_of``, then drops every segment
    overlapped by a strictly-higher-revision survivor candidate. The
    rule is monotone in revision: a base segment stays hidden by a
    stored revision 1 even after revision 2 shadows revision 1, because
    shadowing only requires *some* higher revision to overlap.

    Zero-revision partitions take a fast path returning the input
    sequence unchanged (same objects, same order) — the bit-identity
    guarantee for append-only stores.
    """
    if all(segment.revision == 0 for segment in partition):
        return partition
    visible = [
        segment for segment in partition if visible_at(segment, as_of)
    ]
    return [
        segment
        for segment in visible
        if not any(
            other.revision > segment.revision
            and other.overlaps(segment.start_time, segment.end_time)
            for other in visible
        )
    ]


def stamp_revisions(
    segments: Sequence[SegmentGroup], counter: int
) -> tuple[list[SegmentGroup], int]:
    """Stamp unstamped revisions with the next knowledge tick.

    Called by ``Storage.insert_segments``: the per-store knowledge
    counter advances one tick per flush, and every revision segment
    that is not yet stamped (``knowledge_time == 0``) receives the new
    tick. Already-stamped segments are preserved verbatim — the sharded
    tier ships stored revisions to workers through ``insert_segments``
    and their original stamps must survive so ``AS OF`` answers match
    the embedded engine — and the counter advances past any preserved
    stamp to stay monotone.

    Returns the (possibly re-stamped) segments and the new counter.
    """
    if not segments:
        return list(segments), counter
    counter += 1
    stamped: list[SegmentGroup] = []
    for segment in segments:
        if segment.revision and not segment.knowledge_time:
            segment = replace(segment, knowledge_time=counter)
        elif segment.knowledge_time > counter:
            counter = segment.knowledge_time
        stamped.append(segment)
    return stamped, counter
