"""Persistent log-structured segment store (the Cassandra substitute).

Reproduces the storage properties the paper relies on:

* segments are partitioned by Gid — one append-only log per group — so a
  Gid predicate prunes whole partitions (the primary-key layout
  ``(Gid, EndTime, Gaps)`` of Section 3.3);
* rows carry the paper's 24-byte header with StartTime stored as the
  segment size (see :mod:`repro.storage.serialization`);
* metadata (Time Series and Model tables) lives in a small JSON sidecar,
  loaded into the in-memory metadata cache on open.

Within a partition, segments are appended in ingestion order, which for
streaming ingestion means non-decreasing end time — time-interval
predicates are still evaluated per row, as Cassandra would with a
clustering-key slice.

The store is crash-safe to re-open: a worker process killed mid-append
may leave a torn trailing row in one partition file and stale counts in
the metadata sidecar. On open, per-partition counts are reconciled
against the actual files and a torn tail is truncated away, so a
replacement worker (or the master inspecting a dead worker's directory)
always sees a consistent prefix of the ingested segments.
"""

from __future__ import annotations

import json
import os
import struct
import time
from pathlib import Path
from typing import Iterable, Iterator, Mapping

from ..core.errors import StorageError
from ..core.segment import REVISION_EXTENSION_BYTES, SegmentGroup
from ..obs import get_registry
from .interface import Storage
from .scan import SegmentScan, resolve_visible, stamp_revisions
from .schema import TimeSeriesRecord
from .serialization import HEADER_BYTES, decode_segment, encode_segment

_METADATA_FILE = "metadata.json"
_PARTITION_PREFIX = "segments_gid_"
_PARTITION_SUFFIX = ".bin"

#: Offsets of the 1-byte Flags and 2-byte ParamLen fields inside the
#: 24-byte row header (Gid 4 + EndTime 8 + Size 4 + Mid 1;
#: see serialization.py). Flags bit 0 marks rows carrying the 12-byte
#: revision extension between header and parameters.
_FLAGS_OFFSET = 17
_PARAM_LEN_OFFSET = 18
_PARAM_LEN = struct.Struct("<H")
_KNOWLEDGE = struct.Struct("<Q")


def _valid_prefix(data: bytes) -> tuple[int, int, int]:
    """(row count, byte length, max knowledge) of the valid row prefix.

    Walks row headers only — a torn trailing row (crash mid-append) is
    excluded from both counts so it can be truncated away on re-open.
    The highest knowledge stamp seen lets recovery restore the store's
    knowledge counter when the metadata sidecar is stale.
    """
    offset = 0
    count = 0
    knowledge = 0
    while offset + HEADER_BYTES <= len(data):
        flags = data[offset + _FLAGS_OFFSET]
        (param_len,) = _PARAM_LEN.unpack_from(data, offset + _PARAM_LEN_OFFSET)
        row_bytes = HEADER_BYTES + param_len
        if flags & 0x01:
            row_bytes += REVISION_EXTENSION_BYTES
        end = offset + row_bytes
        if end > len(data):
            break
        if flags & 0x01:
            (stamp,) = _KNOWLEDGE.unpack_from(data, offset + HEADER_BYTES + 4)
            knowledge = max(knowledge, stamp)
        offset = end
        count += 1
    return count, offset, knowledge


class FileStorage(Storage):
    """Durable segment store rooted at a directory."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self._root = Path(directory)
        self._root.mkdir(parents=True, exist_ok=True)
        self._closed = False
        self._time_series: dict[int, TimeSeriesRecord] = {}
        self._models: dict[int, str] = {}
        self._groups: dict[int, tuple[tuple[int, ...], int]] = {}
        self._counts: dict[int, int] = {}
        self._knowledge = 0
        self._load_metadata()
        self._recover_partitions()

    # ------------------------------------------------------------------
    # Metadata tables
    # ------------------------------------------------------------------
    def insert_time_series(self, records: Iterable[TimeSeriesRecord]) -> None:
        self._ensure_open()
        for record in records:
            self._time_series[record.tid] = record
        self._rebuild_group_cache()
        self._save_metadata()

    def time_series(self) -> list[TimeSeriesRecord]:
        return [self._time_series[tid] for tid in sorted(self._time_series)]

    def insert_model_table(self, models: Mapping[int, str]) -> None:
        self._ensure_open()
        self._models.update(models)
        self._save_metadata()

    def model_table(self) -> dict[int, str]:
        return dict(self._models)

    # ------------------------------------------------------------------
    # Segment table
    # ------------------------------------------------------------------
    def insert_segments(self, segments: Iterable[SegmentGroup]) -> None:
        self._ensure_open()
        started = time.perf_counter()
        stamped, self._knowledge = stamp_revisions(
            list(segments), self._knowledge
        )
        by_gid: dict[int, list[bytes]] = {}
        counts: dict[int, int] = {}
        written_segments = 0
        written_bytes = 0
        for segment in stamped:
            if segment.gid not in self._groups:
                raise StorageError(
                    f"segment references unknown group {segment.gid}; insert "
                    "the Time Series table rows first"
                )
            encoded = encode_segment(segment)
            by_gid.setdefault(segment.gid, []).append(encoded)
            counts[segment.gid] = counts.get(segment.gid, 0) + 1
            written_segments += 1
            written_bytes += len(encoded)
        for gid, rows in by_gid.items():
            with open(self._partition_path(gid), "ab") as handle:
                handle.write(b"".join(rows))
            self._counts[gid] = self._counts.get(gid, 0) + counts[gid]
        self._save_metadata()
        registry = get_registry()
        registry.counter("storage.segments_written_total").inc(
            written_segments
        )
        registry.counter("storage.bytes_written_total").inc(written_bytes)
        registry.histogram("storage.write_seconds").record(
            time.perf_counter() - started
        )

    def scan(self, request: SegmentScan) -> Iterator[SegmentGroup]:
        for gid in request.partitions(self._groups):
            yield from self._scan_partition(gid, request)

    def segment_count(self) -> int:
        return sum(self._counts.values())

    def knowledge_time(self) -> int:
        return self._knowledge

    def size_bytes(self) -> int:
        total = 0
        for path in self._root.glob(f"{_PARTITION_PREFIX}*{_PARTITION_SUFFIX}"):
            total += path.stat().st_size
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist the metadata sidecar (segment files are write-through)."""
        self._ensure_open()
        self._save_metadata()

    def close(self) -> None:
        """Flush and mark the store closed; further writes raise."""
        if self._closed:
            return
        self._save_metadata()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError(f"storage at {self._root} is closed")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _scan_partition(
        self, gid: int, request: SegmentScan
    ) -> Iterator[SegmentGroup]:
        metadata = self._groups.get(gid)
        if metadata is None:
            return
        group_tids, sampling_interval = metadata
        path = self._partition_path(gid)
        if not path.exists():
            return
        started = time.perf_counter()
        data = path.read_bytes()
        registry = get_registry()
        registry.counter("storage.bytes_read_total").inc(len(data))
        partition: list[SegmentGroup] = []
        offset = 0
        while offset + HEADER_BYTES <= len(data):
            segment, offset = decode_segment(
                data, offset, sampling_interval, group_tids
            )
            partition.append(segment)
        registry.counter("storage.segments_read_total").inc(len(partition))
        registry.histogram("storage.read_seconds").record(
            time.perf_counter() - started
        )
        survivors: Iterable[SegmentGroup] = (
            partition
            if request.all_revisions
            else resolve_visible(partition, request.as_of)
        )
        for segment in survivors:
            if segment.overlaps(request.start_time, request.end_time):
                yield segment

    def _partition_path(self, gid: int) -> Path:
        return self._root / f"{_PARTITION_PREFIX}{gid}{_PARTITION_SUFFIX}"

    def _rebuild_group_cache(self) -> None:
        self._groups = self.group_metadata()

    def _metadata_path(self) -> Path:
        return self._root / _METADATA_FILE

    def _save_metadata(self) -> None:
        payload = {
            "time_series": [
                {
                    "tid": record.tid,
                    "si": record.sampling_interval,
                    "gid": record.gid,
                    "scaling": record.scaling,
                    "name": record.name,
                    "dimensions": record.dimensions,
                }
                for record in self.time_series()
            ],
            "models": {str(mid): name for mid, name in self._models.items()},
            "counts": {str(gid): count for gid, count in self._counts.items()},
            "knowledge": self._knowledge,
        }
        self._metadata_path().write_text(json.dumps(payload))

    def _load_metadata(self) -> None:
        path = self._metadata_path()
        if not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(f"corrupt metadata file: {exc}") from exc
        for row in payload.get("time_series", []):
            record = TimeSeriesRecord(
                tid=row["tid"],
                sampling_interval=row["si"],
                gid=row["gid"],
                scaling=row.get("scaling", 1.0),
                name=row.get("name", ""),
                dimensions=row.get("dimensions", {}),
            )
            self._time_series[record.tid] = record
        self._models = {
            int(mid): name for mid, name in payload.get("models", {}).items()
        }
        self._counts = {
            int(gid): count for gid, count in payload.get("counts", {}).items()
        }
        self._knowledge = int(payload.get("knowledge", 0))
        self._rebuild_group_cache()

    def _recover_partitions(self) -> None:
        """Reconcile counts with the partition files after a crash.

        A process killed between a segment append and the metadata save
        leaves the sidecar counts stale; one killed mid-append leaves a
        torn trailing row. Recount every partition from its file and
        truncate torn tails so scans never hit a truncated row.
        """
        recovered: dict[int, int] = {}
        dirty = False
        max_knowledge = 0
        for path in sorted(
            self._root.glob(f"{_PARTITION_PREFIX}*{_PARTITION_SUFFIX}")
        ):
            stem = path.name[len(_PARTITION_PREFIX):-len(_PARTITION_SUFFIX)]
            try:
                gid = int(stem)
            except ValueError:
                continue
            data = path.read_bytes()
            count, valid_bytes, knowledge = _valid_prefix(data)
            max_knowledge = max(max_knowledge, knowledge)
            if valid_bytes < len(data):
                with open(path, "r+b") as handle:
                    handle.truncate(valid_bytes)
                dirty = True
            if count:
                recovered[gid] = count
        if recovered != self._counts:
            dirty = True
        self._counts = recovered
        if max_knowledge > self._knowledge:
            # Crash between a revision append and the sidecar save: the
            # stamps on disk are ahead of the saved counter.
            self._knowledge = max_knowledge
            dirty = True
        if dirty:
            self._save_metadata()
