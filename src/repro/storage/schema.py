"""The storage schema of Fig. 6.

Three tables support MMGC:

* **Time Series** — per-Tid metadata: the only required field is the
  sampling interval; Gid records the group the partitioner assigned,
  Scaling the ingest/query scaling constant, and the user-defined
  dimensions are stored denormalised alongside.
* **Model** — Mid to model classpath, so stored segments can be decoded
  by any node (and by user-defined models loaded via the registry).
* **Segment** — the fact table: one row per emitted segment group.

Segment rows are represented by :class:`~repro.core.segment.SegmentGroup`;
this module defines the two metadata record types.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.dimensions import DimensionSet
from ..core.group import TimeSeriesGroup


@dataclass(frozen=True)
class TimeSeriesRecord:
    """One row of the Time Series table."""

    tid: int
    sampling_interval: int
    gid: int
    scaling: float = 1.0
    name: str = ""
    #: Denormalised dimension members, column name -> member.
    dimensions: dict[str, str] = field(default_factory=dict)


def records_for_groups(
    groups: list[TimeSeriesGroup],
    dimensions: DimensionSet | None = None,
) -> list[TimeSeriesRecord]:
    """Build Time Series table rows for partitioned groups."""
    records = []
    for group in groups:
        for ts in group:
            row = dimensions.row(ts.tid) if dimensions is not None else {}
            records.append(
                TimeSeriesRecord(
                    tid=ts.tid,
                    sampling_interval=ts.sampling_interval,
                    gid=group.gid,
                    scaling=ts.scaling,
                    name=ts.name,
                    dimensions=row,
                )
            )
    records.sort(key=lambda record: record.tid)
    return records
