"""Segment storage: the three tables of Fig. 6 behind a uniform interface."""

from .filestore import FileStorage
from .interface import Storage
from .memory import MemoryStorage
from .scan import SegmentScan, resolve_visible, stamp_revisions, visible_at
from .schema import TimeSeriesRecord, records_for_groups
from .serialization import (
    HEADER_BYTES,
    decode_segment,
    encode_segment,
    encoded_size,
)

__all__ = [
    "FileStorage",
    "Storage",
    "MemoryStorage",
    "SegmentScan",
    "resolve_visible",
    "stamp_revisions",
    "visible_at",
    "TimeSeriesRecord",
    "records_for_groups",
    "HEADER_BYTES",
    "decode_segment",
    "encode_segment",
    "encoded_size",
]
