"""In-memory segment store.

Used by tests, as the main-memory segment cache tier of the architecture
(Fig. 4), and wherever persistence is not needed. Sizes are accounted with
the same binary codec as the file store so storage experiments can run
against either backend.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..core.segment import SegmentGroup
from ..obs import get_registry
from .interface import Storage
from .scan import SegmentScan, resolve_visible, stamp_revisions
from .schema import TimeSeriesRecord
from .serialization import encoded_size


class MemoryStorage(Storage):
    """Segment store keeping everything in process memory."""

    def __init__(self) -> None:
        self._time_series: dict[int, TimeSeriesRecord] = {}
        self._models: dict[int, str] = {}
        self._segments: dict[int, list[SegmentGroup]] = {}
        self._bytes = 0
        self._count = 0
        self._knowledge = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        self._closed = True

    def insert_time_series(self, records: Iterable[TimeSeriesRecord]) -> None:
        for record in records:
            self._time_series[record.tid] = record

    def time_series(self) -> list[TimeSeriesRecord]:
        return [self._time_series[tid] for tid in sorted(self._time_series)]

    def insert_model_table(self, models: Mapping[int, str]) -> None:
        self._models.update(models)

    def model_table(self) -> dict[int, str]:
        return dict(self._models)

    def insert_segments(self, segments: Iterable[SegmentGroup]) -> None:
        stamped, self._knowledge = stamp_revisions(
            list(segments), self._knowledge
        )
        written_segments = 0
        written_bytes = 0
        for segment in stamped:
            self._segments.setdefault(segment.gid, []).append(segment)
            size = encoded_size(segment)
            self._bytes += size
            self._count += 1
            written_segments += 1
            written_bytes += size
        registry = get_registry()
        registry.counter("storage.segments_written_total").inc(
            written_segments
        )
        registry.counter("storage.bytes_written_total").inc(written_bytes)

    def scan(self, request: SegmentScan) -> Iterator[SegmentGroup]:
        for gid in request.partitions(self._segments):
            partition: Iterable[SegmentGroup] = self._segments.get(gid, ())
            if not request.all_revisions:
                partition = resolve_visible(list(partition), request.as_of)
            for segment in partition:
                if segment.overlaps(request.start_time, request.end_time):
                    yield segment

    def segment_count(self) -> int:
        return self._count

    def size_bytes(self) -> int:
        return self._bytes

    def knowledge_time(self) -> int:
        return self._knowledge
