"""Binary segment codec (Section 3.3's Cassandra schema adaptations).

Each segment row is stored as a fixed 24-byte header followed by the
model parameters:

========  =====  =====================================================
Field     Bytes  Notes
========  =====  =====================================================
Gid       4      partition key
EndTime   8      clustering key
Size      4      data points per series; StartTime is *not* stored and
                 is recomputed as ``EndTime - (Size - 1) * SI``
Mid       1      model table id
Flags     1      bit 0: row carries a revision extension (below);
                 remaining bits reserved (zero)
ParamLen  2      length of the model parameters
GapMask   4      one bit per group column, set when that Tid is absent
========  =====  =====================================================

The 24-byte header matches the paper's stated per-segment overhead of
``24 + sizeof(Model)`` bytes, so byte counts reported by the storage
experiments follow the paper's accounting.

Revised segments (late arrivals / corrections, Section "revisions" of
docs/ARCHITECTURE.md) additionally carry a 12-byte extension between
the header and the parameters, gated by Flags bit 0:

========  =====  =====================================================
Revision  4      segment generation (> 0 for superseding re-fits)
Knowledge 8      store knowledge-time counter stamped at flush
========  =====  =====================================================

Base-generation rows (revision 0, unstamped) never write the extension,
so an append-only store's files are byte-identical to the pre-revision
format and old files decode unchanged (flags byte was always zero).
"""

from __future__ import annotations

import struct

from ..core.errors import StorageError
from ..core.segment import REVISION_EXTENSION_BYTES, SegmentGroup

_HEADER = struct.Struct("<IqIBBHI")
HEADER_BYTES = _HEADER.size

assert HEADER_BYTES == 24, "header must match SEGMENT_OVERHEAD_BYTES"

#: Flags bit marking a row that carries the revision extension.
_FLAG_REVISED = 0x01

_EXTENSION = struct.Struct("<IQ")

assert _EXTENSION.size == REVISION_EXTENSION_BYTES

_MAX_PARAM_LEN = (1 << 16) - 1
_MAX_COLUMNS = 32
_MAX_REVISION = (1 << 32) - 1


def encode_segment(segment: SegmentGroup) -> bytes:
    """Serialise one segment row (header [+ extension] + parameters)."""
    if len(segment.parameters) > _MAX_PARAM_LEN:
        raise StorageError(
            f"model parameters too large to encode "
            f"({len(segment.parameters)} bytes)"
        )
    if len(segment.group_tids) > _MAX_COLUMNS:
        raise StorageError(
            f"groups larger than {_MAX_COLUMNS} series cannot encode their "
            "gap bitmask"
        )
    revised = bool(segment.revision or segment.knowledge_time)
    if segment.revision > _MAX_REVISION:
        raise StorageError(
            f"segment revision {segment.revision} too large to encode"
        )
    header = _HEADER.pack(
        segment.gid,
        segment.end_time,
        segment.length,
        segment.mid,
        _FLAG_REVISED if revised else 0,
        len(segment.parameters),
        segment.gap_bitmask(),
    )
    if revised:
        header += _EXTENSION.pack(segment.revision, segment.knowledge_time)
    return header + segment.parameters


def decode_segment(
    data: bytes,
    offset: int,
    sampling_interval: int,
    group_tids: tuple[int, ...],
) -> tuple[SegmentGroup, int]:
    """Deserialise one segment row starting at ``offset``.

    ``sampling_interval`` and ``group_tids`` come from the metadata cache
    (the Time Series table) — they are not stored per segment. Returns
    the segment and the offset just past it.
    """
    if offset + HEADER_BYTES > len(data):
        raise StorageError("truncated segment header")
    gid, end_time, size, mid, flags, param_len, gap_mask = _HEADER.unpack_from(
        data, offset
    )
    offset += HEADER_BYTES
    revision = 0
    knowledge_time = 0
    if flags & _FLAG_REVISED:
        if offset + REVISION_EXTENSION_BYTES > len(data):
            raise StorageError("truncated segment revision extension")
        revision, knowledge_time = _EXTENSION.unpack_from(data, offset)
        offset += REVISION_EXTENSION_BYTES
    parameters = bytes(data[offset:offset + param_len])
    if len(parameters) != param_len:
        raise StorageError("truncated segment parameters")
    offset += param_len
    segment = SegmentGroup(
        gid=gid,
        start_time=end_time - (size - 1) * sampling_interval,
        end_time=end_time,
        sampling_interval=sampling_interval,
        mid=mid,
        parameters=parameters,
        gaps=SegmentGroup.gaps_from_bitmask(gap_mask, group_tids),
        group_tids=group_tids,
        revision=revision,
        knowledge_time=knowledge_time,
    )
    return segment, offset


def encoded_size(segment: SegmentGroup) -> int:
    """Bytes :func:`encode_segment` will produce for this segment."""
    extension = (
        REVISION_EXTENSION_BYTES
        if segment.revision or segment.knowledge_time
        else 0
    )
    return HEADER_BYTES + extension + len(segment.parameters)
