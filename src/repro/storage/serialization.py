"""Binary segment codec (Section 3.3's Cassandra schema adaptations).

Each segment row is stored as a fixed 24-byte header followed by the
model parameters:

========  =====  =====================================================
Field     Bytes  Notes
========  =====  =====================================================
Gid       4      partition key
EndTime   8      clustering key
Size      4      data points per series; StartTime is *not* stored and
                 is recomputed as ``EndTime - (Size - 1) * SI``
Mid       1      model table id
Flags     1      reserved (zero)
ParamLen  2      length of the model parameters
GapMask   4      one bit per group column, set when that Tid is absent
========  =====  =====================================================

The 24-byte header matches the paper's stated per-segment overhead of
``24 + sizeof(Model)`` bytes, so byte counts reported by the storage
experiments follow the paper's accounting.
"""

from __future__ import annotations

import struct

from ..core.errors import StorageError
from ..core.segment import SegmentGroup

_HEADER = struct.Struct("<IqIBBHI")
HEADER_BYTES = _HEADER.size

assert HEADER_BYTES == 24, "header must match SEGMENT_OVERHEAD_BYTES"

_MAX_PARAM_LEN = (1 << 16) - 1
_MAX_COLUMNS = 32


def encode_segment(segment: SegmentGroup) -> bytes:
    """Serialise one segment row (header + parameters)."""
    if len(segment.parameters) > _MAX_PARAM_LEN:
        raise StorageError(
            f"model parameters too large to encode "
            f"({len(segment.parameters)} bytes)"
        )
    if len(segment.group_tids) > _MAX_COLUMNS:
        raise StorageError(
            f"groups larger than {_MAX_COLUMNS} series cannot encode their "
            "gap bitmask"
        )
    header = _HEADER.pack(
        segment.gid,
        segment.end_time,
        segment.length,
        segment.mid,
        0,
        len(segment.parameters),
        segment.gap_bitmask(),
    )
    return header + segment.parameters


def decode_segment(
    data: bytes,
    offset: int,
    sampling_interval: int,
    group_tids: tuple[int, ...],
) -> tuple[SegmentGroup, int]:
    """Deserialise one segment row starting at ``offset``.

    ``sampling_interval`` and ``group_tids`` come from the metadata cache
    (the Time Series table) — they are not stored per segment. Returns
    the segment and the offset just past it.
    """
    if offset + HEADER_BYTES > len(data):
        raise StorageError("truncated segment header")
    gid, end_time, size, mid, _, param_len, gap_mask = _HEADER.unpack_from(
        data, offset
    )
    offset += HEADER_BYTES
    parameters = bytes(data[offset:offset + param_len])
    if len(parameters) != param_len:
        raise StorageError("truncated segment parameters")
    offset += param_len
    segment = SegmentGroup(
        gid=gid,
        start_time=end_time - (size - 1) * sampling_interval,
        end_time=end_time,
        sampling_interval=sampling_interval,
        mid=mid,
        parameters=parameters,
        gaps=SegmentGroup.gaps_from_bitmask(gap_mask, group_tids),
        group_tids=group_tids,
    )
    return segment, offset


def encoded_size(segment: SegmentGroup) -> int:
    """Bytes :func:`encode_segment` will produce for this segment."""
    return HEADER_BYTES + len(segment.parameters)
