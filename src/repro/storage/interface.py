"""The uniform storage interface with predicate push-down (Fig. 4).

The engine is storage-agnostic: any backend implementing
:class:`Storage` can hold the three tables of Fig. 6. Predicate
push-down happens at :meth:`Storage.scan`: the query processor hands
down a typed :class:`~repro.storage.scan.SegmentScan` request — Gids
(after Tid/member rewriting), the time interval, and the ``AS OF``
knowledge-time bound — so backends skip irrelevant partitions instead
of filtering in the engine. The legacy positional/keyword
:meth:`Storage.segments` spelling survives as a ``DeprecationWarning``
shim over :meth:`scan`.
"""

from __future__ import annotations

import os
import warnings
from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Mapping

from ..core.errors import StorageError
from ..core.segment import SegmentGroup
from .scan import SegmentScan
from .schema import TimeSeriesRecord


class Storage(ABC):
    """Abstract segment group store (Time Series + Model + Segment).

    Besides the three tables, every backend shares one lifecycle
    contract: :meth:`open` constructs an instance (path-backed or not),
    :meth:`flush` makes pending writes durable, :meth:`close` releases
    resources, and instances are context managers closing on scope exit.
    """

    # -- Lifecycle ---------------------------------------------------------
    @classmethod
    def open(cls, path: str | os.PathLike | None = None) -> "Storage":
        """Open a backend instance.

        Path-backed stores receive ``path`` as their location;
        memory-backed stores are opened without one.
        """
        return cls() if path is None else cls(path)

    # -- Time Series table -------------------------------------------------
    @abstractmethod
    def insert_time_series(self, records: Iterable[TimeSeriesRecord]) -> None:
        """Store (or replace) Time Series table rows."""

    @abstractmethod
    def time_series(self) -> list[TimeSeriesRecord]:
        """All Time Series table rows, ordered by Tid."""

    # -- Model table -------------------------------------------------------
    @abstractmethod
    def insert_model_table(self, models: Mapping[int, str]) -> None:
        """Store the Mid -> classpath mapping."""

    @abstractmethod
    def model_table(self) -> dict[int, str]:
        """The stored Mid -> classpath mapping."""

    # -- Segment table -----------------------------------------------------
    @abstractmethod
    def insert_segments(self, segments: Iterable[SegmentGroup]) -> None:
        """Append segment rows (bulk write).

        Revision segments (``revision > 0``) that are not yet stamped
        receive the store's next knowledge-time tick; already-stamped
        segments keep their stamp (see
        :func:`~repro.storage.scan.stamp_revisions`).
        """

    @abstractmethod
    def scan(self, request: SegmentScan) -> Iterator[SegmentGroup]:
        """Scan segments matching a typed read request.

        Latest-wins revision resolution is applied per partition (see
        :func:`~repro.storage.scan.resolve_visible`) unless
        ``request.all_revisions`` is set; survivors overlapping the
        request's closed time interval are yielded in append order.
        """

    def segments(
        self,
        gids: Iterable[int] | None = None,
        start_time: int | None = None,
        end_time: int | None = None,
    ) -> Iterator[SegmentGroup]:
        """Deprecated spelling of :meth:`scan` (latest-known reads)."""
        warnings.warn(
            "Storage.segments() is deprecated; pass a SegmentScan "
            "request to Storage.scan() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.scan(
            SegmentScan(
                gids=None if gids is None else tuple(gids),
                start_time=start_time,
                end_time=end_time,
            )
        )

    @abstractmethod
    def segment_count(self) -> int:
        """Total number of stored segments."""

    def knowledge_time(self) -> int:
        """The store's current knowledge-time counter.

        Advances one tick per segment flush; ``AS OF`` queries compare
        against the values stamped on revisions. Backends without
        revision support may keep the default of ``0``.
        """
        return 0

    @abstractmethod
    def size_bytes(self) -> int:
        """Bytes used by the Segment table (the storage experiments'
        measurement; metadata tables are negligible and excluded, as the
        paper's `du` of the data directory is dominated by segments)."""

    def flush(self) -> None:
        """Make pending writes durable; default is a no-op.

        Cluster workers call this before acknowledging a ``flush`` RPC so
        the master knows the worker's state would survive a crash."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self) -> "Storage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic hand-back of file handles/locks on scope exit —
        the server's shutdown path and the CLI rely on this so a stopped
        server can immediately reopen its directory."""
        self.close()

    # -- Shared helpers ----------------------------------------------------
    def group_metadata(self) -> dict[int, tuple[tuple[int, ...], int]]:
        """Gid -> (group tids in column order, sampling interval).

        Derived from the Time Series table; used to decode segment rows.
        """
        groups: dict[int, list[int]] = {}
        intervals: dict[int, int] = {}
        for record in self.time_series():
            groups.setdefault(record.gid, []).append(record.tid)
            existing = intervals.setdefault(record.gid, record.sampling_interval)
            if existing != record.sampling_interval:
                raise StorageError(
                    f"group {record.gid} mixes sampling intervals"
                )
        return {
            gid: (tuple(sorted(tids)), intervals[gid])
            for gid, tids in groups.items()
        }
