"""The reprolint rule pack: RPR001–RPR010.

Each rule encodes one of the codebase's cross-cutting contracts (see the
package docstring). Rules are instantiated per run with the resolved
:class:`~repro.analysis.engine.Config` and participate in the two-pass
pipeline:

* ``check(ctx)`` — per-file findings (pass 1, cached);
* ``collect(ctx)`` — a JSON-serializable fact fragment for this file
  (pass 1, cached);
* ``check_program(program)`` — whole-program findings over the merged
  fragments plus the symbol table / call graph in
  :class:`~repro.analysis.callgraph.Program` (pass 2, always fresh).

Known, accepted limitations (static analysis is approximate by design):

* RPR002/RPR010 only see *literal* metric names plus f-string
  prefix/suffix templates; fully dynamic names are left to the runtime
  catalog enforcement in ``obs.registry``.
* RPR003 tracks lexical lock regions and same-class ``self.method()``
  indirection; calls through other objects are modeled only via the
  blocking-method name list.
* RPR004 inspects declared field annotations and ``__init__``
  assignments, not runtime attribute injection.
* RPR007 resolves calls through import aliases, ``self.``, local
  constructor typing, and unique basenames; calls through unresolvable
  receivers do not propagate taint.
* RPR009 treats a ``close()`` anywhere inside a ``finally`` block as
  closing on all paths, and any escape of the handle (returned,
  yielded, stored, passed to a call) as a transfer of ownership.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import ClassVar, Iterator

from .callgraph import (
    CallSite,
    FunctionFacts,
    Program,
    in_scope,
    iter_functions,
)
from .engine import ENGINE_RULE_ID, Config, FileContext, Finding


@dataclass(frozen=True)
class RuleSpec:
    """Static description of a rule, for docs verification."""

    id: str
    name: str
    summary: str


class Rule:
    """Base class: one invariant, checked per file plus a program pass."""

    id: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]

    def __init__(self, config: Config) -> None:
        self.config = config

    def check(self, ctx: FileContext) -> list[Finding]:
        """Findings local to one file (cached with the file)."""
        return []

    def collect(self, ctx: FileContext) -> object | None:
        """JSON-serializable facts this rule needs from one file."""
        return None

    def check_program(self, program: Program) -> list[Finding]:
        """Findings that need the whole-program view."""
        return []


# ---------------------------------------------------------------------------
# RPR001 — determinism
# ---------------------------------------------------------------------------

#: Calls that read the wall clock or ambient entropy. ``time.perf_counter``
#: and ``time.monotonic`` are allowed: they feed metrics, not data.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.random",
    "numpy.random.randint",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.seed",
}
_ENTROPY_PREFIXES = ("random.", "secrets.")


def _source_of(dotted: str | None, bare: bool) -> str | None:
    """The wall-clock/entropy source a dotted call reads, if any."""
    if dotted is None:
        return None
    if dotted == "numpy.random.default_rng":
        return dotted if bare else None
    if dotted in _WALL_CLOCK or dotted.startswith(_ENTROPY_PREFIXES):
        return dotted
    return None


class NoWallClockRule(Rule):
    """RPR001: deterministic paths must not read clocks or unseeded RNG.

    The paper's lossless-reconstruction guarantees (Gorilla/PMC-Mean/
    Swing) and the batch/scalar bit-equivalence tests both assume that
    fitting, ingestion, and serialization are pure functions of their
    inputs.
    """

    id = "RPR001"
    name = "no-wallclock-rng"
    summary = (
        "no wall-clock reads or unseeded RNG inside models/, ingest/, "
        "or storage serialization"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.in_scope(self.config.deterministic_paths):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted is None:
                continue
            bare = not node.args and not node.keywords
            source = _source_of(dotted, bare)
            if source is None:
                continue
            if source == "numpy.random.default_rng":
                message = (
                    "unseeded np.random.default_rng() in a "
                    "deterministic path — pass an explicit seed"
                )
            else:
                message = (
                    f"non-deterministic call {source}() in a "
                    "deterministic path"
                )
            findings.append(
                Finding(self.id, ctx.rel, node.lineno, node.col_offset, message)
            )
        return findings


# ---------------------------------------------------------------------------
# RPR002 — metric names
# ---------------------------------------------------------------------------

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


class MetricCatalogRule(Rule):
    """RPR002: literal metric names at call sites must be declared.

    ``scripts/check_docs.py`` keeps docs/METRICS.md equal to the
    catalog; this closes the remaining gap — a call site asking the
    registry for an undeclared name, which today only fails at runtime
    when that code path executes.
    """

    id = "RPR002"
    name = "metric-name-in-catalog"
    summary = (
        "every literal registry.counter/gauge/histogram() name exists "
        "in obs/catalog.py or a literal .declare() call"
    )

    def collect(self, ctx: FileContext) -> object | None:
        declared: list[str] = []
        uses: list[list[object]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant) and isinstance(first.value, str)
            ):
                continue  # f-string names: runtime enforcement covers them
            if func.attr == "declare":
                declared.append(first.value)
            elif func.attr in _INSTRUMENT_METHODS:
                uses.append([first.value, node.lineno, node.col_offset])
        if not declared and not uses:
            return None
        return {"declared": declared, "uses": uses}

    def _catalog_names(self) -> set[str] | None:
        module_name, _, attr = self.config.metrics_catalog.partition(":")
        try:
            import importlib

            catalog = getattr(importlib.import_module(module_name), attr)
            return set(catalog)
        except Exception:  # broad-ok: missing catalog disables the rule
            return None

    def check_program(self, program: Program) -> list[Finding]:
        catalog = self._catalog_names()
        if catalog is None:
            return []
        fragments = program.fragments(self.id)
        known = set(catalog)
        for fragment in fragments.values():
            known.update(fragment["declared"])  # type: ignore[index]
        findings: list[Finding] = []
        for rel, fragment in fragments.items():
            for name, line, col in fragment["uses"]:  # type: ignore[index]
                if name not in known:
                    findings.append(
                        Finding(
                            self.id,
                            rel,
                            int(line),
                            int(col),
                            f'metric "{name}" is not declared in '
                            "the metrics catalog",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# RPR003 — lock discipline
# ---------------------------------------------------------------------------

#: Identifier component that marks an expression as a lock: ``_lock``,
#: ``lock_a``, ``cache_lock``, ``mutex`` — but not ``unlock``/``locked``.
_LOCK_NAME = re.compile(r"(?:^|_)(lock|mutex)(?:$|_)", re.IGNORECASE)

#: Method names that block (or may acquire another lock) when called.
_BLOCKING_METHODS = {
    "sleep",
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "connect",
    "result",
    "join",
    "acquire",
    "wait",
    "urlopen",
    "sql",
    "execute_partial",
    # Registry instruments serialize on their own internal lock, and the
    # registry lookup methods take the registry lock — calling either
    # while holding an unrelated lock couples independent lock domains.
    "inc",
    "record",
    "counter",
    "gauge",
    "histogram",
}
_SAFE_DOTTED_PREFIXES = ("os.path.", "posixpath.", "ntpath.", "shlex.")
_BLOCKING_DOTTED = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "open",
}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class LockDisciplineRule(Rule):
    """RPR003: no blocking calls under a lock; lock order is acyclic.

    Lexical ``with <...lock>:`` blocks define held-lock regions. Inside
    a region the rule flags blocking calls (I/O, RPC, joins, metric
    instruments with their own locks), re-acquisition of the held lock
    (``threading.Lock`` is non-reentrant — instant deadlock), including
    through same-class ``self.method()`` calls, and records every
    outer→inner acquisition as an edge fragment; the program pass folds
    every file's edges into one acquisition-order graph and reports its
    cycles.
    """

    id = "RPR003"
    name = "lock-discipline"
    summary = (
        "no blocking calls or re-acquisition while holding a lock; the "
        "whole-program lock-acquisition-order graph stays acyclic"
    )

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        #: rel -> (local findings, ordered [outer, inner, line] edges);
        #: memoized so check() and collect() share one scan per file.
        self._memo: dict[str, tuple[list[Finding], list[list[object]]]] = {}

    # -- lock identity -------------------------------------------------
    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _lock_identity(
        self, node: ast.expr, ctx: FileContext, cls: str | None
    ) -> str | None:
        """Canonical identity of a lock expression, or None if not one."""
        terminal = self._terminal_name(node)
        if terminal is None or not _LOCK_NAME.search(terminal):
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            owner = f"{ctx.module}.{cls}" if cls else ctx.module
            return f"{owner}.{node.attr}"
        if isinstance(node, ast.Name):
            return f"{ctx.module}.{node.id}"
        # An attribute chain rooted in an import resolves to one canonical
        # dotted name in every file, so module-level locks reached through
        # imports participate in the cross-file acquisition-order graph.
        base = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) and base.id in ctx.aliases:
            dotted = ctx.dotted(node)
            if dotted is not None:
                return dotted
        return f"{ctx.module}.{ast.unparse(node)}"

    # -- per-file passes -----------------------------------------------
    def _analyze(
        self, ctx: FileContext
    ) -> tuple[list[Finding], list[list[object]]]:
        if ctx.rel in self._memo:
            return self._memo[ctx.rel]
        findings: list[Finding] = []
        raw_edges: list[tuple[str, str, int]] = []
        for cls_name, func in self._iter_functions(ctx.tree):
            method_locks = self._method_locks(ctx, cls_name)
            for stmt in func.body:
                self._scan(
                    stmt, [], ctx, cls_name, method_locks, findings, raw_edges
                )
        edges: list[list[object]] = []
        seen: set[tuple[str, str]] = set()
        for outer, inner, line in raw_edges:
            if (outer, inner) not in seen:
                seen.add((outer, inner))
                edges.append([outer, inner, line])
        self._memo[ctx.rel] = (findings, edges)
        return self._memo[ctx.rel]

    def check(self, ctx: FileContext) -> list[Finding]:
        return list(self._analyze(ctx)[0])

    def collect(self, ctx: FileContext) -> object | None:
        edges = self._analyze(ctx)[1]
        return {"edges": edges} if edges else None

    @staticmethod
    def _iter_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
        yield from iter_functions(tree)

    def _method_locks(
        self, ctx: FileContext, cls_name: str | None
    ) -> dict[str, set[str]]:
        """Method name -> lock identities it lexically acquires."""
        if cls_name is None:
            return {}
        cache_key = (ctx.rel, cls_name)
        cached = getattr(self, "_method_lock_cache", None)
        if cached is None:
            cached = {}
            self._method_lock_cache: dict[
                tuple[str, str], dict[str, set[str]]
            ] = cached
        if cache_key in cached:
            return cached[cache_key]
        table: dict[str, set[str]] = {}
        for node in ctx.tree.body:
            if not (isinstance(node, ast.ClassDef) and node.name == cls_name):
                continue
            for item in node.body:
                if not isinstance(item, _FUNCTION_NODES):
                    continue
                acquired: set[str] = set()
                for sub in ast.walk(item):
                    if isinstance(sub, (ast.With, ast.AsyncWith)):
                        for with_item in sub.items:
                            identity = self._lock_identity(
                                with_item.context_expr, ctx, cls_name
                            )
                            if identity is not None:
                                acquired.add(identity)
                if acquired:
                    table[item.name] = acquired
        cached[cache_key] = table
        return table

    def _scan(
        self,
        node: ast.AST,
        held: list[str],
        ctx: FileContext,
        cls: str | None,
        method_locks: dict[str, set[str]],
        findings: list[Finding],
        edges: list[tuple[str, str, int]],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                identity = self._lock_identity(item.context_expr, ctx, cls)
                if identity is None:
                    self._scan(
                        item.context_expr,
                        held,
                        ctx,
                        cls,
                        method_locks,
                        findings,
                        edges,
                    )
                    continue
                if identity in held:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            f"re-acquires {identity} already held — "
                            "threading.Lock is non-reentrant (deadlock)",
                        )
                    )
                elif held:
                    edges.append(
                        (held[-1], identity, item.context_expr.lineno)
                    )
                acquired.append(identity)
            inner = held + acquired
            for child in node.body:
                self._scan(
                    child, inner, ctx, cls, method_locks, findings, edges
                )
            return
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda)):
            # A nested def/lambda runs later, outside this lock region.
            for child in ast.iter_child_nodes(node):
                self._scan(child, [], ctx, cls, method_locks, findings, edges)
            return
        if isinstance(node, ast.Call) and held:
            self._check_call(
                node, held, ctx, cls, method_locks, findings, edges
            )
        for child in ast.iter_child_nodes(node):
            self._scan(child, held, ctx, cls, method_locks, findings, edges)

    def _check_call(
        self,
        node: ast.Call,
        held: list[str],
        ctx: FileContext,
        cls: str | None,
        method_locks: dict[str, set[str]],
        findings: list[Finding],
        edges: list[tuple[str, str, int]],
    ) -> None:
        func = node.func
        dotted = ctx.dotted(func)
        if dotted in _BLOCKING_DOTTED:
            findings.append(
                Finding(
                    self.id,
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    f"blocking call {dotted}() while holding {held[-1]}",
                )
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        # Same-class indirection: self.m() where m acquires locks.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in method_locks
        ):
            for inner in sorted(method_locks[func.attr]):
                if inner in held:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f"self.{func.attr}() re-acquires {inner} "
                            "already held — threading.Lock is "
                            "non-reentrant (deadlock)",
                        )
                    )
                else:
                    edges.append((held[-1], inner, node.lineno))
        if func.attr not in _BLOCKING_METHODS:
            return
        if func.attr == "join" and isinstance(func.value, ast.Constant):
            return  # "sep".join(...) — string join, not thread join
        if dotted is not None and dotted.startswith(_SAFE_DOTTED_PREFIXES):
            return
        findings.append(
            Finding(
                self.id,
                ctx.rel,
                node.lineno,
                node.col_offset,
                f"blocking call .{func.attr}() while holding {held[-1]}",
            )
        )

    # -- whole-program cycle detection ---------------------------------
    def check_program(self, program: Program) -> list[Finding]:
        edge_sites: dict[tuple[str, str], tuple[str, int]] = {}
        for rel, fragment in program.fragments(self.id).items():
            for outer, inner, line in fragment["edges"]:  # type: ignore[index]
                edge_sites.setdefault(
                    (str(outer), str(inner)), (rel, int(line))
                )
        graph: dict[str, list[str]] = {}
        for outer, inner in edge_sites:
            graph.setdefault(outer, []).append(inner)
        for targets in graph.values():
            targets.sort()
        findings: list[Finding] = []
        seen_cycles: set[tuple[str, ...]] = set()
        state: dict[str, int] = {}  # 1 = on stack, 2 = done
        stack: list[str] = []

        def visit(lock: str) -> None:
            state[lock] = 1
            stack.append(lock)
            for target in graph.get(lock, ()):
                mark = state.get(target)
                if mark == 1:
                    cycle = stack[stack.index(target):]
                    pivot = cycle.index(min(cycle))
                    canonical = tuple(cycle[pivot:] + cycle[:pivot])
                    if canonical in seen_cycles:
                        continue
                    seen_cycles.add(canonical)
                    path, line = edge_sites[(cycle[-1], target)]
                    chain = " -> ".join((*canonical, canonical[0]))
                    findings.append(
                        Finding(
                            self.id,
                            path,
                            line,
                            0,
                            f"lock-acquisition-order cycle: {chain}",
                        )
                    )
                elif mark is None:
                    visit(target)
            stack.pop()
            state[lock] = 2

        for lock in sorted(graph):
            if lock not in state:
                visit(lock)
        return findings


# ---------------------------------------------------------------------------
# RPR004 — pickle safety across the RPC boundary
# ---------------------------------------------------------------------------

#: Canonical dotted names whose instances cannot cross a pickle boundary.
#: Annotation names are resolved through the file's import aliases first,
#: so a project-local class that happens to be called ``Condition`` (the
#: SQL WHERE clause) is not confused with ``threading.Condition``.
_UNPICKLABLE_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Thread",
    "multiprocessing.Process",
    "multiprocessing.Queue",
    "multiprocessing.Lock",
    "socket.socket",
    "queue.Queue",
    "queue.SimpleQueue",
    "typing.Callable",
    "typing.Generator",
    "typing.Iterator",
    "typing.IO",
    "typing.TextIO",
    "typing.BinaryIO",
    "collections.abc.Callable",
    "collections.abc.Generator",
    "collections.abc.Iterator",
    "io.IOBase",
    "io.TextIOWrapper",
    "io.BufferedReader",
    "io.BufferedWriter",
}
_UNPICKLABLE_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "socket.socket",
    "socket.create_connection",
    "open",
}


class PickleSafetyRule(Rule):
    """RPR004: RPC payload types carry only picklable state.

    Everything listed in ``rpc-types`` crosses the ProcessCluster
    boundary through ``cluster/pool.py``; a lock, socket, generator, or
    lambda smuggled into a field turns into a runtime PicklingError on
    whichever code path first ships the object.
    """

    id = "RPR004"
    name = "rpc-pickle-safety"
    summary = (
        "types crossing the cluster RPC boundary must not hold locks, "
        "sockets, generators, lambdas, or open files"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self.config.rpc_types:
                continue
            findings.extend(self._check_class(node, ctx))
        return findings

    def _check_class(
        self, node: ast.ClassDef, ctx: FileContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                culprit = self._unpicklable_annotation(stmt.annotation, ctx)
                if culprit is not None:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            stmt.lineno,
                            stmt.col_offset,
                            f"RPC type {node.name} declares field with "
                            f"unpicklable annotation ({culprit})",
                        )
                    )
            elif isinstance(stmt, _FUNCTION_NODES) and stmt.name == "__init__":
                findings.extend(self._check_init(stmt, node.name, ctx))
        return findings

    @staticmethod
    def _unpicklable_annotation(
        annotation: ast.expr, ctx: FileContext
    ) -> str | None:
        """The first banned dotted name inside the annotation, if any.

        String annotations (``"Lock | None"``) are parsed as expressions
        so deferred annotations get the same treatment.
        """
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = ctx.dotted(node)
                if dotted in _UNPICKLABLE_TYPES:
                    return dotted
        return None

    def _check_init(
        self,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str,
        ctx: FileContext,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in node.targets
            ):
                continue
            reason: str | None = None
            value = node.value
            if isinstance(value, ast.Lambda):
                reason = "a lambda"
            elif isinstance(value, ast.GeneratorExp):
                reason = "a generator expression"
            elif isinstance(value, ast.Call):
                dotted = ctx.dotted(value.func)
                if dotted in _UNPICKLABLE_FACTORIES:
                    reason = f"{dotted}()"
            if reason is not None:
                findings.append(
                    Finding(
                        self.id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"RPC type {cls_name} stores {reason} on self — "
                        "not picklable across the cluster boundary",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPR005 — justified broad excepts
# ---------------------------------------------------------------------------

_JUSTIFICATION = re.compile(r"#.*\b(pragma:|broad-ok:|noqa:)")
_BROAD_NAMES = {"Exception", "BaseException"}


class BroadExceptRule(Rule):
    """RPR005: bare/broad ``except`` needs a same-line justification.

    A swallowed exception in this codebase does not crash a test — it
    silently corrupts an experiment (the loadgen error-counting bug is
    the canonical example). ``# broad-ok: <reason>`` — or an existing
    ``# pragma:`` / ``# noqa: <code> - <reason>`` tag — on the
    ``except`` line states why broad is right.
    """

    id = "RPR005"
    name = "justified-broad-except"
    summary = (
        "no bare `except:` / `except Exception:` without a same-line "
        "`# broad-ok:` (or `# pragma:` / `# noqa:`) justification"
    )

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        node = handler.type
        if node is None:
            return True
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_NAMES
            for name in names
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            comment = ctx.comments.get(node.lineno, "")
            if _JUSTIFICATION.search(comment):
                continue
            label = (
                "bare except:"
                if node.type is None
                else f"broad except {ast.unparse(node.type)}:"
            )
            findings.append(
                Finding(
                    self.id,
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    f"{label} without a `# broad-ok: <reason>` tag",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# RPR006 — no scalar loops in batch kernels
# ---------------------------------------------------------------------------


class ScalarLoopRule(Rule):
    """RPR006: batch kernels must stay vectorized.

    The columnar ingestion and read paths exist because per-tick Python
    loops were the bottleneck. Inside an ``extend`` kernel, a ``for``
    loop feeding ``append``/``_try_append`` row by row silently reverts
    that win; inside a ``values_block`` decode kernel, a loop of
    ``value_at`` calls reconstructs the block one scalar at a time. Both
    stay bit-identical, so only a linter catches the regression.
    """

    id = "RPR006"
    name = "no-scalar-loop-in-kernels"
    summary = (
        "no per-tick `for` loop feeding append/_try_append or calling "
        "value_at inside the batch kernels (extend/_extend/values_block "
        "and the analytics forecast/window-bound kernels)"
    )

    _KERNEL_FUNCTIONS = {
        "extend",
        "_extend",
        "values_block",
        # The model-native analytics kernels (query/analytics.py):
        # per-series/per-window numpy broadcasts that must not regress
        # into per-tick scalar loops.
        "forecast_block",
        "forecast_halfwidths",
        "window_lower_bounds",
    }

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.in_scope(self.config.kernel_paths):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            if node.name not in self._KERNEL_FUNCTIONS:
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.AsyncFor)):
                    continue
                if self._loop_scalar_calls(loop):
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            loop.lineno,
                            loop.col_offset,
                            "per-tick scalar loop (append/_try_append/"
                            f"value_at) inside batch kernel "
                            f"{node.name}() — vectorize it",
                        )
                    )
        return findings

    @staticmethod
    def _loop_scalar_calls(loop: ast.For | ast.AsyncFor) -> bool:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ("_try_append", "value_at"):
                    return True
                if (
                    func.attr == "append"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# RPR007 — interprocedural determinism taint
# ---------------------------------------------------------------------------


class DeterminismTaintRule(Rule):
    """RPR007: no call *chain* from a deterministic scope to a clock.

    RPR001 sees a ``time.time()`` written inside ``models/``; it cannot
    see ``models/`` calling a helper in ``util/`` that reads the clock
    two frames down. This rule propagates every wall-clock/RNG source
    backwards through the whole-program call graph and flags any call
    site inside the deterministic or kernel scopes whose callee can
    reach one, reporting the full path so the finding is actionable.
    Direct in-scope source calls are left to RPR001 (no double report).
    """

    id = "RPR007"
    name = "no-transitive-wallclock"
    summary = (
        "no call path from models/ingest/serialization/analytics "
        "kernels to a wall-clock or unseeded-RNG source in any file "
        "(interprocedural closure of RPR001)"
    )

    def check_program(self, program: Program) -> list[Finding]:
        scope = (
            *self.config.deterministic_paths,
            *self.config.kernel_paths,
        )

        def classify(call: CallSite) -> str | None:
            if call.kind != "dotted":
                return None
            return _source_of(call.target, call.bare)

        tainted = program.taint(classify)
        if not tainted:
            return []
        direct = {
            qualname
            for qualname, info in tainted.items()
            if len(info.chain) == 1
        }
        findings: list[Finding] = []
        for rel in sorted(program.modules):
            if not in_scope(rel, scope):
                continue
            for func in program.modules[rel].functions:
                for call in func.calls:
                    for target in program.resolve_call(func, call):
                        info = tainted.get(target)
                        if info is None or target == func.qualname:
                            continue
                        target_rel = program.rel_of(target)
                        if target in direct and in_scope(target_rel, scope):
                            # RPR001 already flags the source call
                            # inside that in-scope callee.
                            continue
                        chain = " -> ".join(info.chain)
                        findings.append(
                            Finding(
                                self.id,
                                rel,
                                call.line,
                                call.col,
                                f"call into {target}() reaches "
                                f"non-deterministic {info.source}() "
                                f"(path: {chain})",
                            )
                        )
        return findings


# ---------------------------------------------------------------------------
# RPR008 — wire-contract consistency
# ---------------------------------------------------------------------------

#: The request field that *selects* the handler; it is consumed by the
#: dispatch `if` ladder itself, so the threaded-onward check skips it.
_DISPATCH_FIELD = "op"


class WireContractRule(Rule):
    """RPR008: the wire protocol agrees with itself in all four places.

    An op is declared four times — the server's ``_handle_request``
    ladder, a ``ServerClient`` payload, a dispatcher route, and the
    operator docs. History shows they drift one at a time; this rule
    diffs them. It also checks that a request field a handler bothers
    to validate (``request.get("as_of")`` + type check) is actually
    threaded onward to the engine rather than validated and dropped.
    """

    id = "RPR008"
    name = "wire-contract"
    summary = (
        "every protocol op has a server handler branch, a ServerClient "
        "payload, real dispatcher routes, and a docs/OPERATIONS.md "
        "mention; validated request fields are threaded onward"
    )

    # -- pass 1: facts -------------------------------------------------
    def collect(self, ctx: FileContext) -> object | None:
        if ctx.rel == self.config.wire_server:
            return self._collect_server(ctx)
        if ctx.rel == self.config.wire_client:
            return self._collect_client(ctx)
        if ctx.rel == self.config.wire_dispatcher:
            return self._collect_dispatcher(ctx)
        return None

    def _collect_server(self, ctx: FileContext) -> dict[str, object]:
        handler_ops: list[list[object]] = []
        dispatcher_calls: list[list[object]] = []
        fields: list[list[object]] = []
        for _cls, func in iter_functions(ctx.tree):
            if func.name == "_handle_request":
                handler_ops.extend(self._handler_ops(func))
            if func.name.startswith("_handle"):
                fields.extend(self._request_fields(func))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Attribute)
                and func_expr.value.attr == "dispatcher"
                and isinstance(func_expr.value.value, ast.Name)
                and func_expr.value.value.id == "self"
            ):
                dispatcher_calls.append(
                    [func_expr.attr, node.lineno, node.col_offset]
                )
        return {
            "role": "server",
            "handler_ops": handler_ops,
            "dispatcher_calls": dispatcher_calls,
            "fields": fields,
        }

    @staticmethod
    def _handler_ops(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[list[object]]:
        ops: list[list[object]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            if not isinstance(node.ops[0], ast.Eq):
                continue
            sides = [node.left, node.comparators[0]]
            names = [s for s in sides if isinstance(s, ast.Name)]
            consts = [
                s
                for s in sides
                if isinstance(s, ast.Constant) and isinstance(s.value, str)
            ]
            if (
                len(names) == 1
                and len(consts) == 1
                and names[0].id == _DISPATCH_FIELD
            ):
                ops.append(
                    [consts[0].value, node.lineno, node.col_offset]
                )
        return ops

    def _request_fields(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[list[object]]:
        """[field, line, col, used_onward] for each request.get() read."""
        reads: list[tuple[str, str, int, int]] = []  # (var, field, ...)
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if not isinstance(target, ast.Name):
                continue
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "get"
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id == "request"
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)
            ):
                continue
            field_name = value.args[0].value
            if field_name == _DISPATCH_FIELD:
                continue
            reads.append(
                (target.id, field_name, node.lineno, node.col_offset)
            )
        if not reads:
            return []
        excluded = self._validation_only_nodes(func)
        used_vars: set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in excluded
            ):
                used_vars.add(node.id)
        return [
            [field_name, line, col, var in used_vars]
            for var, field_name, line, col in reads
        ]

    @staticmethod
    def _validation_only_nodes(func: ast.AST) -> set[int]:
        """ids of Name loads that only validate (tests / error paths)."""
        excluded: set[int] = set()
        for node in ast.walk(func):
            zones: list[ast.AST] = []
            if isinstance(node, (ast.If, ast.IfExp, ast.While)):
                zones.append(node.test)
            elif isinstance(node, ast.Call):
                callee = node.func
                name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else callee.id
                    if isinstance(callee, ast.Name)
                    else ""
                )
                if "error" in name:
                    zones.extend(node.args)
                    zones.extend(kw.value for kw in node.keywords)
            for zone in zones:
                for sub in ast.walk(zone):
                    if isinstance(sub, ast.Name):
                        excluded.add(id(sub))
        return excluded

    def _collect_client(self, ctx: FileContext) -> dict[str, object]:
        ops: list[list[object]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == _DISPATCH_FIELD
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    ops.append([value.value, node.lineno, node.col_offset])
        return {"role": "client", "ops": ops}

    @staticmethod
    def _collect_dispatcher(ctx: FileContext) -> dict[str, object]:
        classes: dict[str, list[str]] = {}
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            classes[node.name] = [
                item.name
                for item in node.body
                if isinstance(item, _FUNCTION_NODES)
            ]
        return {"role": "dispatcher", "classes": classes}

    # -- pass 2: the diff ----------------------------------------------
    def check_program(self, program: Program) -> list[Finding]:
        fragments = program.fragments(self.id)
        server = fragments.get(self.config.wire_server)
        if not isinstance(server, dict):
            return []  # the wire surface is not part of this run
        client = fragments.get(self.config.wire_client)
        dispatcher = fragments.get(self.config.wire_dispatcher)
        findings: list[Finding] = []
        server_rel = self.config.wire_server

        handler_sites: dict[str, tuple[int, int]] = {}
        for op, line, col in server.get("handler_ops", ()):
            handler_sites.setdefault(str(op), (int(line), int(col)))
        client_sites: dict[str, tuple[int, int]] = {}
        if isinstance(client, dict):
            for op, line, col in client.get("ops", ()):
                client_sites.setdefault(str(op), (int(line), int(col)))

        if isinstance(client, dict):
            for op in sorted(set(client_sites) - set(handler_sites)):
                line, col = client_sites[op]
                findings.append(
                    Finding(
                        self.id,
                        self.config.wire_client,
                        line,
                        col,
                        f'client sends op "{op}" but {server_rel} has no '
                        "handler branch for it",
                    )
                )
            for op in sorted(set(handler_sites) - set(client_sites)):
                line, col = handler_sites[op]
                findings.append(
                    Finding(
                        self.id,
                        server_rel,
                        line,
                        col,
                        f'protocol op "{op}" has no ServerClient payload '
                        f"in {self.config.wire_client}",
                    )
                )

        docs_path = program.root / self.config.wire_docs
        if docs_path.is_file():
            docs_text = docs_path.read_text(encoding="utf-8")
            for op in sorted(handler_sites):
                pattern = (
                    r"(?<![A-Za-z0-9_])" + re.escape(op) + r"(?![A-Za-z0-9_])"
                )
                if not re.search(pattern, docs_text):
                    line, col = handler_sites[op]
                    findings.append(
                        Finding(
                            self.id,
                            server_rel,
                            line,
                            col,
                            f'protocol op "{op}" is not documented in '
                            f"{self.config.wire_docs}",
                        )
                    )

        if isinstance(dispatcher, dict):
            classes = dict(dispatcher.get("classes", {}))
            routes = set(
                classes.get("Dispatcher")
                or [m for methods in classes.values() for m in methods]
            )
            for attr, line, col in server.get("dispatcher_calls", ()):
                if str(attr) not in routes:
                    findings.append(
                        Finding(
                            self.id,
                            server_rel,
                            int(line),
                            int(col),
                            f"server routes self.dispatcher.{attr}() but "
                            f"{self.config.wire_dispatcher} defines no "
                            f"{attr}()",
                        )
                    )

        for field_name, line, col, used in server.get("fields", ()):
            if not used:
                findings.append(
                    Finding(
                        self.id,
                        server_rel,
                        int(line),
                        int(col),
                        f'request field "{field_name}" is read and '
                        "validated but never threaded onward — the "
                        "engine will silently ignore it",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPR009 — resource lifecycle
# ---------------------------------------------------------------------------

_CLOSE_METHODS = {"close", "shutdown"}
_FACTORY_METHODS = {"open", "open_directory", "connect"}


class ResourceLifecycleRule(Rule):
    """RPR009: a created resource handle is closed on all paths.

    ``ModelarDB.open``, ``FileStorage``, ``ServerClient`` and the
    cluster tiers own OS state (files, sockets, worker processes). A
    handle constructed in a function must be closed there (``with``, or
    ``close()`` on every path — a ``finally`` counts), or its ownership
    must visibly escape (returned, yielded, stored, or passed to
    another call). The rule also flags any internal call to a
    ``DeprecationWarning`` shim — shims exist so *external* users get a
    migration window, not so internal code can keep old habits.
    """

    id = "RPR009"
    name = "resource-lifecycle"
    summary = (
        "Storage/client/cluster handles are closed on all paths (with "
        "block, or close() in a finally) unless ownership escapes; no "
        "internal calls to DeprecationWarning shims"
    )

    # -- pass 1: creations ---------------------------------------------
    def collect(self, ctx: FileContext) -> object | None:
        creations: list[list[object]] = []
        for _cls, func in iter_functions(ctx.tree):
            creations.extend(self._scan_function(func, ctx))
        return {"creations": creations} if creations else None

    def _resource_type(self, dotted: str | None) -> str | None:
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-1] in _FACTORY_METHODS:
            candidate = parts[-2]
        else:
            candidate = parts[-1]
        return candidate if candidate in self.config.resource_types else None

    def _scan_function(
        self,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> list[list[object]]:
        rows: list[list[object]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            rtype = self._resource_type(ctx.dotted(node.value.func))
            if rtype is None:
                continue
            closed_any, closed_uncond = self._closes(func, target.id)
            escapes = self._escapes(func, target.id, node)
            rows.append(
                [
                    rtype,
                    target.id,
                    node.lineno,
                    node.col_offset,
                    closed_any,
                    closed_uncond,
                    escapes,
                ]
            )
        return rows

    @classmethod
    def _closes(cls, func: ast.AST, var: str) -> tuple[bool, bool]:
        """(closed anywhere, closed on an all-paths position)."""
        closed_any = False
        closed_uncond = False

        def walk(node: ast.AST, conditional: bool, in_finally: bool) -> None:
            nonlocal closed_any, closed_uncond
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Name) and expr.id == var:
                        closed_any = True
                        if not conditional or in_finally:
                            closed_uncond = True
                for child in node.body:
                    walk(child, conditional, in_finally)
                return
            if isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Attribute)
                    and callee.attr in _CLOSE_METHODS
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id == var
                ):
                    closed_any = True
                    if not conditional or in_finally:
                        closed_uncond = True
            if isinstance(node, ast.Try):
                # The try body may be cut short by an exception and the
                # handlers/orelse may never run; only `finally` is
                # guaranteed. Anything inside a finally counts as
                # all-paths, even under an `if` — the guard is assumed
                # to mirror the creation condition (approximation).
                for child in node.body:
                    walk(child, True, in_finally)
                for handler in node.handlers:
                    for child in handler.body:
                        walk(child, True, in_finally)
                for child in node.orelse:
                    walk(child, True, in_finally)
                for child in node.finalbody:
                    walk(child, conditional, True)
                return
            if isinstance(node, (ast.If, ast.While)):
                walk(node.test, conditional, in_finally)
                for child in (*node.body, *node.orelse):
                    walk(child, True, in_finally)
                return
            if isinstance(node, (ast.For, ast.AsyncFor)):
                walk(node.iter, conditional, in_finally)
                for child in (*node.body, *node.orelse):
                    walk(child, True, in_finally)
                return
            for child in ast.iter_child_nodes(node):
                walk(child, conditional, in_finally)

        for child in ast.iter_child_nodes(func):
            walk(child, False, False)
        return closed_any, closed_uncond

    @staticmethod
    def _escapes(func: ast.AST, var: str, creation: ast.Assign) -> bool:
        def contains_var(node: ast.AST) -> bool:
            """Var loaded in this subtree, *outside* nested calls.

            Calls are cut out so ``rows = db.sql(...)`` (a method call
            *on* the handle) is not mistaken for aliasing; escapes via
            call arguments are handled by the Call branch below.
            """
            if isinstance(node, ast.Call):
                return False
            if (
                isinstance(node, ast.Name)
                and node.id == var
                and isinstance(node.ctx, ast.Load)
            ):
                return True
            return any(
                contains_var(child) for child in ast.iter_child_nodes(node)
            )

        for node in ast.walk(func):
            if node is creation:
                continue
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and contains_var(node.value):
                    return True
            elif isinstance(node, ast.Call):
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    if (
                        isinstance(arg, ast.Name)
                        and arg.id == var
                        and isinstance(arg.ctx, ast.Load)
                    ) or contains_var(arg):
                        return True
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.NamedExpr)):
                value = node.value
                if value is not None and contains_var(value):
                    return True
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                if any(
                    isinstance(elt, ast.Name) and elt.id == var
                    for elt in node.elts
                ):
                    return True
            elif isinstance(node, ast.Dict):
                if any(
                    isinstance(part, ast.Name) and part.id == var
                    for part in (*node.keys, *node.values)
                    if part is not None
                ):
                    return True
        return False

    # -- pass 2: leak + shim findings ----------------------------------
    def check_program(self, program: Program) -> list[Finding]:
        findings: list[Finding] = []
        for rel, fragment in program.fragments(self.id).items():
            for row in fragment["creations"]:  # type: ignore[index]
                rtype, _var, line, col, closed_any, closed_uncond, escapes = (
                    row
                )
                if escapes:
                    continue
                if not closed_any:
                    findings.append(
                        Finding(
                            self.id,
                            rel,
                            int(line),
                            int(col),
                            f"{rtype} handle is never closed and never "
                            'escapes — use a "with" block or close() it',
                        )
                    )
                elif not closed_uncond:
                    findings.append(
                        Finding(
                            self.id,
                            rel,
                            int(line),
                            int(col),
                            f"{rtype} handle is only conditionally closed "
                            '— close it in a "finally" or use "with"',
                        )
                    )
        findings.extend(self._shim_calls(program))
        return findings

    def _shim_calls(self, program: Program) -> list[Finding]:
        shims: dict[str, str] = {}  # qualname -> display name
        shim_methods: dict[str, list[str]] = {}  # method name -> qualnames
        for qualname, func in program.functions.items():
            if not func.warns_deprecation:
                continue
            display = (
                f"{func.cls}.{func.name}" if func.cls else func.name
            )
            shims[qualname] = display
            shim_methods.setdefault(func.name, []).append(qualname)
        if not shims:
            return []
        findings: list[Finding] = []
        for rel in sorted(program.modules):
            for func in program.modules[rel].functions:
                if func.qualname in shims:
                    continue  # a shim may call anything it likes
                for call in func.calls:
                    hit = self._shim_target(program, func, call, shims)
                    if hit is not None:
                        findings.append(
                            Finding(
                                self.id,
                                rel,
                                call.line,
                                call.col,
                                f"calls DeprecationWarning shim {hit}() — "
                                "internal code must use the replacement "
                                "API",
                            )
                        )
        return findings

    @staticmethod
    def _shim_target(
        program: Program,
        func: FunctionFacts,
        call: CallSite,
        shims: dict[str, str],
    ) -> str | None:
        for target in program.resolve_call(func, call):
            if target in shims:
                return shims[target]
        if call.kind == "method":
            # Unresolvable receiver: flag only when the method name is
            # project-unique and that unique owner is the shim.
            owners = program.method_owners(call.target)
            if len(owners) == 1:
                qualname = f"{owners[0]}.{call.target}"
                if qualname in shims:
                    return shims[qualname]
        return None


# ---------------------------------------------------------------------------
# RPR010 — dead metrics (the inverse of RPR002)
# ---------------------------------------------------------------------------


class DeadMetricRule(Rule):
    """RPR010: every catalog entry is recorded somewhere.

    RPR002 stops call sites using undeclared names; this is the
    inverse — a catalog entry (and its docs/METRICS.md row, and its
    dashboard panel) that no instrument call ever records into is a lie
    about what the system observes. Literal names count, and so do
    f-string templates: ``registry.counter(f"server.{name}_total")``
    covers every catalog entry matching ``server.*_total``.
    """

    id = "RPR010"
    name = "no-dead-metrics"
    summary = (
        "every metric declared in obs/catalog.py is recorded by at "
        "least one counter/gauge/histogram call site (literal or "
        "f-string template)"
    )

    def collect(self, ctx: FileContext) -> object | None:
        catalog_module = self.config.metrics_catalog.partition(":")[0]
        uses: list[str] = []
        templates: list[list[str]] = []
        entries: list[list[object]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            first = node.args[0]
            if isinstance(func, ast.Attribute) and func.attr in (
                _INSTRUMENT_METHODS | {"declare"}
            ):
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    uses.append(first.value)
                elif isinstance(first, ast.JoinedStr):
                    templates.append(list(self._template(first)))
            if ctx.module == catalog_module:
                terminal = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else None
                )
                if (
                    terminal == "MetricSpec"
                    and isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                ):
                    entries.append([first.value, node.lineno])
        if not uses and not templates and not entries:
            return None
        return {"uses": uses, "templates": templates, "entries": entries}

    @staticmethod
    def _template(joined: ast.JoinedStr) -> tuple[str, str]:
        """(literal prefix, literal suffix) of an f-string name."""
        parts = joined.values
        prefix = ""
        for part in parts:
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                prefix += part.value
            else:
                break
        suffix = ""
        for part in reversed(parts):
            if isinstance(part, ast.Constant) and isinstance(part.value, str):
                suffix = part.value + suffix
            else:
                break
        if len(prefix) + len(suffix) >= sum(
            len(part.value)
            for part in parts
            if isinstance(part, ast.Constant) and isinstance(part.value, str)
        ) and not any(
            isinstance(part, ast.FormattedValue) for part in parts
        ):
            # A JoinedStr with no formatted part is just a literal.
            return (prefix, "")
        return (prefix, suffix)

    def check_program(self, program: Program) -> list[Finding]:
        catalog_rel = None
        catalog_module = self.config.metrics_catalog.partition(":")[0]
        catalog_rel = program.rel_for_module(catalog_module)
        fragments = program.fragments(self.id)
        entries: list[tuple[str, int]] = []
        used: set[str] = set()
        templates: list[tuple[str, str]] = []
        for fragment in fragments.values():
            used.update(fragment["uses"])  # type: ignore[index]
            templates.extend(
                (str(prefix), str(suffix))
                for prefix, suffix in fragment["templates"]  # type: ignore[index]
            )
            entries.extend(
                (str(name), int(line))
                for name, line in fragment["entries"]  # type: ignore[index]
            )
        if not entries or catalog_rel is None:
            return []  # catalog not part of this run: nothing to diff
        findings: list[Finding] = []
        for name, line in entries:
            if name in used:
                continue
            if any(
                name.startswith(prefix)
                and name.endswith(suffix)
                and len(name) >= len(prefix) + len(suffix)
                for prefix, suffix in templates
            ):
                continue
            findings.append(
                Finding(
                    self.id,
                    catalog_rel,
                    line,
                    0,
                    f'metric "{name}" is declared in the catalog but no '
                    "instrument call ever records it — dead metric",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES: tuple[type[Rule], ...] = (
    NoWallClockRule,
    MetricCatalogRule,
    LockDisciplineRule,
    PickleSafetyRule,
    BroadExceptRule,
    ScalarLoopRule,
    DeterminismTaintRule,
    WireContractRule,
    ResourceLifecycleRule,
    DeadMetricRule,
)

#: Every rule id the tool can emit, engine diagnostics included —
#: ``scripts/check_docs.py`` verifies docs/DEVELOPMENT.md against this.
ALL_RULE_SPECS: tuple[RuleSpec, ...] = (
    RuleSpec(
        ENGINE_RULE_ID,
        "engine-diagnostics",
        "unused `# reprolint: disable=` suppressions and unparsable files",
    ),
    *(RuleSpec(rule.id, rule.name, rule.summary) for rule in RULES),
)
