"""The reprolint rule pack: RPR001–RPR006.

Each rule encodes one of the codebase's cross-cutting contracts (see the
package docstring). Rules are instantiated per run with the resolved
:class:`~repro.analysis.engine.Config`; ``check`` sees one file at a
time, ``finalize`` runs after the walk for rules that need whole-program
state (the metric-declaration set, the lock-acquisition-order graph).

Known, accepted limitations (static analysis is approximate by design):

* RPR002 only checks *literal* metric names; f-string names are left to
  the runtime catalog enforcement in ``obs.registry``.
* RPR003 tracks lexical lock regions and same-class ``self.method()``
  indirection; calls through other objects are modeled only via the
  blocking-method name list.
* RPR004 inspects declared field annotations and ``__init__``
  assignments, not runtime attribute injection.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import ClassVar, Iterator

from .engine import ENGINE_RULE_ID, Config, FileContext, Finding


@dataclass(frozen=True)
class RuleSpec:
    """Static description of a rule, for docs verification."""

    id: str
    name: str
    summary: str


class Rule:
    """Base class: one invariant, checked per file plus a final pass."""

    id: ClassVar[str]
    name: ClassVar[str]
    summary: ClassVar[str]

    def __init__(self, config: Config) -> None:
        self.config = config

    def check(self, ctx: FileContext) -> list[Finding]:
        return []

    def finalize(self) -> list[Finding]:
        return []


# ---------------------------------------------------------------------------
# RPR001 — determinism
# ---------------------------------------------------------------------------

#: Calls that read the wall clock or ambient entropy. ``time.perf_counter``
#: and ``time.monotonic`` are allowed: they feed metrics, not data.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.random",
    "numpy.random.randint",
    "numpy.random.normal",
    "numpy.random.uniform",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.seed",
}
_ENTROPY_PREFIXES = ("random.", "secrets.")


class NoWallClockRule(Rule):
    """RPR001: deterministic paths must not read clocks or unseeded RNG.

    The paper's lossless-reconstruction guarantees (Gorilla/PMC-Mean/
    Swing) and the batch/scalar bit-equivalence tests both assume that
    fitting, ingestion, and serialization are pure functions of their
    inputs.
    """

    id = "RPR001"
    name = "no-wallclock-rng"
    summary = (
        "no wall-clock reads or unseeded RNG inside models/, ingest/, "
        "or storage serialization"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.in_scope(self.config.deterministic_paths):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted is None:
                continue
            if dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            "unseeded np.random.default_rng() in a "
                            "deterministic path — pass an explicit seed",
                        )
                    )
                continue
            if dotted in _WALL_CLOCK or dotted.startswith(_ENTROPY_PREFIXES):
                findings.append(
                    Finding(
                        self.id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"non-deterministic call {dotted}() in a "
                        "deterministic path",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPR002 — metric names
# ---------------------------------------------------------------------------

_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


class MetricCatalogRule(Rule):
    """RPR002: literal metric names at call sites must be declared.

    ``scripts/check_docs.py`` keeps docs/METRICS.md equal to the
    catalog; this closes the remaining gap — a call site asking the
    registry for an undeclared name, which today only fails at runtime
    when that code path executes.
    """

    id = "RPR002"
    name = "metric-name-in-catalog"
    summary = (
        "every literal registry.counter/gauge/histogram() name exists "
        "in obs/catalog.py or a literal .declare() call"
    )

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        self._pending: list[tuple[str, Finding]] = []
        self._declared: set[str] = set()

    def check(self, ctx: FileContext) -> list[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue  # f-string names: runtime enforcement covers them
            if func.attr == "declare":
                self._declared.add(first.value)
            elif func.attr in _INSTRUMENT_METHODS:
                self._pending.append(
                    (
                        first.value,
                        Finding(
                            self.id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f'metric "{first.value}" is not declared in '
                            "the metrics catalog",
                        ),
                    )
                )
        return []

    def _catalog_names(self) -> set[str] | None:
        module_name, _, attr = self.config.metrics_catalog.partition(":")
        try:
            import importlib

            catalog = getattr(importlib.import_module(module_name), attr)
            return set(catalog)
        except Exception:  # broad-ok: missing catalog disables the rule
            return None

    def finalize(self) -> list[Finding]:
        catalog = self._catalog_names()
        if catalog is None:
            return []
        known = catalog | self._declared
        return [finding for name, finding in self._pending if name not in known]


# ---------------------------------------------------------------------------
# RPR003 — lock discipline
# ---------------------------------------------------------------------------

#: Identifier component that marks an expression as a lock: ``_lock``,
#: ``lock_a``, ``cache_lock``, ``mutex`` — but not ``unlock``/``locked``.
_LOCK_NAME = re.compile(r"(?:^|_)(lock|mutex)(?:$|_)", re.IGNORECASE)

#: Method names that block (or may acquire another lock) when called.
_BLOCKING_METHODS = {
    "sleep",
    "recv",
    "recv_into",
    "sendall",
    "accept",
    "connect",
    "result",
    "join",
    "acquire",
    "wait",
    "urlopen",
    "sql",
    "execute_partial",
    # Registry instruments serialize on their own internal lock, and the
    # registry lookup methods take the registry lock — calling either
    # while holding an unrelated lock couples independent lock domains.
    "inc",
    "record",
    "counter",
    "gauge",
    "histogram",
}
_SAFE_DOTTED_PREFIXES = ("os.path.", "posixpath.", "ntpath.", "shlex.")
_BLOCKING_DOTTED = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "open",
}

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class LockDisciplineRule(Rule):
    """RPR003: no blocking calls under a lock; lock order is acyclic.

    Lexical ``with <...lock>:`` blocks define held-lock regions. Inside
    a region the rule flags blocking calls (I/O, RPC, joins, metric
    instruments with their own locks), re-acquisition of the held lock
    (``threading.Lock`` is non-reentrant — instant deadlock), including
    through same-class ``self.method()`` calls, and records every
    outer→inner acquisition as an edge in a whole-program graph whose
    cycles are reported in the final pass.
    """

    id = "RPR003"
    name = "lock-discipline"
    summary = (
        "no blocking calls or re-acquisition while holding a lock; the "
        "whole-program lock-acquisition-order graph stays acyclic"
    )

    def __init__(self, config: Config) -> None:
        super().__init__(config)
        #: (outer lock, inner lock) -> first location that creates it.
        self._edges: dict[tuple[str, str], tuple[str, int]] = {}

    # -- lock identity -------------------------------------------------
    @staticmethod
    def _terminal_name(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _lock_identity(
        self, node: ast.expr, ctx: FileContext, cls: str | None
    ) -> str | None:
        """Canonical identity of a lock expression, or None if not one."""
        terminal = self._terminal_name(node)
        if terminal is None or not _LOCK_NAME.search(terminal):
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            owner = f"{ctx.module}.{cls}" if cls else ctx.module
            return f"{owner}.{node.attr}"
        if isinstance(node, ast.Name):
            return f"{ctx.module}.{node.id}"
        # An attribute chain rooted in an import resolves to one canonical
        # dotted name in every file, so module-level locks reached through
        # imports participate in the cross-file acquisition-order graph.
        base = node
        while isinstance(base, ast.Attribute):
            base = base.value
        if isinstance(base, ast.Name) and base.id in ctx.aliases:
            dotted = ctx.dotted(node)
            if dotted is not None:
                return dotted
        return f"{ctx.module}.{ast.unparse(node)}"

    # -- per-file check ------------------------------------------------
    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for cls_name, func in self._iter_functions(ctx.tree):
            method_locks = self._method_locks(ctx, cls_name)
            for stmt in func.body:
                self._scan(stmt, [], ctx, cls_name, method_locks, findings)
        return findings

    @staticmethod
    def _iter_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for node in tree.body:
            if isinstance(node, _FUNCTION_NODES):
                yield None, node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, _FUNCTION_NODES):
                        yield node.name, item

    def _method_locks(
        self, ctx: FileContext, cls_name: str | None
    ) -> dict[str, set[str]]:
        """Method name -> lock identities it lexically acquires."""
        if cls_name is None:
            return {}
        cache_key = (ctx.rel, cls_name)
        cached = getattr(self, "_method_lock_cache", None)
        if cached is None:
            cached = {}
            self._method_lock_cache: dict[
                tuple[str, str], dict[str, set[str]]
            ] = cached
        if cache_key in cached:
            return cached[cache_key]
        table: dict[str, set[str]] = {}
        for node in ctx.tree.body:
            if not (isinstance(node, ast.ClassDef) and node.name == cls_name):
                continue
            for item in node.body:
                if not isinstance(item, _FUNCTION_NODES):
                    continue
                acquired: set[str] = set()
                for sub in ast.walk(item):
                    if isinstance(sub, (ast.With, ast.AsyncWith)):
                        for with_item in sub.items:
                            identity = self._lock_identity(
                                with_item.context_expr, ctx, cls_name
                            )
                            if identity is not None:
                                acquired.add(identity)
                if acquired:
                    table[item.name] = acquired
        cached[cache_key] = table
        return table

    def _scan(
        self,
        node: ast.AST,
        held: list[str],
        ctx: FileContext,
        cls: str | None,
        method_locks: dict[str, set[str]],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: list[str] = []
            for item in node.items:
                identity = self._lock_identity(item.context_expr, ctx, cls)
                if identity is None:
                    self._scan(
                        item.context_expr, held, ctx, cls, method_locks, findings
                    )
                    continue
                if identity in held:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            item.context_expr.lineno,
                            item.context_expr.col_offset,
                            f"re-acquires {identity} already held — "
                            "threading.Lock is non-reentrant (deadlock)",
                        )
                    )
                elif held:
                    self._edges.setdefault(
                        (held[-1], identity),
                        (ctx.rel, item.context_expr.lineno),
                    )
                acquired.append(identity)
            inner = held + acquired
            for child in node.body:
                self._scan(child, inner, ctx, cls, method_locks, findings)
            return
        if isinstance(node, (*_FUNCTION_NODES, ast.Lambda)):
            # A nested def/lambda runs later, outside this lock region.
            for child in ast.iter_child_nodes(node):
                self._scan(child, [], ctx, cls, method_locks, findings)
            return
        if isinstance(node, ast.Call) and held:
            self._check_call(node, held, ctx, cls, method_locks, findings)
        for child in ast.iter_child_nodes(node):
            self._scan(child, held, ctx, cls, method_locks, findings)

    def _check_call(
        self,
        node: ast.Call,
        held: list[str],
        ctx: FileContext,
        cls: str | None,
        method_locks: dict[str, set[str]],
        findings: list[Finding],
    ) -> None:
        func = node.func
        dotted = ctx.dotted(func)
        if dotted in _BLOCKING_DOTTED:
            findings.append(
                Finding(
                    self.id,
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    f"blocking call {dotted}() while holding {held[-1]}",
                )
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        # Same-class indirection: self.m() where m acquires locks.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in method_locks
        ):
            for inner in sorted(method_locks[func.attr]):
                if inner in held:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            node.lineno,
                            node.col_offset,
                            f"self.{func.attr}() re-acquires {inner} "
                            "already held — threading.Lock is "
                            "non-reentrant (deadlock)",
                        )
                    )
                else:
                    self._edges.setdefault(
                        (held[-1], inner), (ctx.rel, node.lineno)
                    )
        if func.attr not in _BLOCKING_METHODS:
            return
        if func.attr == "join" and isinstance(func.value, ast.Constant):
            return  # "sep".join(...) — string join, not thread join
        if dotted is not None and dotted.startswith(_SAFE_DOTTED_PREFIXES):
            return
        findings.append(
            Finding(
                self.id,
                ctx.rel,
                node.lineno,
                node.col_offset,
                f"blocking call .{func.attr}() while holding {held[-1]}",
            )
        )

    # -- whole-program cycle detection ---------------------------------
    def finalize(self) -> list[Finding]:
        graph: dict[str, list[str]] = {}
        for outer, inner in self._edges:
            graph.setdefault(outer, []).append(inner)
        for targets in graph.values():
            targets.sort()
        findings: list[Finding] = []
        seen_cycles: set[tuple[str, ...]] = set()
        state: dict[str, int] = {}  # 1 = on stack, 2 = done
        stack: list[str] = []

        def visit(lock: str) -> None:
            state[lock] = 1
            stack.append(lock)
            for target in graph.get(lock, ()):
                mark = state.get(target)
                if mark == 1:
                    cycle = stack[stack.index(target):]
                    pivot = cycle.index(min(cycle))
                    canonical = tuple(cycle[pivot:] + cycle[:pivot])
                    if canonical in seen_cycles:
                        continue
                    seen_cycles.add(canonical)
                    path, line = self._edges[
                        (cycle[-1], target)
                    ]
                    chain = " -> ".join((*canonical, canonical[0]))
                    findings.append(
                        Finding(
                            self.id,
                            path,
                            line,
                            0,
                            f"lock-acquisition-order cycle: {chain}",
                        )
                    )
                elif mark is None:
                    visit(target)
            stack.pop()
            state[lock] = 2

        for lock in sorted(graph):
            if lock not in state:
                visit(lock)
        return findings


# ---------------------------------------------------------------------------
# RPR004 — pickle safety across the RPC boundary
# ---------------------------------------------------------------------------

#: Canonical dotted names whose instances cannot cross a pickle boundary.
#: Annotation names are resolved through the file's import aliases first,
#: so a project-local class that happens to be called ``Condition`` (the
#: SQL WHERE clause) is not confused with ``threading.Condition``.
_UNPICKLABLE_TYPES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Event",
    "threading.Thread",
    "multiprocessing.Process",
    "multiprocessing.Queue",
    "multiprocessing.Lock",
    "socket.socket",
    "queue.Queue",
    "queue.SimpleQueue",
    "typing.Callable",
    "typing.Generator",
    "typing.Iterator",
    "typing.IO",
    "typing.TextIO",
    "typing.BinaryIO",
    "collections.abc.Callable",
    "collections.abc.Generator",
    "collections.abc.Iterator",
    "io.IOBase",
    "io.TextIOWrapper",
    "io.BufferedReader",
    "io.BufferedWriter",
}
_UNPICKLABLE_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "socket.socket",
    "socket.create_connection",
    "open",
}


class PickleSafetyRule(Rule):
    """RPR004: RPC payload types carry only picklable state.

    Everything listed in ``rpc-types`` crosses the ProcessCluster
    boundary through ``cluster/pool.py``; a lock, socket, generator, or
    lambda smuggled into a field turns into a runtime PicklingError on
    whichever code path first ships the object.
    """

    id = "RPR004"
    name = "rpc-pickle-safety"
    summary = (
        "types crossing the cluster RPC boundary must not hold locks, "
        "sockets, generators, lambdas, or open files"
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name not in self.config.rpc_types:
                continue
            findings.extend(self._check_class(node, ctx))
        return findings

    def _check_class(
        self, node: ast.ClassDef, ctx: FileContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign):
                culprit = self._unpicklable_annotation(stmt.annotation, ctx)
                if culprit is not None:
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            stmt.lineno,
                            stmt.col_offset,
                            f"RPC type {node.name} declares field with "
                            f"unpicklable annotation ({culprit})",
                        )
                    )
            elif isinstance(stmt, _FUNCTION_NODES) and stmt.name == "__init__":
                findings.extend(self._check_init(stmt, node.name, ctx))
        return findings

    @staticmethod
    def _unpicklable_annotation(
        annotation: ast.expr, ctx: FileContext
    ) -> str | None:
        """The first banned dotted name inside the annotation, if any.

        String annotations (``"Lock | None"``) are parsed as expressions
        so deferred annotations get the same treatment.
        """
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        for node in ast.walk(annotation):
            if isinstance(node, (ast.Name, ast.Attribute)):
                dotted = ctx.dotted(node)
                if dotted in _UNPICKLABLE_TYPES:
                    return dotted
        return None

    def _check_init(
        self,
        init: ast.FunctionDef | ast.AsyncFunctionDef,
        cls_name: str,
        ctx: FileContext,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                for target in node.targets
            ):
                continue
            reason: str | None = None
            value = node.value
            if isinstance(value, ast.Lambda):
                reason = "a lambda"
            elif isinstance(value, ast.GeneratorExp):
                reason = "a generator expression"
            elif isinstance(value, ast.Call):
                dotted = ctx.dotted(value.func)
                if dotted in _UNPICKLABLE_FACTORIES:
                    reason = f"{dotted}()"
            if reason is not None:
                findings.append(
                    Finding(
                        self.id,
                        ctx.rel,
                        node.lineno,
                        node.col_offset,
                        f"RPC type {cls_name} stores {reason} on self — "
                        "not picklable across the cluster boundary",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# RPR005 — justified broad excepts
# ---------------------------------------------------------------------------

_JUSTIFICATION = re.compile(r"#.*\b(pragma:|broad-ok:|noqa:)")
_BROAD_NAMES = {"Exception", "BaseException"}


class BroadExceptRule(Rule):
    """RPR005: bare/broad ``except`` needs a same-line justification.

    A swallowed exception in this codebase does not crash a test — it
    silently corrupts an experiment (the loadgen error-counting bug is
    the canonical example). ``# broad-ok: <reason>`` — or an existing
    ``# pragma:`` / ``# noqa: <code> - <reason>`` tag — on the
    ``except`` line states why broad is right.
    """

    id = "RPR005"
    name = "justified-broad-except"
    summary = (
        "no bare `except:` / `except Exception:` without a same-line "
        "`# broad-ok:` (or `# pragma:` / `# noqa:`) justification"
    )

    @staticmethod
    def _is_broad(handler: ast.ExceptHandler) -> bool:
        node = handler.type
        if node is None:
            return True
        names = node.elts if isinstance(node, ast.Tuple) else [node]
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_NAMES
            for name in names
        )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            comment = ctx.comments.get(node.lineno, "")
            if _JUSTIFICATION.search(comment):
                continue
            label = (
                "bare except:"
                if node.type is None
                else f"broad except {ast.unparse(node.type)}:"
            )
            findings.append(
                Finding(
                    self.id,
                    ctx.rel,
                    node.lineno,
                    node.col_offset,
                    f"{label} without a `# broad-ok: <reason>` tag",
                )
            )
        return findings


# ---------------------------------------------------------------------------
# RPR006 — no scalar loops in batch kernels
# ---------------------------------------------------------------------------


class ScalarLoopRule(Rule):
    """RPR006: batch kernels must stay vectorized.

    The columnar ingestion and read paths exist because per-tick Python
    loops were the bottleneck. Inside an ``extend`` kernel, a ``for``
    loop feeding ``append``/``_try_append`` row by row silently reverts
    that win; inside a ``values_block`` decode kernel, a loop of
    ``value_at`` calls reconstructs the block one scalar at a time. Both
    stay bit-identical, so only a linter catches the regression.
    """

    id = "RPR006"
    name = "no-scalar-loop-in-kernels"
    summary = (
        "no per-tick `for` loop feeding append/_try_append or calling "
        "value_at inside the batch kernels (extend/_extend/values_block "
        "and the analytics forecast/window-bound kernels)"
    )

    _KERNEL_FUNCTIONS = {
        "extend",
        "_extend",
        "values_block",
        # The model-native analytics kernels (query/analytics.py):
        # per-series/per-window numpy broadcasts that must not regress
        # into per-tick scalar loops.
        "forecast_block",
        "forecast_halfwidths",
        "window_lower_bounds",
    }

    def check(self, ctx: FileContext) -> list[Finding]:
        if not ctx.in_scope(self.config.kernel_paths):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _FUNCTION_NODES):
                continue
            if node.name not in self._KERNEL_FUNCTIONS:
                continue
            for loop in ast.walk(node):
                if not isinstance(loop, (ast.For, ast.AsyncFor)):
                    continue
                if self._loop_scalar_calls(loop):
                    findings.append(
                        Finding(
                            self.id,
                            ctx.rel,
                            loop.lineno,
                            loop.col_offset,
                            "per-tick scalar loop (append/_try_append/"
                            f"value_at) inside batch kernel "
                            f"{node.name}() — vectorize it",
                        )
                    )
        return findings

    @staticmethod
    def _loop_scalar_calls(loop: ast.For | ast.AsyncFor) -> bool:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in ("_try_append", "value_at"):
                    return True
                if (
                    func.attr == "append"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    return True
        return False


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

RULES: tuple[type[Rule], ...] = (
    NoWallClockRule,
    MetricCatalogRule,
    LockDisciplineRule,
    PickleSafetyRule,
    BroadExceptRule,
    ScalarLoopRule,
)

#: Every rule id the tool can emit, engine diagnostics included —
#: ``scripts/check_docs.py`` verifies docs/DEVELOPMENT.md against this.
ALL_RULE_SPECS: tuple[RuleSpec, ...] = (
    RuleSpec(
        ENGINE_RULE_ID,
        "engine-diagnostics",
        "unused `# reprolint: disable=` suppressions and unparsable files",
    ),
    *(RuleSpec(rule.id, rule.name, rule.summary) for rule in RULES),
)
