"""CLI for reprolint: ``python -m repro.analysis [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage error. ``--output FILE``
always writes the JSON report and ``--sarif FILE`` the SARIF 2.1.0 one
(both independent of ``--format``), so one blocking CI invocation
yields the human log plus both machine artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import Config, run_analysis


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-specific invariant linter (reprolint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: [tool.reprolint] "
        "paths in pyproject.toml)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the JSON report to FILE, whatever --format is",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental analysis cache",
    )
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: --root {args.root} is not a directory", file=sys.stderr)
        return 2
    config = Config.from_pyproject(root)
    try:
        report = run_analysis(
            root,
            args.paths or None,
            config,
            use_cache=False if args.no_cache else None,
        )
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.output:
        Path(args.output).write_text(report.to_json() + "\n", encoding="utf-8")
    if args.sarif:
        Path(args.sarif).write_text(
            report.to_sarif_json() + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report.to_sarif_json())
    else:
        print(report.render())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
