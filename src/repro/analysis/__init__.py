"""reprolint: project-specific static analysis for the repro codebase.

The generic linter (ruff) catches generic defects; this package encodes
the *system's own* cross-cutting contracts as enforceable rules — the
invariants that, when silently broken, invalidate experiments rather
than crash tests:

``RPR001``  deterministic paths stay deterministic (no wall clock, no
            unseeded RNG inside the model kernels / ingestion /
            serialization);
``RPR002``  every metric name recorded at a call site is declared in
            the catalog (closing the call-site gap the docs checker
            leaves);
``RPR003``  lock discipline: no blocking calls while holding a lock,
            no self-deadlocks, and a whole-program lock-acquisition-
            order graph with cycle detection;
``RPR004``  types crossing the cluster RPC boundary stay picklable;
``RPR005``  no bare/broad ``except`` without a justification tag;
``RPR006``  no per-tick scalar fallback loops reintroduced inside the
            vectorized batch kernels.

Run it as ``python -m repro.analysis [paths...]``; configuration lives
in the ``[tool.reprolint]`` table of ``pyproject.toml``. Suppress one
finding with a same-line ``# reprolint: disable=RPR0xx`` comment —
suppressions that suppress nothing are themselves reported (RPR000).
"""

from __future__ import annotations

from .engine import Config, Finding, Report, run_analysis
from .rules import ALL_RULE_SPECS, RULES

__all__ = [
    "ALL_RULE_SPECS",
    "Config",
    "Finding",
    "Report",
    "RULES",
    "run_analysis",
]
