"""reprolint: project-specific static analysis for the repro codebase.

The generic linter (ruff) catches generic defects; this package encodes
the *system's own* cross-cutting contracts as enforceable rules — the
invariants that, when silently broken, invalidate experiments rather
than crash tests.

Analysis runs in two passes. Pass 1 visits each file in isolation
(cached by content hash in ``.reprolint-cache.json``): per-file rule
checks plus fact extraction — the module's defs, classes, call sites,
and each rule's own fact fragments. Pass 2 assembles the fragments
into a whole-program symbol table and call graph
(:mod:`repro.analysis.callgraph`) and runs the interprocedural rules
over it.

``RPR001``  deterministic paths stay deterministic (no wall clock, no
            unseeded RNG inside the model kernels / ingestion /
            serialization);
``RPR002``  every metric name recorded at a call site is declared in
            the catalog (closing the call-site gap the docs checker
            leaves);
``RPR003``  lock discipline: no blocking calls while holding a lock,
            no self-deadlocks, and a whole-program lock-acquisition-
            order graph with cycle detection;
``RPR004``  types crossing the cluster RPC boundary stay picklable;
``RPR005``  no bare/broad ``except`` without a justification tag;
``RPR006``  no per-tick scalar fallback loops reintroduced inside the
            vectorized batch kernels;
``RPR007``  no call *chain* from a deterministic scope to a wall-clock
            or RNG source anywhere in the program (interprocedural
            closure of RPR001);
``RPR008``  the wire protocol agrees with itself: handler branch,
            client payload, dispatcher route, and operator docs per
            op, and validated request fields are threaded onward;
``RPR009``  Storage/client/cluster handles are closed on all paths or
            visibly transfer ownership; no internal calls to
            DeprecationWarning shims;
``RPR010``  every metric declared in the catalog is recorded by some
            instrument call site (the inverse of RPR002).

Run it as ``python -m repro.analysis [paths...]``; configuration lives
in the ``[tool.reprolint]`` table of ``pyproject.toml``. Suppress one
finding with a same-line ``# reprolint: disable=RPR0xx`` comment —
suppressions that suppress nothing are themselves reported (RPR000),
except when they name a rule disabled via ``disabled-rules``.
"""

from __future__ import annotations

from .callgraph import Program
from .engine import Config, Finding, Report, run_analysis
from .rules import ALL_RULE_SPECS, RULES

__all__ = [
    "ALL_RULE_SPECS",
    "Config",
    "Finding",
    "Program",
    "Report",
    "RULES",
    "run_analysis",
]
