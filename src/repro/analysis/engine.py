"""The reprolint engine: file walking, caching, suppressions, reports.

The engine is rule-agnostic and drives the two analysis passes:

* **Pass 1 (per file, cached):** each file is parsed once into a
  :class:`FileContext`; every rule contributes local findings
  (``Rule.check``) and a JSON-serializable fact fragment
  (``Rule.collect``), and the generic symbol/call facts are extracted
  (:func:`~repro.analysis.callgraph.extract_module_facts`). All of it
  is stored in a content-hash incremental cache
  (``.reprolint-cache.json``), so an unchanged file is never re-parsed.
* **Pass 2 (whole program, always fresh):** the per-file facts are
  merged into a :class:`~repro.analysis.callgraph.Program` and every
  rule's ``check_program`` runs over it — the interprocedural rules
  (taint, wire contract, resource lifecycle, dead metrics, lock-order
  cycles) live entirely in this pass, which is why caching pass 1 is
  sound: facts are a pure function of file content + config.

After both passes the engine applies ``# reprolint: disable=RPR0xx``
suppressions and reports suppressions that suppressed nothing as engine
findings (``RPR000``) — except suppressions naming a rule disabled in
``[tool.reprolint] disabled-rules``, which *cannot* fire and are left
alone so a temporarily disabled rule does not cascade into RPR000 noise.

Exit-code contract of :func:`run_analysis` callers: 0 when clean, 1
when findings remain, 2 on usage errors (see ``__main__``).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import sys
import tokenize
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .callgraph import (
    ModuleFacts,
    Program,
    extract_module_facts,
    module_name,
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .rules import Rule

#: Engine-level diagnostics: unused suppressions and unparsable files.
ENGINE_RULE_ID = "RPR000"

#: Bump when the cached fact/finding format changes shape.
CACHE_VERSION = 1

#: Cache file name, created under the analysis root (gitignored).
CACHE_FILENAME = ".reprolint-cache.json"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
        )


#: Defaults mirrored by the ``[tool.reprolint]`` table in pyproject.toml
#: (kept in code so the linter still runs on Python 3.10 installations
#: without tomllib and on trees without a pyproject).
_DEFAULT_PATHS = ("src", "benchmarks", "scripts")
_DEFAULT_DETERMINISTIC = (
    "src/repro/models",
    "src/repro/ingest",
    "src/repro/storage/serialization.py",
)
_DEFAULT_KERNELS = ("src/repro/models", "src/repro/query/analytics.py")
_DEFAULT_CATALOG = "repro.obs.catalog:CATALOG"
_DEFAULT_RPC_TYPES = (
    "PartialResult",
    "IngestStats",
    "ModelUsage",
    "Fault",
    "FaultPlan",
    "TimeSeries",
    "TimeSeriesGroup",
    "Dimension",
    "DimensionSet",
    "Configuration",
    "Query",
    "SegmentGroup",
    "ClusterIngestReport",
    "ClusterQueryReport",
    "ShardMap",
    "SegmentBatch",
    "ShardQueryReport",
    "SegmentScan",
)
#: RPR009: classes whose instances own an OS resource and must be
#: closed (directly, via ``with``, or by handing ownership onward).
_DEFAULT_RESOURCES = (
    "ModelarDB",
    "FileStorage",
    "ServerClient",
    "ProcessCluster",
    "ShardedCluster",
)
#: RPR008: the four places the wire protocol is declared.
_DEFAULT_WIRE_SERVER = "src/repro/server/server.py"
_DEFAULT_WIRE_CLIENT = "src/repro/server/client.py"
_DEFAULT_WIRE_DISPATCHER = "src/repro/server/dispatcher.py"
_DEFAULT_WIRE_DOCS = "docs/OPERATIONS.md"


@dataclass
class Config:
    """Resolved ``[tool.reprolint]`` configuration."""

    paths: tuple[str, ...] = _DEFAULT_PATHS
    deterministic_paths: tuple[str, ...] = _DEFAULT_DETERMINISTIC
    kernel_paths: tuple[str, ...] = _DEFAULT_KERNELS
    metrics_catalog: str = _DEFAULT_CATALOG
    rpc_types: tuple[str, ...] = _DEFAULT_RPC_TYPES
    resource_types: tuple[str, ...] = _DEFAULT_RESOURCES
    wire_server: str = _DEFAULT_WIRE_SERVER
    wire_client: str = _DEFAULT_WIRE_CLIENT
    wire_dispatcher: str = _DEFAULT_WIRE_DISPATCHER
    wire_docs: str = _DEFAULT_WIRE_DOCS
    #: Rule ids switched off project-wide; they neither run nor count
    #: toward the RPR000 unused-suppression audit.
    disabled_rules: tuple[str, ...] = ()

    @classmethod
    def from_pyproject(cls, root: Path) -> "Config":
        """Read the ``[tool.reprolint]`` table; defaults when absent."""
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return cls()
        try:
            import tomllib
        except ModuleNotFoundError:  # Python 3.10: run on defaults
            return cls()
        with pyproject.open("rb") as handle:
            table = tomllib.load(handle).get("tool", {}).get("reprolint", {})
        config = cls()
        tuple_keys = {
            "paths": "paths",
            "deterministic-paths": "deterministic_paths",
            "kernel-paths": "kernel_paths",
            "rpc-types": "rpc_types",
            "resource-types": "resource_types",
            "disabled-rules": "disabled_rules",
        }
        for key, attr in tuple_keys.items():
            if key in table:
                setattr(config, attr, tuple(table[key]))
        string_keys = {
            "metrics-catalog": "metrics_catalog",
            "wire-server": "wire_server",
            "wire-client": "wire_client",
            "wire-dispatcher": "wire_dispatcher",
            "wire-docs": "wire_docs",
        }
        for key, attr in string_keys.items():
            if key in table:
                setattr(config, attr, str(table[key]))
        return config

    def digest(self) -> str:
        """Stable hash of the config, for cache invalidation."""
        payload = json.dumps(asdict(self), sort_keys=True, default=list)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class FileContext:
    """Everything a rule needs about one analyzed file."""

    def __init__(self, root: Path, path: Path, source: str) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.module = module_name(self.rel)
        self.source = source
        self.tree = ast.parse(source, filename=self.rel)
        #: line number -> full comment text (including the ``#``).
        self.comments: dict[int, str] = {}
        reader = io.StringIO(source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            pass
        self._aliases: dict[str, str] | None = None

    # -- scoping -------------------------------------------------------
    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """Whether this file lives under any of the path prefixes."""
        for prefix in prefixes:
            clean = prefix.rstrip("/")
            if self.rel == clean or self.rel.startswith(clean + "/"):
                return True
        return False

    # -- name resolution -----------------------------------------------
    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted prefix, from the imports."""
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for name in node.names:
                        local = name.asname or name.name.partition(".")[0]
                        target = name.name if name.asname else local
                        aliases[local] = target
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:  # relative import: outside our scope
                        continue
                    for name in node.names:
                        local = name.asname or name.name
                        aliases[local] = f"{node.module}.{name.name}"
            self._aliases = aliases
        return self._aliases

    def dotted(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an expression, if it is one.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``numpy.random.default_rng``; non-name expressions (calls,
        subscripts) resolve to None.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    files_reused: int = 0  #: pass-1 results served from the cache

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        by_rule: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "tool": "reprolint",
            "version": 2,
            "files_checked": self.files_checked,
            "files_reused": self.files_reused,
            "findings": [finding.to_dict() for finding in self.findings],
            "counts_by_rule": dict(sorted(by_rule.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def to_sarif(self) -> dict[str, object]:
        """SARIF 2.1.0 log, for CI code-scanning annotation."""
        from .rules import ALL_RULE_SPECS

        rules_meta = [
            {
                "id": spec.id,
                "name": spec.name,
                "shortDescription": {"text": spec.summary},
            }
            for spec in ALL_RULE_SPECS
        ]
        results = [
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.path},
                            "region": {
                                "startLine": max(finding.line, 1),
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
            for finding in self.findings
        ]
        return {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "reprolint",
                            "informationUri": (
                                "https://example.invalid/repro/reprolint"
                            ),
                            "rules": rules_meta,
                        }
                    },
                    "results": results,
                }
            ],
        }

    def to_sarif_json(self) -> str:
        return json.dumps(self.to_sarif(), indent=2, sort_keys=False)

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            lines.append(
                f"reprolint: {len(self.findings)} finding(s) in "
                f"{self.files_checked} file(s)"
            )
        else:
            lines.append(
                f"reprolint: clean — {self.files_checked} file(s), 0 findings"
            )
        return "\n".join(lines)


def iter_python_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given paths, ``__pycache__`` skipped."""
    seen: set[Path] = set()
    for raw in paths:
        target = (root / raw).resolve()
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def _suppressions(ctx: FileContext) -> dict[int, set[str]]:
    """line -> rule ids disabled on that line."""
    table: dict[int, set[str]] = {}
    for line, comment in ctx.comments.items():
        match = _SUPPRESS_RE.search(comment)
        if match is not None:
            rules = {part.strip() for part in match.group("rules").split(",")}
            table.setdefault(line, set()).update(rules)
    return table


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


class _Cache:
    """Content-hash cache of pass-1 results (facts + local findings).

    An entry is valid iff the file's sha256 matches; the whole cache is
    valid iff the format version, config digest, and Python minor
    version match (the AST — and therefore the facts — can change
    between minors). Pass 2 always runs fresh, so caching pass 1 never
    changes results, only skips re-parsing.
    """

    def __init__(self, path: Path, config: Config) -> None:
        self.path = path
        self.key = {
            "cache_version": CACHE_VERSION,
            "config": config.digest(),
            "python": f"{sys.version_info[0]}.{sys.version_info[1]}",
        }
        self.entries: dict[str, dict[str, object]] = {}
        self.dirty = False
        try:
            stored = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(stored, dict):
            return
        if {k: stored.get(k) for k in self.key} != self.key:
            return
        files = stored.get("files")
        if isinstance(files, dict):
            self.entries = files

    def get(self, rel: str, digest: str) -> dict[str, object] | None:
        entry = self.entries.get(rel)
        if entry is not None and entry.get("hash") == digest:
            return entry
        return None

    def put(self, rel: str, entry: dict[str, object]) -> None:
        if self.entries.get(rel) != entry:
            self.entries[rel] = entry
            self.dirty = True

    def prune(self, live: set[str]) -> None:
        dead = set(self.entries) - live
        for rel in dead:
            del self.entries[rel]
            self.dirty = True

    def save(self) -> None:
        if not self.dirty:
            return
        payload = {**self.key, "files": self.entries}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:  # read-only checkout: run uncached
            pass


# ---------------------------------------------------------------------------
# The two-pass driver
# ---------------------------------------------------------------------------


def run_analysis(
    root: Path,
    paths: Sequence[str] | None = None,
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
    use_cache: bool | None = None,
) -> Report:
    """Analyze the tree under ``root`` and return the findings.

    ``rules`` defaults to fresh instances of every registered rule not
    named in ``config.disabled_rules``; pass a subset to run one rule
    in isolation (tests). The incremental cache is used only for
    default-rule runs (``use_cache=None``) — an explicit rule subset
    would otherwise poison entries keyed solely by file + config.
    """
    from .rules import RULES

    root = Path(root).resolve()
    config = config if config is not None else Config.from_pyproject(root)
    explicit_rules = rules is not None
    active = (
        list(rules)
        if rules is not None
        else [
            rule_type(config)
            for rule_type in RULES
            if rule_type.id not in config.disabled_rules
        ]
    )
    if use_cache is None:
        use_cache = not explicit_rules
    cache = _Cache(root / CACHE_FILENAME, config) if use_cache else None

    report = Report()
    raw_findings: list[Finding] = []
    suppression_table: dict[str, dict[int, set[str]]] = {}
    modules: dict[str, ModuleFacts] = {}
    fragments: dict[str, dict[str, object]] = {}
    live_rels: set[str] = set()

    for path in iter_python_files(root, paths or config.paths):
        rel = path.relative_to(root).as_posix()
        live_rels.add(rel)
        source_bytes = path.read_bytes()
        digest = hashlib.sha256(source_bytes).hexdigest()
        entry = cache.get(rel, digest) if cache is not None else None
        if entry is not None:
            report.files_reused += 1
            parse_error = entry.get("parse_error")
            if parse_error is not None:
                raw_findings.append(Finding.from_dict(parse_error))  # type: ignore[arg-type]
                continue
            report.files_checked += 1
            raw_findings.extend(
                Finding.from_dict(data)
                for data in entry.get("findings", ())  # type: ignore[union-attr]
            )
            suppression_table[rel] = {
                int(line): set(rule_ids)
                for line, rule_ids in dict(
                    entry.get("suppressions", {})  # type: ignore[arg-type]
                ).items()
            }
            modules[rel] = ModuleFacts.from_dict(entry["facts"])  # type: ignore[arg-type]
            for rule_id, fragment in dict(
                entry.get("fragments", {})  # type: ignore[arg-type]
            ).items():
                fragments.setdefault(rule_id, {})[rel] = fragment
            continue

        source = source_bytes.decode("utf-8")
        try:
            ctx = FileContext(root, path, source)
        except SyntaxError as error:
            finding = Finding(
                ENGINE_RULE_ID,
                rel,
                error.lineno or 1,
                (error.offset or 1) - 1,
                f"file does not parse: {error.msg}",
            )
            raw_findings.append(finding)
            if cache is not None:
                cache.put(
                    rel, {"hash": digest, "parse_error": finding.to_dict()}
                )
            continue
        report.files_checked += 1
        suppression_table[rel] = _suppressions(ctx)
        modules[rel] = extract_module_facts(ctx)
        local: list[Finding] = []
        file_fragments: dict[str, object] = {}
        for rule in active:
            local.extend(rule.check(ctx))
            fragment = rule.collect(ctx)
            if fragment is not None:
                file_fragments[rule.id] = fragment
                fragments.setdefault(rule.id, {})[rel] = fragment
        raw_findings.extend(local)
        if cache is not None:
            cache.put(
                rel,
                {
                    "hash": digest,
                    "findings": [finding.to_dict() for finding in local],
                    "suppressions": {
                        str(line): sorted(rule_ids)
                        for line, rule_ids in suppression_table[rel].items()
                    },
                    "facts": modules[rel].to_dict(),
                    "fragments": file_fragments,
                },
            )

    program = Program(root, config, modules, fragments)
    for rule in active:
        raw_findings.extend(rule.check_program(program))

    if cache is not None:
        cache.prune(live_rels)
        cache.save()

    used: set[tuple[str, int, str]] = set()
    for finding in raw_findings:
        disabled = suppression_table.get(finding.path, {}).get(
            finding.line, set()
        )
        if finding.rule in disabled:
            used.add((finding.path, finding.line, finding.rule))
        else:
            report.findings.append(finding)
    for rel, table in suppression_table.items():
        for line, rule_ids in sorted(table.items()):
            for rule_id in sorted(rule_ids):
                if rule_id in config.disabled_rules:
                    # The rule cannot fire, so its suppressions are not
                    # evidence of a stale comment.
                    continue
                if (rel, line, rule_id) not in used:
                    report.findings.append(
                        Finding(
                            ENGINE_RULE_ID,
                            rel,
                            line,
                            0,
                            f"unused suppression: no {rule_id} finding on "
                            "this line — remove the disable comment",
                        )
                    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
