"""The reprolint rule engine: file walking, suppressions, reporting.

The engine is rule-agnostic. It parses every analyzed file once into an
:class:`ast.Module` plus a per-line comment map (comments are invisible
to the AST, so suppression handling needs the token stream), hands the
resulting :class:`FileContext` to each rule, folds in whole-program
findings from rules that keep cross-file state (the lock-order graph,
the metric-declaration set), applies ``# reprolint: disable=RPR0xx``
suppressions, and reports suppressions that suppressed nothing as
engine findings (``RPR000``).

Exit-code contract of :func:`run_analysis` callers: 0 when clean, 1
when findings remain, 2 on usage errors (see ``__main__``).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .rules import Rule

#: Engine-level diagnostics: unused suppressions and unparsable files.
ENGINE_RULE_ID = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>RPR\d{3}(?:\s*,\s*RPR\d{3})*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: Defaults mirrored by the ``[tool.reprolint]`` table in pyproject.toml
#: (kept in code so the linter still runs on Python 3.10 installations
#: without tomllib and on trees without a pyproject).
_DEFAULT_PATHS = ("src", "benchmarks", "scripts")
_DEFAULT_DETERMINISTIC = (
    "src/repro/models",
    "src/repro/ingest",
    "src/repro/storage/serialization.py",
)
_DEFAULT_KERNELS = ("src/repro/models", "src/repro/query/analytics.py")
_DEFAULT_CATALOG = "repro.obs.catalog:CATALOG"
_DEFAULT_RPC_TYPES = (
    "PartialResult",
    "IngestStats",
    "ModelUsage",
    "Fault",
    "FaultPlan",
    "TimeSeries",
    "TimeSeriesGroup",
    "Dimension",
    "DimensionSet",
    "Configuration",
    "Query",
    "SegmentGroup",
    "ClusterIngestReport",
    "ClusterQueryReport",
    "ShardMap",
    "SegmentBatch",
    "ShardQueryReport",
    "SegmentScan",
)


@dataclass
class Config:
    """Resolved ``[tool.reprolint]`` configuration."""

    paths: tuple[str, ...] = _DEFAULT_PATHS
    deterministic_paths: tuple[str, ...] = _DEFAULT_DETERMINISTIC
    kernel_paths: tuple[str, ...] = _DEFAULT_KERNELS
    metrics_catalog: str = _DEFAULT_CATALOG
    rpc_types: tuple[str, ...] = _DEFAULT_RPC_TYPES

    @classmethod
    def from_pyproject(cls, root: Path) -> "Config":
        """Read the ``[tool.reprolint]`` table; defaults when absent."""
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return cls()
        try:
            import tomllib
        except ModuleNotFoundError:  # Python 3.10: run on defaults
            return cls()
        with pyproject.open("rb") as handle:
            table = tomllib.load(handle).get("tool", {}).get("reprolint", {})
        config = cls()
        mapping = {
            "paths": "paths",
            "deterministic-paths": "deterministic_paths",
            "kernel-paths": "kernel_paths",
            "rpc-types": "rpc_types",
        }
        for key, attr in mapping.items():
            if key in table:
                setattr(config, attr, tuple(table[key]))
        if "metrics-catalog" in table:
            config.metrics_catalog = str(table["metrics-catalog"])
        return config


class FileContext:
    """Everything a rule needs about one analyzed file."""

    def __init__(self, root: Path, path: Path, source: str) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.module = self.rel.removesuffix(".py").replace("/", ".")
        self.source = source
        self.tree = ast.parse(source, filename=self.rel)
        #: line number -> full comment text (including the ``#``).
        self.comments: dict[int, str] = {}
        reader = io.StringIO(source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - ast parsed already
            pass
        self._aliases: dict[str, str] | None = None

    # -- scoping -------------------------------------------------------
    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """Whether this file lives under any of the path prefixes."""
        for prefix in prefixes:
            clean = prefix.rstrip("/")
            if self.rel == clean or self.rel.startswith(clean + "/"):
                return True
        return False

    # -- name resolution -----------------------------------------------
    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted prefix, from the imports."""
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for name in node.names:
                        local = name.asname or name.name.partition(".")[0]
                        target = name.name if name.asname else local
                        aliases[local] = target
                elif isinstance(node, ast.ImportFrom) and node.module:
                    if node.level:  # relative import: outside our scope
                        continue
                    for name in node.names:
                        local = name.asname or name.name
                        aliases[local] = f"{node.module}.{name.name}"
            self._aliases = aliases
        return self._aliases

    def dotted(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an expression, if it is one.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``numpy.random.default_rng``; non-name expressions (calls,
        subscripts) resolve to None.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.aliases.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        by_rule: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "tool": "reprolint",
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "counts_by_rule": dict(sorted(by_rule.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False)

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            lines.append(
                f"reprolint: {len(self.findings)} finding(s) in "
                f"{self.files_checked} file(s)"
            )
        else:
            lines.append(
                f"reprolint: clean — {self.files_checked} file(s), 0 findings"
            )
        return "\n".join(lines)


def iter_python_files(root: Path, paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given paths, ``__pycache__`` skipped."""
    seen: set[Path] = set()
    for raw in paths:
        target = (root / raw).resolve()
        if target.is_file() and target.suffix == ".py":
            candidates: Iterable[Path] = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def _suppressions(ctx: FileContext) -> dict[int, set[str]]:
    """line -> rule ids disabled on that line."""
    table: dict[int, set[str]] = {}
    for line, comment in ctx.comments.items():
        match = _SUPPRESS_RE.search(comment)
        if match is not None:
            rules = {part.strip() for part in match.group("rules").split(",")}
            table.setdefault(line, set()).update(rules)
    return table


def run_analysis(
    root: Path,
    paths: Sequence[str] | None = None,
    config: Config | None = None,
    rules: Sequence["Rule"] | None = None,
) -> Report:
    """Analyze the tree under ``root`` and return the findings.

    ``rules`` defaults to fresh instances of every registered rule;
    pass a subset to run one rule in isolation (tests).
    """
    from .rules import RULES

    config = config if config is not None else Config.from_pyproject(root)
    active = (
        list(rules)
        if rules is not None
        else [rule_type(config) for rule_type in RULES]
    )
    report = Report()
    raw_findings: list[Finding] = []
    suppression_table: dict[str, dict[int, set[str]]] = {}
    for path in iter_python_files(root, paths or config.paths):
        source = path.read_text(encoding="utf-8")
        try:
            ctx = FileContext(root, path, source)
        except SyntaxError as error:
            raw_findings.append(
                Finding(
                    ENGINE_RULE_ID,
                    path.relative_to(root).as_posix(),
                    error.lineno or 1,
                    (error.offset or 1) - 1,
                    f"file does not parse: {error.msg}",
                )
            )
            continue
        report.files_checked += 1
        suppression_table[ctx.rel] = _suppressions(ctx)
        for rule in active:
            raw_findings.extend(rule.check(ctx))
    for rule in active:
        raw_findings.extend(rule.finalize())

    used: set[tuple[str, int, str]] = set()
    for finding in raw_findings:
        disabled = suppression_table.get(finding.path, {}).get(
            finding.line, set()
        )
        if finding.rule in disabled:
            used.add((finding.path, finding.line, finding.rule))
        else:
            report.findings.append(finding)
    for rel, table in suppression_table.items():
        for line, rule_ids in sorted(table.items()):
            for rule_id in sorted(rule_ids):
                if (rel, line, rule_id) not in used:
                    report.findings.append(
                        Finding(
                            ENGINE_RULE_ID,
                            rel,
                            line,
                            0,
                            f"unused suppression: no {rule_id} finding on "
                            "this line — remove the disable comment",
                        )
                    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
