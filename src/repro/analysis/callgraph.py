"""Pass 1 of the whole-program analyzer: symbols, calls, taint.

reprolint used to look at one file at a time; the invariants it now
checks span files (a clock read two calls away from a deterministic
kernel, a protocol op with no client method, a ``Storage`` opened in one
function and leaked in another). This module builds the project-wide
view those rules need:

* :func:`extract_module_facts` reduces one parsed file to a compact,
  JSON-serializable :class:`ModuleFacts` — every function with its
  classified call sites, every class with its methods and bases. Facts
  are what the incremental cache stores, so they must round-trip
  through JSON (:meth:`ModuleFacts.to_dict` / ``from_dict``).
* :class:`Program` merges the facts of every analyzed file into a
  symbol table plus call graph, resolves call sites to definitions
  (import aliases, ``self.``, single-level ``v = Ctor(); v.m()`` local
  typing, base-class method lookup), and answers the interprocedural
  questions pass 2 asks — most importantly :meth:`Program.taint`, the
  reverse-reachability closure RPR007 uses to find wall-clock/RNG
  sources N calls away from a deterministic scope.

Everything here is deliberately order-independent: modules are indexed
sorted by path and the taint worklist is sorted, so findings do not
drift when the file walk order changes (proven by the drift test in
tests/test_callgraph.py).

Known, accepted approximations (static analysis):

* Calls inside nested functions/lambdas are folded into the enclosing
  function — conservative for taint (the closure usually runs on
  behalf of its definer).
* An unresolvable dotted call whose last component uniquely names one
  project function or method resolves to it (this is what links
  package re-exports like ``repro.storage.FileStorage`` to the class
  defined in ``repro/storage/filestore.py``).
* Receivers that are neither ``self``, an import alias, nor a locally
  constructed value stay unresolved; such sites are kept with kind
  ``"method"`` so name-unique checks (deprecated shims) still see them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from .engine import Config, FileContext

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Synthetic function name holding a module's top-level call sites.
MODULE_BODY = "<module>"

#: Classmethod-style constructors treated as producing an instance of
#: their class (``ModelarDB.open(...)`` types the variable ModelarDB).
_FACTORY_METHODS = {"open", "open_directory", "connect"}


def module_name(rel: str) -> str:
    """Import path of a file, matching how the code imports it.

    ``src/repro/ingest/__init__.py`` → ``repro.ingest`` (the leading
    ``src`` is the package-dir, not a package), ``benchmarks/foo.py`` →
    ``benchmarks.foo``.
    """
    parts = rel.removesuffix(".py").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def in_scope(rel: str, prefixes: Sequence[str]) -> bool:
    """Whether a project-relative path lives under any prefix."""
    for prefix in prefixes:
        clean = prefix.rstrip("/")
        if rel == clean or rel.startswith(clean + "/"):
            return True
    return False


# ---------------------------------------------------------------------------
# Fact model
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One classified call expression inside a function.

    ``kind`` is one of:

    * ``"dotted"`` — canonical dotted name (``time.time``,
      ``repro.storage.FileStorage``, ``pkg.Class.method``);
    * ``"name"`` — bare unimported name (``helper()``): same-module or
      unique-basename resolution applies;
    * ``"self"`` — ``self.m()``: same-class (then base-class) lookup;
    * ``"typed"`` — ``v.m()`` where ``v = Ctor(...)`` locally; ``cls``
      holds the constructor's dotted name;
    * ``"method"`` — ``obj.m()`` with an unresolvable receiver; kept
      for name-unique checks only.
    """

    kind: str
    target: str
    line: int
    col: int
    bare: bool = False
    cls: str | None = None

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            "kind": self.kind,
            "target": self.target,
            "line": self.line,
            "col": self.col,
        }
        if self.bare:
            out["bare"] = True
        if self.cls is not None:
            out["cls"] = self.cls
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "CallSite":
        return cls(
            kind=str(data["kind"]),
            target=str(data["target"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            bare=bool(data.get("bare", False)),
            cls=str(data["cls"]) if data.get("cls") is not None else None,
        )


@dataclass
class FunctionFacts:
    """One function or method and everything it calls."""

    module: str
    cls: str | None
    name: str
    line: int
    calls: list[CallSite] = field(default_factory=list)
    #: The body raises ``warnings.warn(..., DeprecationWarning)`` —
    #: i.e. this def *is* a deprecation shim.
    warns_deprecation: bool = False

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return f"{self.module}.{self.cls}.{self.name}"
        return f"{self.module}.{self.name}"

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "cls": self.cls,
            "name": self.name,
            "line": self.line,
            "calls": [call.to_dict() for call in self.calls],
            "warns_deprecation": self.warns_deprecation,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FunctionFacts":
        return cls(
            module=str(data["module"]),
            cls=str(data["cls"]) if data.get("cls") is not None else None,
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            calls=[
                CallSite.from_dict(entry)
                for entry in data.get("calls", ())  # type: ignore[union-attr]
            ],
            warns_deprecation=bool(data.get("warns_deprecation", False)),
        )


@dataclass
class ClassFacts:
    """One class: its methods (name → def line) and base names."""

    module: str
    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: dict[str, int] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"

    def to_dict(self) -> dict[str, object]:
        return {
            "module": self.module,
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "methods": dict(self.methods),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ClassFacts":
        return cls(
            module=str(data["module"]),
            name=str(data["name"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            bases=[str(base) for base in data.get("bases", ())],  # type: ignore[union-attr]
            methods={
                str(name): int(line)
                for name, line in dict(data.get("methods", {})).items()  # type: ignore[arg-type]
            },
        )


@dataclass
class ModuleFacts:
    """Everything pass 2 needs to know about one analyzed file."""

    rel: str
    module: str
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[ClassFacts] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "rel": self.rel,
            "module": self.module,
            "functions": [func.to_dict() for func in self.functions],
            "classes": [klass.to_dict() for klass in self.classes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ModuleFacts":
        return cls(
            rel=str(data["rel"]),
            module=str(data["module"]),
            functions=[
                FunctionFacts.from_dict(entry)
                for entry in data.get("functions", ())  # type: ignore[union-attr]
            ],
            classes=[
                ClassFacts.from_dict(entry)
                for entry in data.get("classes", ())  # type: ignore[union-attr]
            ],
        )


# ---------------------------------------------------------------------------
# Extraction (runs once per changed file; results are cached)
# ---------------------------------------------------------------------------


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """(class name, def) for every top-level function and method."""
    for node in tree.body:
        if isinstance(node, _FUNCTION_NODES):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, _FUNCTION_NODES):
                    yield node.name, item


def typed_locals(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
    ctx: "FileContext",
) -> dict[str, str]:
    """Local name → dotted constructor, from ``v = Ctor(...)`` assigns.

    ``v = ModelarDB.open(path)`` types ``v`` as ``...ModelarDB`` (the
    factory-method suffix is stripped), so ``v.close()`` later resolves
    to the class.
    """
    table: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        dotted = ctx.dotted(node.value.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        if len(parts) >= 2 and parts[-1] in _FACTORY_METHODS:
            dotted = ".".join(parts[:-1])
        table[target.id] = dotted
    return table


def _classify_call(
    node: ast.Call,
    ctx: "FileContext",
    typed: dict[str, str],
    module_names: set[str],
) -> CallSite | None:
    """Map one Call expression to a :class:`CallSite`, or None."""
    func = node.func
    bare = not node.args and not node.keywords
    dotted = ctx.dotted(func)
    if dotted is None:
        if isinstance(func, ast.Attribute):
            return CallSite(
                "method", func.attr, node.lineno, node.col_offset, bare
            )
        return None
    parts = dotted.split(".")
    root = parts[0]
    if root == "self":
        if len(parts) == 2:
            return CallSite(
                "self", parts[1], node.lineno, node.col_offset, bare
            )
        # self._x.m(): receiver is an attribute — unresolved.
        return CallSite(
            "method", parts[-1], node.lineno, node.col_offset, bare
        )
    if (
        len(parts) > 1
        and isinstance(func, ast.Attribute)
        and isinstance(_receiver_root(func), ast.Name)
    ):
        receiver = _receiver_root(func)
        assert isinstance(receiver, ast.Name)
        if receiver.id in typed and len(parts) == 2:
            return CallSite(
                "typed",
                parts[-1],
                node.lineno,
                node.col_offset,
                bare,
                cls=typed[receiver.id],
            )
        if receiver.id not in ctx.aliases and receiver.id not in module_names:
            # A local/attribute receiver we cannot type.
            return CallSite(
                "method", parts[-1], node.lineno, node.col_offset, bare
            )
    if len(parts) == 1:
        # `f()`: ctx.dotted already resolved `from x import f` aliases
        # into a dotted path; a still-bare name resolves same-module
        # first, then by unique basename.
        return CallSite("name", dotted, node.lineno, node.col_offset, bare)
    if root in module_names:
        # `ModelarDB.open(...)` inside modelardb.py itself: qualify
        # with the defining module so resolution finds the class.
        dotted = f"{ctx.module}.{dotted}"
    return CallSite("dotted", dotted, node.lineno, node.col_offset, bare)


def _receiver_root(func: ast.Attribute) -> ast.expr:
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        node = node.value
    return node


def _warns_deprecation(func: ast.AST, ctx: "FileContext") -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = ctx.dotted(node.func)
        if dotted not in ("warnings.warn", "warn"):
            continue
        for arg in (*node.args, *(kw.value for kw in node.keywords)):
            if isinstance(arg, ast.Name) and arg.id == "DeprecationWarning":
                return True
    return False


def extract_module_facts(ctx: "FileContext") -> ModuleFacts:
    """Reduce one parsed file to its symbol/call facts."""
    tree = ctx.tree
    module_names = {
        node.name
        for node in tree.body
        if isinstance(node, (*_FUNCTION_NODES, ast.ClassDef))
    }
    facts = ModuleFacts(rel=ctx.rel, module=ctx.module)

    def collect_calls(
        scope: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
        skip_defs: bool,
    ) -> list[CallSite]:
        typed = typed_locals(scope, ctx)
        calls: list[CallSite] = []
        stack: list[ast.AST] = (
            list(ast.iter_child_nodes(scope))
            if not skip_defs
            else [
                child
                for child in ast.iter_child_nodes(scope)
                if not isinstance(child, (*_FUNCTION_NODES, ast.ClassDef))
            ]
        )
        while stack:
            node = stack.pop()
            if skip_defs and isinstance(
                node, (*_FUNCTION_NODES, ast.ClassDef)
            ):
                continue
            if isinstance(node, ast.Call):
                site = _classify_call(node, ctx, typed, module_names)
                if site is not None:
                    calls.append(site)
            stack.extend(ast.iter_child_nodes(node))
        calls.sort(key=lambda call: (call.line, call.col))
        return calls

    for cls_name, func in iter_functions(tree):
        facts.functions.append(
            FunctionFacts(
                module=ctx.module,
                cls=cls_name,
                name=func.name,
                line=func.lineno,
                calls=collect_calls(func, skip_defs=False),
                warns_deprecation=_warns_deprecation(func, ctx),
            )
        )
    module_calls = collect_calls(tree, skip_defs=True)
    if module_calls:
        facts.functions.append(
            FunctionFacts(
                module=ctx.module,
                cls=None,
                name=MODULE_BODY,
                line=1,
                calls=module_calls,
            )
        )
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases: list[str] = []
        for base in node.bases:
            dotted = ctx.dotted(base)
            if dotted is not None:
                bases.append(dotted)
        facts.classes.append(
            ClassFacts(
                module=ctx.module,
                name=node.name,
                line=node.lineno,
                bases=bases,
                methods={
                    item.name: item.lineno
                    for item in node.body
                    if isinstance(item, _FUNCTION_NODES)
                },
            )
        )
    return facts


# ---------------------------------------------------------------------------
# Program: the merged whole-program view (pass 2 input)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Taint:
    """Why a function is non-deterministic."""

    source: str  #: dotted name of the clock/RNG call at the root
    #: qualnames from this function down to the one calling ``source``.
    chain: tuple[str, ...]


class Program:
    """Symbol table + call graph over every analyzed file."""

    def __init__(
        self,
        root: Path,
        config: "Config",
        modules: dict[str, ModuleFacts],
        fragments: dict[str, dict[str, object]] | None = None,
    ) -> None:
        self.root = root
        self.config = config
        #: rel path → facts, sorted so every traversal is order-stable.
        self.modules: dict[str, ModuleFacts] = dict(sorted(modules.items()))
        self._fragments = fragments or {}
        self.functions: dict[str, FunctionFacts] = {}
        self.classes: dict[str, ClassFacts] = {}
        self._rel_of_module: dict[str, str] = {}
        self._function_basenames: dict[str, list[str]] = {}
        self._class_basenames: dict[str, list[str]] = {}
        self._method_classes: dict[str, list[str]] = {}
        for rel, facts in self.modules.items():
            self._rel_of_module[facts.module] = rel
            for func in facts.functions:
                self.functions[func.qualname] = func
                if func.cls is None and func.name != MODULE_BODY:
                    self._function_basenames.setdefault(
                        func.name, []
                    ).append(func.qualname)
            for klass in facts.classes:
                self.classes[klass.qualname] = klass
                self._class_basenames.setdefault(klass.name, []).append(
                    klass.qualname
                )
                for method in klass.methods:
                    self._method_classes.setdefault(method, []).append(
                        klass.qualname
                    )
        self._reverse: dict[str, list[str]] | None = None

    # -- rule fact fragments -------------------------------------------
    def fragments(self, rule_id: str) -> dict[str, object]:
        """rel path → the fragment that rule collected there."""
        return dict(
            sorted(self._fragments.get(rule_id, {}).items())
        )

    # -- path helpers --------------------------------------------------
    def rel_for_module(self, module: str) -> str | None:
        return self._rel_of_module.get(module)

    def rel_of(self, qualname: str) -> str:
        func = self.functions[qualname]
        rel = self._rel_of_module.get(func.module)
        return rel if rel is not None else func.module

    def method_owners(self, method: str) -> list[str]:
        """Qualnames of every class defining ``method``, sorted."""
        return sorted(self._method_classes.get(method, []))

    # -- symbol resolution ---------------------------------------------
    def resolve_class(self, name: str) -> ClassFacts | None:
        """A class by exact qualname, else unique basename."""
        exact = self.classes.get(name)
        if exact is not None:
            return exact
        basename = name.rsplit(".", 1)[-1]
        candidates = self._class_basenames.get(basename, [])
        if len(candidates) == 1:
            return self.classes[candidates[0]]
        return None

    def resolve_method(
        self, klass: ClassFacts, method: str
    ) -> str | None:
        """Qualname of a method, walking base classes by name."""
        seen: set[str] = set()
        queue = [klass]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method in current.methods:
                return f"{current.qualname}.{method}"
            for base in current.bases:
                resolved = self._resolve_base(current, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    def _resolve_base(
        self, klass: ClassFacts, base: str
    ) -> ClassFacts | None:
        same_module = self.classes.get(f"{klass.module}.{base}")
        if same_module is not None:
            return same_module
        return self.resolve_class(base)

    def resolve_call(
        self, caller: FunctionFacts, call: CallSite
    ) -> list[str]:
        """Qualnames of the definitions a call site may reach."""
        if call.kind == "self":
            if caller.cls is not None:
                klass = self.classes.get(f"{caller.module}.{caller.cls}")
                if klass is not None:
                    resolved = self.resolve_method(klass, call.target)
                    if resolved is not None:
                        return [resolved]
            return self._unique_method(call.target)
        if call.kind == "typed":
            assert call.cls is not None
            klass = self.resolve_class(call.cls)
            if klass is not None:
                resolved = self.resolve_method(klass, call.target)
                if resolved is not None:
                    return [resolved]
            return []
        if call.kind == "name":
            same_module = f"{caller.module}.{call.target}"
            if same_module in self.functions:
                return [same_module]
            candidates = self._function_basenames.get(call.target, [])
            if len(candidates) == 1:
                return list(candidates)
            return []
        if call.kind == "dotted":
            return self._resolve_dotted(call.target)
        return []  # "method": receiver unknown

    def _resolve_dotted(self, dotted: str) -> list[str]:
        if dotted in self.functions:
            return [dotted]
        parts = dotted.split(".")
        # Constructor call: Class → its __init__ (if defined).
        klass = self.resolve_class(dotted)
        if klass is not None:
            init = self.resolve_method(klass, "__init__")
            return [init] if init is not None else []
        # Class.method (classmethod / factory): resolve the class part.
        if len(parts) >= 2:
            klass = self.resolve_class(".".join(parts[:-1]))
            if klass is not None:
                resolved = self.resolve_method(klass, parts[-1])
                if resolved is not None:
                    return [resolved]
        # Re-export (`from .pipeline import fit` surfaced in __init__):
        # a unique project basename resolves the alias.
        basename = parts[-1]
        candidates = self._function_basenames.get(basename, [])
        if len(candidates) == 1:
            return list(candidates)
        return self._unique_method(basename) if len(parts) >= 2 else []

    def _unique_method(self, method: str) -> list[str]:
        owners = self._method_classes.get(method, [])
        if len(owners) == 1:
            return [f"{owners[0]}.{method}"]
        return []

    # -- call graph ----------------------------------------------------
    def callers_of(self) -> dict[str, list[str]]:
        """callee qualname → sorted caller qualnames (memoized)."""
        if self._reverse is None:
            reverse: dict[str, set[str]] = {}
            for qualname in sorted(self.functions):
                func = self.functions[qualname]
                for call in func.calls:
                    for target in self.resolve_call(func, call):
                        if target != qualname:
                            reverse.setdefault(target, set()).add(qualname)
            self._reverse = {
                callee: sorted(callers)
                for callee, callers in sorted(reverse.items())
            }
        return self._reverse

    def taint(
        self, classify: Callable[[CallSite], str | None]
    ) -> dict[str, Taint]:
        """Functions that can reach a source call, with the path.

        ``classify`` maps a call site to a source description (e.g.
        ``"time.time"``) or None. The result covers both functions that
        call a source directly (chain of length 1) and every transitive
        caller, found by reverse BFS — order-independent because the
        worklist and adjacency are sorted.
        """
        tainted: dict[str, Taint] = {}
        for qualname in sorted(self.functions):
            func = self.functions[qualname]
            for call in func.calls:
                source = classify(call)
                if source is not None:
                    tainted[qualname] = Taint(source, (qualname,))
                    break
        callers = self.callers_of()
        queue = sorted(tainted)
        while queue:
            current = queue.pop(0)
            info = tainted[current]
            for caller in callers.get(current, ()):
                if caller in tainted:
                    continue
                tainted[caller] = Taint(
                    info.source, (caller, *info.chain)
                )
                queue.append(caller)
        return tainted
