"""Per-server serving metrics: counters and a latency histogram.

Everything here is updated from the event loop and from executor
threads, so all mutation is lock-protected. The histogram uses
geometric buckets (ratio 1.5 starting at 0.1 ms) — coarse enough to be
O(1) per observation, fine enough that the p50/p95/p99 estimates the
``stats`` op reports are within one bucket ratio of the true quantile.
"""

from __future__ import annotations

import math
import threading

_FIRST_BOUND_SECONDS = 1e-4
_RATIO = 1.5
_N_BUCKETS = 48  # covers ~0.1 ms .. ~2.4e4 s


class LatencyHistogram:
    """Fixed geometric buckets over seconds, with exact count/sum."""

    def __init__(self) -> None:
        self._bounds = [
            _FIRST_BOUND_SECONDS * _RATIO**index
            for index in range(_N_BUCKETS)
        ]
        self._counts = [0] * (_N_BUCKETS + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= _FIRST_BOUND_SECONDS:
            return 0
        index = int(
            math.log(seconds / _FIRST_BOUND_SECONDS) / math.log(_RATIO)
        ) + 1
        return min(index, _N_BUCKETS)

    def record(self, seconds: float) -> None:
        with self._lock:
            self._counts[self._bucket(seconds)] += 1
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (0 when empty)."""
        with self._lock:
            if not self.count:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= target:
                    if index >= _N_BUCKETS:
                        return self.max
                    return min(self._bounds[index], self.max)
            return self.max

    def snapshot(self) -> dict:
        """The ``stats`` payload: count, mean and quantile estimates."""
        p50, p95, p99 = (
            self.quantile(0.50), self.quantile(0.95), self.quantile(0.99)
        )
        with self._lock:
            count, total = self.count, self.total
            low = 0.0 if count == 0 else self.min
            high = self.max
        return {
            "count": count,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "min_ms": low * 1000.0,
            "max_ms": high * 1000.0,
            "p50_ms": p50 * 1000.0,
            "p95_ms": p95 * 1000.0,
            "p99_ms": p99 * 1000.0,
        }


class ServerCounters:
    """Admission and completion counters for one server."""

    _FIELDS = (
        "connections",
        "requests",
        "accepted",
        "queued",
        "rejected_busy",
        "completed",
        "failed",
        "timed_out",
        "cancelled",
        "bad_requests",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}
