"""Per-server serving metrics, backed by the unified ``repro.obs`` layer.

The latency histogram implementation that used to live here was
generalised into :class:`repro.obs.Histogram`; ``LatencyHistogram`` is a
re-export kept for compatibility (same geometric buckets, same
``snapshot()`` payload — and ``min``/``min_ms`` report 0.0 instead of
``inf`` while empty).

:class:`ServerCounters` keeps exact per-server integers for the
``stats`` op (tests and dashboards rely on per-instance values) while
mirroring every bump into the process-wide registry as
``server.<name>_total``, so the ``metrics`` op reports serving traffic
alongside ingest/query/storage/cluster activity.
"""

from __future__ import annotations

import threading

from ..obs import Histogram, get_registry

#: The serving latency histogram — one geometric-bucket implementation
#: for the whole system, owned by :mod:`repro.obs.registry`.
LatencyHistogram = Histogram


class ServerCounters:
    """Admission and completion counters for one server."""

    _FIELDS = (
        "connections",
        "requests",
        "accepted",
        "queued",
        "rejected_busy",
        "completed",
        "failed",
        "timed_out",
        "cancelled",
        "bad_requests",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        registry = get_registry()
        self._mirrors = {
            name: registry.counter(f"server.{name}_total")
            for name in self._FIELDS
        }
        for name in self._FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)
        self._mirrors[name].inc(amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self._FIELDS}
