"""The concurrent query-serving layer.

Substitutes for the paper's Spark SQL front-end: an asyncio TCP server
with a small length-prefixed JSON protocol, admission control with
fast-fail back-pressure, per-query deadlines wired to cooperative
cancellation, and a result cache invalidated by ingestion flushes.

    from repro.server import EmbeddedDispatcher, QueryServer, ServerThread

    dispatcher = EmbeddedDispatcher.for_db(db)
    harness = ServerThread(QueryServer(dispatcher, max_inflight=8))
    host, port = harness.start()
    ...
    harness.stop()
"""

from .client import ServerClient
from .dispatcher import (
    CancelToken,
    ClusterDispatcher,
    Dispatcher,
    EmbeddedDispatcher,
)
from .loadgen import LoadReport, build_workload, run_load
from .protocol import (
    BadRequestError,
    BusyError,
    CancelledError,
    ConnectionLostError,
    DeadlineError,
    ErrorCode,
    RemoteQueryError,
    ServerError,
)
from .result_cache import QueryResultCache, normalize_sql
from .server import QueryServer, ServerThread

__all__ = [
    "BadRequestError",
    "BusyError",
    "CancelToken",
    "CancelledError",
    "ClusterDispatcher",
    "ConnectionLostError",
    "DeadlineError",
    "Dispatcher",
    "EmbeddedDispatcher",
    "ErrorCode",
    "LoadReport",
    "QueryResultCache",
    "QueryServer",
    "RemoteQueryError",
    "ServerClient",
    "ServerError",
    "ServerThread",
    "build_workload",
    "normalize_sql",
    "run_load",
]
