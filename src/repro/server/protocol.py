"""The serving layer's wire protocol.

A connection carries a sequence of *frames*, each a 4-byte big-endian
length prefix followed by that many bytes of UTF-8 JSON. Requests are
objects with an ``op`` field:

``{"op": "query", "sql": "...", "id": "q1", "timeout": 2.5}``
    Execute one SQL statement. ``id`` (optional) names the query so it
    can be cancelled from another connection; ``timeout`` (optional,
    seconds) overrides the server's default deadline.
``{"op": "ping"}``
    Liveness probe; answered immediately, never queued.
``{"op": "stats"}``
    Server counters, latency histogram, cache statistics and catalog.
``{"op": "cancel", "id": "q1"}``
    Best-effort cancellation of an in-flight query by its ``id``.

Responses always carry ``ok``. Successful queries reply
``{"ok": true, "rows": [...], "elapsed": seconds, "cached": bool}``;
failures reply a structured error frame
``{"ok": false, "error": {"code": ..., "status": ..., "message": ...}}``
modelled on HTTP status classes (``busy`` -> 503, ``timeout`` -> 408,
query and protocol errors -> 400, ``cancelled`` -> 499) so clients can
distinguish back-pressure from bad requests without string matching.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import BinaryIO

from ..core.errors import ModelarError

#: Length prefix: one unsigned 32-bit big-endian integer.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame; a prefix above this means the peer is
#: not speaking the protocol (or a result is unreasonably large).
MAX_FRAME_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Error codes (HTTP-style status classes)
# ----------------------------------------------------------------------
class ErrorCode:
    """Structured error codes carried in error frames."""

    BAD_REQUEST = "bad_request"  # malformed frame or unknown op
    QUERY = "query_error"        # SQL failed to parse/plan/execute
    BUSY = "busy"                # admission control rejected the query
    TIMEOUT = "timeout"          # the per-query deadline expired
    CANCELLED = "cancelled"      # an explicit cancel hit the query
    SHUTDOWN = "shutdown"        # the server is stopping
    INTERNAL = "internal"        # unexpected server-side failure


#: HTTP-style status for each code (503 = back-pressure, retry later).
ERROR_STATUS = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.QUERY: 400,
    ErrorCode.BUSY: 503,
    ErrorCode.TIMEOUT: 408,
    ErrorCode.CANCELLED: 499,
    ErrorCode.SHUTDOWN: 503,
    ErrorCode.INTERNAL: 500,
}


class ServerError(ModelarError):
    """A structured error returned by (or raised inside) the server."""

    code = ErrorCode.INTERNAL

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def status(self) -> int:
        return ERROR_STATUS.get(self.code, 500)


class BusyError(ServerError):
    """Admission control fast-failed the request (503-style)."""

    code = ErrorCode.BUSY


class DeadlineError(ServerError):
    """The query's deadline expired before it finished."""

    code = ErrorCode.TIMEOUT


class CancelledError(ServerError):
    """The query was cancelled via the ``cancel`` op."""

    code = ErrorCode.CANCELLED


class RemoteQueryError(ServerError):
    """The SQL statement itself was rejected by the engine."""

    code = ErrorCode.QUERY


class BadRequestError(ServerError):
    """The frame was not a valid request."""

    code = ErrorCode.BAD_REQUEST


#: Client-side mapping from a received error code to the exception
#: raised by :class:`~repro.server.client.ServerClient`.
ERROR_CLASSES = {
    ErrorCode.BUSY: BusyError,
    ErrorCode.TIMEOUT: DeadlineError,
    ErrorCode.CANCELLED: CancelledError,
    ErrorCode.QUERY: RemoteQueryError,
    ErrorCode.BAD_REQUEST: BadRequestError,
    ErrorCode.SHUTDOWN: BusyError,
    ErrorCode.INTERNAL: ServerError,
}


def raise_for_error(payload: dict) -> None:
    """Raise the matching :class:`ServerError` for an error response."""
    if payload.get("ok", False):
        return
    error = payload.get("error") or {}
    code = error.get("code", ErrorCode.INTERNAL)
    message = error.get("message", "unknown server error")
    raise ERROR_CLASSES.get(code, ServerError)(message, code=code)


def error_response(code: str, message: str) -> dict:
    """A structured error frame for ``code``."""
    return {
        "ok": False,
        "error": {
            "code": code,
            "status": ERROR_STATUS.get(code, 500),
            "message": message,
        },
    }


# ----------------------------------------------------------------------
# Frame encoding
# ----------------------------------------------------------------------
def _json_default(value):
    """Serialise numpy scalars (engine rows may carry them) by value."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serialisable"
    )


def encode_frame(payload: dict) -> bytes:
    """Length-prefix and serialise one JSON payload."""
    body = json.dumps(
        payload, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServerError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse a frame body; raises :class:`BadRequestError` on junk."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequestError("frame must be a JSON object")
    return payload


async def read_frame(reader) -> dict | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except (EOFError, ConnectionError, OSError):
        # asyncio.IncompleteReadError subclasses EOFError: a peer that
        # disconnects mid-header is treated as a clean EOF.
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BadRequestError(f"frame length {length} exceeds the limit")
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(writer, payload: dict) -> None:
    """Write one frame to an asyncio stream and drain."""
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking (client-side) frame I/O
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket | BinaryIO, payload: dict) -> None:
    """Blocking send of one frame over a socket or binary file."""
    data = encode_frame(payload)
    if isinstance(sock, socket.socket):
        sock.sendall(data)
    else:
        sock.write(data)
        sock.flush()


def _recv_exactly(sock: socket.socket, length: int) -> bytes | None:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Blocking receive of one frame; None on clean EOF."""
    header = _recv_exactly(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BadRequestError(f"frame length {length} exceeds the limit")
    body = _recv_exactly(sock, length)
    if body is None:
        return None
    return decode_body(body)
